"""Lint-engine benchmark: one full-tree analysis, parse-once shared.

Times ``repro lint`` over ``src/repro`` -- every file parsed exactly
once into the shared :class:`~repro.lint.model.SourceModel`, all eight
passes (including the interprocedural race/escape/wire analyses, the
async-hazard and wire-taint passes, and the call graph they all share)
running over that one AST forest.

Two budgets are enforced:

- the eight-pass run stays within 2x a six-pass (pre-asyncflow/taint)
  run measured in-process, so the budget holds on any machine;
- a focused (``--changed``-style) run finishes in interactive
  pre-commit time.

Results are written to ``BENCH_lint.json`` at the repository root (CI
archives it as an artifact).
"""

import json
import os
import time

from repro.lint import LintConfig, lint_paths
from repro.lint.engine import iter_python_files

SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "src", "repro",
)
RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_lint.json",
)

RUNS = 3

#: The rule set of the six-pass engine this PR extended (DVS001-015):
#: timing it in-process gives a machine-independent 2x budget.
SIX_PASS_RULES = frozenset(
    "DVS{0:03d}".format(number) for number in range(1, 16)
)

#: Hard ceiling for a focused pre-commit run (seconds).
FOCUSED_BUDGET_SECONDS = 2.0


def _best_of(runs, **kwargs):
    timings = []
    for _ in range(runs):
        started = time.perf_counter()
        report = lint_paths([SRC], **kwargs)
        timings.append(time.perf_counter() - started)
    return min(timings), report


def _merge_result(section, payload):
    merged = {}
    if os.path.exists(RESULT_PATH):
        with open(RESULT_PATH, "r", encoding="utf-8") as handle:
            merged = json.load(handle)
    merged[section] = payload
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2)
        handle.write("\n")


def test_bench_full_tree_lint():
    file_count = len(list(iter_python_files([SRC])))
    assert file_count > 50

    report = lint_paths([SRC])  # warm-up (bytecode, imports)
    assert report.ok, report.to_text()

    best, report = _best_of(RUNS)
    six_pass_config = LintConfig(select=SIX_PASS_RULES)
    baseline, _ = _best_of(RUNS, config=six_pass_config)

    _merge_result("lint-full-tree", {
        "files_scanned": report.files_scanned,
        "passes": report.engine["passes"],
        "ir_functions": report.engine["ir_functions"],
        "callgraph_edges": report.engine["callgraph_edges"],
        "runs": RUNS,
        "best_seconds": round(best, 4),
        "six_pass_best_seconds": round(baseline, 4),
        "slowdown_vs_six_pass": round(best / baseline, 3),
        "files_per_second": round(report.files_scanned / best, 1),
    })

    # The tree lints in interactive time: the shared-AST design keeps
    # the eight passes from re-parsing 100+ files eight times over.
    assert report.files_scanned == file_count
    assert best < 30.0
    # The asyncflow/taint additions ride the existing parse + call
    # graph: together they may not double the engine's wall time.
    assert best <= 2.0 * baseline, (best, baseline)


def test_bench_focused_lint():
    focus = [os.path.join(SRC, "runtime", "node.py")]
    report = lint_paths([SRC], focus=focus)  # warm-up
    assert report.ok, report.to_text()

    best, report = _best_of(RUNS, focus=focus)
    assert report.engine["focus"]["files"]
    assert report.engine["focus"]["neighbors"]

    _merge_result("lint-focused", {
        "focus_files": len(report.engine["focus"]["files"]),
        "neighbors": len(report.engine["focus"]["neighbors"]),
        "runs": RUNS,
        "best_seconds": round(best, 4),
    })

    # Pre-commit latency: parse + all passes + neighbor computation.
    assert best < FOCUSED_BUDGET_SECONDS, best
