"""Lint-engine benchmark: one full-tree analysis, parse-once shared.

Times ``repro lint`` over ``src/repro`` -- every file parsed exactly
once into the shared :class:`~repro.lint.model.SourceModel`, all six
passes (including the interprocedural race/escape/wire analyses and
the call graph they share) running over that one AST forest.

Results are written to ``BENCH_lint.json`` at the repository root (CI
archives it as an artifact).
"""

import json
import os
import time

from repro.lint import lint_paths
from repro.lint.engine import iter_python_files

SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "src", "repro",
)
RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_lint.json",
)

RUNS = 3


def test_bench_full_tree_lint():
    file_count = len(list(iter_python_files([SRC])))
    assert file_count > 50

    report = lint_paths([SRC])  # warm-up (bytecode, imports)
    assert report.ok, report.to_text()

    timings = []
    for _ in range(RUNS):
        started = time.perf_counter()
        report = lint_paths([SRC])
        timings.append(time.perf_counter() - started)
    best = min(timings)

    payload = {
        "benchmark": "lint-full-tree",
        "files_scanned": report.files_scanned,
        "passes": report.engine["passes"],
        "ir_functions": report.engine["ir_functions"],
        "callgraph_edges": report.engine["callgraph_edges"],
        "runs": RUNS,
        "best_seconds": round(best, 4),
        "files_per_second": round(report.files_scanned / best, 1),
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    # The tree lints in interactive time: the shared-AST design keeps
    # the six passes from re-parsing 98 files six times over.
    assert report.files_scanned == file_count
    assert best < 30.0
