"""E2 -- Figure 2 (DVS): execution throughput and Invariants 4.1/4.2.

Regenerates the DVS specification's behaviour under a primary-view
adversary and measures (a) raw stepping throughput and (b) the cost of the
dynamic intersection invariant, whose check is quadratic in the number of
created views -- the price of the weaker-than-static guarantee.
"""

from repro.checking import build_closed_dvs_spec, random_view_pool
from repro.core import make_view
from repro.dvs import dvs_spec_invariants
from repro.ioa import run_random

UNIVERSE = ["p1", "p2", "p3", "p4"]
V0 = make_view(0, UNIVERSE[:3])
POOL = random_view_pool(UNIVERSE, 6, seed=23, min_size=2)
WEIGHTS = {"dvs_createview": 0.15, "dvs_newview": 0.7, "dvs_register": 1.5}
STEPS = 400


def _run(seed=0):
    system, _ = build_closed_dvs_spec(
        V0, UNIVERSE, view_pool=POOL, budget=3, eager_register=True
    )
    return run_random(system, STEPS, seed=seed, weights=WEIGHTS)


def test_bench_dvs_execution(benchmark):
    """Steps of the DVS spec automaton per benchmark round."""
    execution = benchmark(_run)
    assert len(execution) > 50


def test_bench_dvs_intersection_invariant(benchmark):
    """Invariants 4.1 + 4.2 checked on every state of a run."""
    execution = _run()
    suite = dvs_spec_invariants()

    def check():
        count = 0
        for state in execution.states():
            suite.check_state(state.part("dvs"))
            count += 1
        return count

    states = benchmark(check)
    assert states == len(execution) + 1


def test_bench_dvs_createview_precondition(benchmark):
    """The primary-view admission test itself (Figure 2 precondition),
    evaluated against a state with many created views."""
    from repro.ioa import act

    system, _ = build_closed_dvs_spec(
        V0, UNIVERSE, view_pool=POOL, budget=3, eager_register=True
    )
    execution = _run(seed=3)
    dvs = system.component("dvs")
    state = execution.final_state.part("dvs")
    candidate = make_view(99, {"p1", "p2"})

    def admission():
        return dvs.pre_dvs_createview(state, candidate)

    benchmark(admission)
