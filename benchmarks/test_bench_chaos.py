"""E10 -- chaos benchmark: full stack under a nemesis plan with the
online safety monitor armed.

Measures the cost of a monitored chaos run (simulated time, wire
traffic, drops, monitor-checked events) for each nemesis plan family,
and the overhead the online monitor adds over an unmonitored run of the
same schedule.
"""

from repro.analysis import render_table
from repro.faults.harness import run_chaos
from repro.faults.nemesis import (
    crash_recovery_storm,
    flaky_link_windows,
    partition_churn,
)

PROCS = ["p1", "p2", "p3", "p4", "p5"]
DURATION = 160.0


def _plan(family, seed=0):
    builders = {
        "storm": crash_recovery_storm,
        "churn": partition_churn,
        "flaky": flaky_link_windows,
    }
    return builders[family](PROCS, seed=seed, start=10.0, duration=100.0)


def _run(family, monitor=True):
    result = run_chaos(
        PROCS, seed=0, plan=_plan(family), duration=DURATION,
        monitor=monitor,
    )
    assert result.ok
    return result


def test_bench_chaos_storm(benchmark):
    result = benchmark(_run, "storm")
    assert result.stats["violations"] == 0


def test_bench_chaos_churn(benchmark):
    result = benchmark(_run, "churn")
    assert result.stats["violations"] == 0


def test_bench_chaos_flaky(benchmark):
    result = benchmark(_run, "flaky")
    assert result.stats["violations"] == 0


def test_bench_monitor_overhead(benchmark):
    unmonitored = benchmark(_run, "churn", monitor=False)
    monitored = _run("churn")
    rows = []
    for family in ("storm", "churn", "flaky"):
        r = _run(family)
        rows.append([
            family,
            len(r.plan),
            "{0:.0f}".format(r.stats["sim_time"]),
            r.stats["wire_sends"],
            r.stats["drops"],
            r.stats["events"],
        ])
    print()
    print(
        render_table(
            ["plan", "ops", "sim time", "wire msgs", "drops", "checked"],
            rows,
            title="E10: chaos runs under the online monitor (5 nodes)",
        )
    )
    assert monitored.stats["wire_sends"] == unmonitored.stats["wire_sends"]
