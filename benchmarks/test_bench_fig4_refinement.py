"""E4 -- Figure 4 (the refinement ℱ) and Theorem 5.9, mechanized.

Measures the cost of executing ℱ on a reachable DVS-IMPL state and of the
full step-correspondence check (Lemma 5.8's case analysis performed
mechanically per step).
"""

from repro.checking import build_closed_dvs_impl, random_view_pool
from repro.core import make_view
from repro.dvs import dvs_refinement_checker, refinement_f
from repro.ioa import run_random

UNIVERSE = ["p1", "p2", "p3", "p4"]
V0 = make_view(0, UNIVERSE[:3])
POOL = random_view_pool(UNIVERSE, 5, seed=11, min_size=2)
WEIGHTS = {
    "vs_createview": 0.2,
    "vs_newview": 1.0,
    "dvs_newview": 2.0,
    "dvs_register": 2.0,
    "dvs_garbage_collect": 1.5,
}


def _execution(steps=400, seed=0):
    system, procs = build_closed_dvs_impl(
        V0, UNIVERSE, view_pool=POOL, budget=2
    )
    return run_random(system, steps, seed=seed, weights=WEIGHTS), procs


def test_bench_refinement_mapping(benchmark):
    """One application of ℱ (Figure 4) to a mid-run state."""
    execution, procs = _execution()
    mapping = refinement_f(procs, V0, UNIVERSE)
    state = execution.final_state
    abstract = benchmark(lambda: mapping(state))
    assert V0 in abstract.created


def test_bench_theorem_5_9_check(benchmark):
    """Full step correspondence over a 400-step execution."""
    execution, procs = _execution()
    checker = dvs_refinement_checker(procs, V0, UNIVERSE)
    total = benchmark(lambda: checker.check_execution(execution))
    assert total >= 0


def test_bench_fragment_search_without_hints(benchmark):
    """The generic BFS fallback on the hardest step shape
    (DVS-NEWVIEW of an uncreated view: CREATEVIEW + NEWVIEW)."""
    execution, procs = _execution(seed=3)
    checker = dvs_refinement_checker(
        procs, V0, UNIVERSE, view_pool=POOL
    )
    checker.hints = None  # force the search
    target = None
    checker.check_initial(execution.initial_state)
    for step in execution.steps:
        if step.action.name == "dvs_newview":
            target = step
            break
    assert target is not None
    fragment = benchmark(lambda: checker.check_step(target))
    assert fragment
