"""E5 -- Figure 5 (DVS-TO-TO / TO-IMPL): broadcast and recovery costs.

Regenerates TO-IMPL behaviour and measures: stepping throughput, the
Section 6.2 invariant suite, the Theorem 6.4 refinement check, and the
recovery cost (events from a DVS-NEWVIEW to establishment).
"""

from repro.analysis import render_table
from repro.checking import build_closed_to_impl, random_view_pool
from repro.core import make_view
from repro.ioa import run_random
from repro.to import to_impl_invariants, to_refinement_checker

UNIVERSE = ["p1", "p2", "p3"]
V0 = make_view(0, UNIVERSE)
POOL = random_view_pool(UNIVERSE, 3, seed=19, min_size=2)
WEIGHTS = {"dvs_createview": 0.06, "dvs_newview": 0.5, "bcast": 1.0}


def _run(seed=0, steps=1500):
    system, procs = build_closed_to_impl(
        V0, UNIVERSE, view_pool=POOL, budget=3
    )
    return run_random(system, steps, seed=seed, weights=WEIGHTS), procs


def test_bench_to_impl_execution(benchmark):
    execution, _ = benchmark(_run)
    assert len(execution) > 100


def test_bench_to_impl_invariants(benchmark):
    execution, procs = _run()
    suite = to_impl_invariants(procs)
    states = benchmark(lambda: suite.check_execution(execution))
    assert states == len(execution) + 1


def test_bench_theorem_6_4_check(benchmark):
    execution, procs = _run(steps=800)
    checker = to_refinement_checker(procs)
    total = benchmark(lambda: checker.check_execution(execution))
    assert total >= 0


def test_bench_broadcast_delivery_cost(benchmark):
    """System events consumed per delivered payload, and recovery share."""

    def measure():
        execution, _ = _run(seed=2, steps=3000)
        actions = execution.actions()
        deliveries = sum(1 for a in actions if a.name == "brcv")
        from repro.to.summaries import Summary

        summary_msgs = sum(
            1
            for a in actions
            if a.name == "dvs_gpsnd" and isinstance(a.params[0], Summary)
        )
        views = sum(1 for a in actions if a.name == "dvs_newview")
        return len(actions), deliveries, summary_msgs, views

    total, deliveries, summaries, views = benchmark(measure)
    print()
    print(
        render_table(
            ["events", "brcv", "events/brcv", "summaries", "views"],
            [[
                total,
                deliveries,
                "{0:.1f}".format(total / max(deliveries, 1)),
                summaries,
                views,
            ]],
            title="E5: end-to-end broadcast cost (one 3000-step run)",
        )
    )
    assert deliveries > 0
