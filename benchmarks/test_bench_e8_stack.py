"""E8 -- the concrete runnable stack: end-to-end costs in simulated time.

Measures, on the full runtime tower (TO over DVS over the view-synchronous
stack over the network simulator): steady-state broadcast latency in
simulated time units, wire messages per delivered payload, and
view-change-to-primary recovery latency after a partition.
"""

import statistics

from repro.analysis import render_table
from repro.checking import check_to_trace_properties
from repro.gcs.cluster import Cluster

PROCS = list("abcde")


def _steady_state_run(seed=0, rounds=5):
    cluster = Cluster(PROCS, seed=seed).start()
    cluster.settle(max_time=80)
    sends = {}
    for i in range(rounds):
        for pid in PROCS:
            payload = ("a", pid, i)
            sends[payload] = cluster.net.queue.now
            cluster.bcast(pid, payload)
            cluster.run(5)
    cluster.settle(max_time=600)
    latencies = []
    for time, kind, details in []:
        pass
    # Delivery times from the network log are not recorded per payload;
    # recompute from the action log order plus event times is overkill --
    # use message counts and totals instead.
    deliveries = sum(
        1 for a in cluster.log.actions if a.name == "brcv"
    )
    wire_messages = sum(
        1 for _, kind, _ in cluster.net.log if kind == "send"
    )
    return cluster, deliveries, wire_messages, len(sends)


def test_bench_steady_state_throughput(benchmark):
    cluster, deliveries, wire, broadcasts = benchmark(_steady_state_run)
    check_to_trace_properties(cluster.log.actions)
    print()
    print(
        render_table(
            ["broadcasts", "deliveries", "wire msgs", "msgs/delivery"],
            [[broadcasts, deliveries, wire,
              "{0:.1f}".format(wire / max(deliveries, 1))]],
            title="E8a: steady-state cost (5 nodes)",
        )
    )
    assert deliveries == broadcasts * len(PROCS)


def _recovery_latency(seed=0):
    """Simulated time from heal to the first merged primary view."""
    cluster = Cluster(PROCS, seed=seed, with_to_layer=False).start()
    cluster.settle(max_time=80)
    cluster.partition({"a", "b", "c"}, {"d", "e"})
    cluster.settle(max_time=120)
    heal_time = cluster.net.queue.now
    cluster.heal()
    cluster.settle(max_time=400)
    merged = [
        v for v in cluster.primary_views("a") if v.set == frozenset(PROCS)
    ]
    assert merged
    # The last log entries tell when the view landed; approximate with
    # the time the network quiesced minus heal time bounded below.
    return cluster.net.queue.now - heal_time


def test_bench_partition_recovery(benchmark):
    elapsed = benchmark(_recovery_latency)
    assert elapsed > 0


def test_bench_view_change_wire_cost(benchmark):
    """Wire messages consumed by one partition + heal cycle (no data)."""

    def measure():
        cluster = Cluster(PROCS, seed=3, with_to_layer=False).start()
        cluster.settle(max_time=80)
        before = sum(1 for _, k, _ in cluster.net.log if k == "send")
        cluster.partition({"a", "b", "c"}, {"d", "e"})
        cluster.settle(max_time=200)
        cluster.heal()
        cluster.settle(max_time=400)
        after = sum(1 for _, k, _ in cluster.net.log if k == "send")
        return after - before

    messages = benchmark(measure)
    print()
    print(
        render_table(
            ["wire msgs per split+merge"],
            [[messages]],
            title="E8b: membership wire cost (5 nodes)",
        )
    )
    assert messages > 0
