"""E11 -- live-runtime benchmark: TO-broadcast over real loopback TCP.

Measures totally-ordered broadcast throughput and delivery latency on
an in-process :class:`~repro.runtime.cluster.RuntimeCluster` (every
node a real socket endpoint on 127.0.0.1) for 3- and 5-node clusters,
with the online safety monitor armed throughout.  End-to-end latencies
are taken from the shared action log: for each request, the gap between
its ``bcast`` record and each replica's ``brcv`` record on the
cluster's monotonic clock.

The headline runs are *traced*: the observability layer is armed, and
each result carries the per-stage latency breakdown (wire / vs / dvs /
to) stitched from causal spans, plus the fan-out economics of the
encode-once broadcast path (frames shipped per codec encode).  A
dedicated comparison measures the tracing+metrics overhead against an
untraced run of the same workload.

Results are also written to ``BENCH_runtime.json`` at the repository
root (CI archives it as an artifact).
"""

import json
import os

import repro.runtime.node
from repro.analysis import render_table
from repro.apps.kv_store import KvReplica
from repro.runtime.cluster import RuntimeCluster

REQUESTS = 200
OVERHEAD_REQUESTS = 120
WAIT = 60.0
RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_runtime.json",
)

#: Filled by the per-size benchmarks, flushed by the report test (which
#: runs last in file order).
RESULTS = {}


def _percentile(values, fraction):
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


class _EncodeCounter:
    """Counts trips through the runtime codec's encode path for the
    duration of one workload (single-threaded arm/disarm brackets the
    cluster's whole lifetime)."""

    def __init__(self):
        self.calls = 0
        self._real = None

    def __enter__(self):
        self._real = repro.runtime.node.encode_frame

        def counting(envelope):
            self.calls += 1
            return self._real(envelope)

        repro.runtime.node.encode_frame = counting
        return self

    def __exit__(self, exc_type, exc, tb):
        repro.runtime.node.encode_frame = self._real
        return False


def _run_workload(nodes, requests=REQUESTS, obs=False):
    pids = ["n{0}".format(i + 1) for i in range(nodes)]
    cluster = RuntimeCluster(
        pids,
        app_factory=lambda node: KvReplica(node.to),
        hb_interval=0.05,
        hb_timeout=0.25,
        obs=True if obs else None,
    )
    with _EncodeCounter() as encodes, cluster:
        cluster.wait_formation(timeout=WAIT)
        t_start = cluster._call(lambda: cluster._clock.now)
        for i in range(requests):
            pid = pids[i % nodes]
            cluster.call_app(
                pid,
                lambda app, i=i: app.put(
                    "key-{0}".format(i % 32), "value-{0}".format(i)
                ),
            )
        cluster.wait_until(
            lambda: all(
                cluster.app(pid).log_length >= requests for pid in pids
            ),
            timeout=WAIT,
            what="{0} requests applied everywhere".format(requests),
        )
        t_end = cluster._call(lambda: cluster._clock.now)
        cluster.check()
        timed = cluster._call(cluster.log.timed_actions)
        trace = cluster.trace_snapshot() if obs else None
        metrics = cluster.metrics_snapshot() if obs else None

    sends = {}
    latencies = []
    for time, action in timed:
        if action.name == "bcast":
            sends[(action.params[0], action.params[1])] = time
        elif action.name == "brcv":
            sent = sends.get((action.params[0], action.params[1]))
            if sent is not None and time is not None:
                latencies.append(time - sent)

    elapsed = t_end - t_start
    assert latencies, "action log must carry timed bcast/brcv pairs"
    result = {
        "nodes": nodes,
        "requests": requests,
        "traced": bool(obs),
        "elapsed_s": round(elapsed, 4),
        "throughput_req_s": round(requests / elapsed, 1),
        "deliveries": len(latencies),
        "latency_ms": {
            "mean": round(1e3 * sum(latencies) / len(latencies), 3),
            "p50": round(1e3 * _percentile(latencies, 0.50), 3),
            "p95": round(1e3 * _percentile(latencies, 0.95), 3),
            "max": round(1e3 * max(latencies), 3),
        },
    }
    if obs:
        stages = trace["summary"]["stages"]
        result["stages_ms"] = {
            stage: {
                "p50": round(stats["p50_ms"], 3),
                "mean": round(stats["mean_ms"], 3),
                "p95": round(stats["p95_ms"], 3),
                "max": round(stats["max_ms"], 3),
            }
            for stage, stats in sorted(stages.items())
        }
        result["span_deliveries"] = trace["summary"]["deliveries"]
        result["span_orphans"] = trace["summary"]["orphans"]
        frames_out = sum(
            metrics["runtime.{0}.transport.frames_out".format(pid)]["value"]
            for pid in pids
        )
        # The encode-once broadcast path: frames shipped per codec
        # encode (> 1 means fan-out reused one encoded frame).
        result["encode_once"] = {
            "frames_out": frames_out,
            "encodes": encodes.calls,
            "frames_per_encode": round(
                frames_out / encodes.calls, 2
            ) if encodes.calls else None,
        }
    return result


def _bench(benchmark, nodes):
    # One full workload per measurement: cluster boot and teardown are
    # part of neither the throughput window nor the latency samples,
    # but they make repeats expensive -- hence pedantic single rounds.
    result = benchmark.pedantic(
        _run_workload, args=(nodes,), kwargs={"obs": True},
        rounds=1, iterations=1,
    )
    assert result["deliveries"] >= nodes * REQUESTS
    assert result["span_orphans"] == 0
    RESULTS["{0}-node".format(nodes)] = result
    return result


def test_bench_runtime_to_3_nodes(benchmark):
    result = _bench(benchmark, 3)
    assert result["throughput_req_s"] > 0


def test_bench_runtime_to_5_nodes(benchmark):
    result = _bench(benchmark, 5)
    assert result["throughput_req_s"] > 0


def test_stage_breakdown_accounts_for_end_to_end_latency():
    """The per-stage p50s must reassemble the end-to-end p50: the span
    decomposition is exact per delivery, so the medians may disagree
    only by ordinary non-additivity (within 15%)."""
    result = RESULTS.get("3-node")
    if result is None:
        result = RESULTS["3-node"] = _run_workload(3, obs=True)
    stages = result["stages_ms"]
    stage_sum = sum(
        stages[name]["p50"] for name in ("wire", "vs", "dvs", "to")
    )
    total_p50 = stages["total"]["p50"]
    assert total_p50 > 0
    assert abs(stage_sum - total_p50) <= 0.15 * total_p50, (
        "stage p50s {0:.3f}ms vs end-to-end p50 {1:.3f}ms".format(
            stage_sum, total_p50
        )
    )
    # Encode-once fan-out: strictly more frames shipped than encodes.
    economics = result["encode_once"]
    assert economics["frames_per_encode"] > 1.0


def test_tracing_overhead_is_bounded():
    """Arming tracing+metrics must cost < 10% throughput on the 3-node
    workload.  Run-to-run scheduler noise on loopback TCP exceeds the
    overhead itself, so: one discarded warm-up, then interleaved
    untraced/traced pairs, comparing best-of-3 each way."""
    _run_workload(3, requests=OVERHEAD_REQUESTS // 2)  # warm-up
    untraced, traced = [], []
    for _ in range(3):
        untraced.append(
            _run_workload(
                3, requests=OVERHEAD_REQUESTS
            )["throughput_req_s"]
        )
        traced.append(
            _run_workload(
                3, requests=OVERHEAD_REQUESTS, obs=True
            )["throughput_req_s"]
        )
    untraced, traced = max(untraced), max(traced)
    ratio = traced / untraced
    RESULTS["tracing-overhead"] = {
        "requests": OVERHEAD_REQUESTS,
        "untraced_req_s": untraced,
        "traced_req_s": traced,
        "traced_over_untraced": round(ratio, 4),
    }
    assert ratio >= 0.9, (
        "tracing overhead too high: {0:.1f} traced vs {1:.1f} untraced "
        "req/s".format(traced, untraced)
    )


def test_bench_runtime_report():
    # Runs after the measurements (pytest preserves file order); if a
    # subset was selected, regenerate what is missing.
    for nodes in (3, 5):
        RESULTS.setdefault(
            "{0}-node".format(nodes), _run_workload(nodes, obs=True)
        )
    payload = {
        "benchmark": "runtime-to-throughput",
        "transport": "tcp-loopback",
        "monitor": "armed",
        "observability": "traced headline runs; overhead vs untraced",
        "results": {k: RESULTS[k] for k in sorted(RESULTS)},
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    rows = []
    for key in sorted(RESULTS):
        r = RESULTS[key]
        if "latency_ms" not in r:
            continue
        stages = r.get("stages_ms", {})
        rows.append([
            key,
            r["requests"],
            r["throughput_req_s"],
            r["latency_ms"]["p50"],
            stages.get("wire", {}).get("p50", "-"),
            stages.get("vs", {}).get("p50", "-"),
            stages.get("dvs", {}).get("p50", "-"),
            stages.get("to", {}).get("p50", "-"),
            r["latency_ms"]["p95"],
        ])
    print()
    print(
        render_table(
            ["cluster", "requests", "req/s", "p50 ms", "wire", "vs",
             "dvs", "to", "p95 ms"],
            rows,
            title="E11: live TO broadcast on loopback TCP "
                  "(monitor armed, spans stitched)",
        )
    )
