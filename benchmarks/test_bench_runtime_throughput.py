"""E11 -- live-runtime benchmark: TO-broadcast over real loopback TCP.

Measures totally-ordered broadcast throughput and delivery latency on
an in-process :class:`~repro.runtime.cluster.RuntimeCluster` (every
node a real socket endpoint on 127.0.0.1) for 3- and 5-node clusters,
with the online safety monitor armed throughout.  Latencies are taken
from the shared action log: for each request, the gap between its
``bcast`` record and each replica's ``brcv`` record on the cluster's
monotonic clock.

Results are also written to ``BENCH_runtime.json`` at the repository
root (CI archives it as an artifact).
"""

import json
import os

from repro.analysis import render_table
from repro.apps.kv_store import KvReplica
from repro.runtime.cluster import RuntimeCluster

REQUESTS = 200
WAIT = 60.0
RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_runtime.json",
)

#: Filled by the per-size benchmarks, flushed by the report test (which
#: runs last in file order).
RESULTS = {}


def _percentile(values, fraction):
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _run_workload(nodes, requests=REQUESTS):
    pids = ["n{0}".format(i + 1) for i in range(nodes)]
    cluster = RuntimeCluster(
        pids,
        app_factory=lambda node: KvReplica(node.to),
        hb_interval=0.05,
        hb_timeout=0.25,
    )
    with cluster:
        cluster.wait_formation(timeout=WAIT)
        t_start = cluster._call(lambda: cluster._clock.now)
        for i in range(requests):
            pid = pids[i % nodes]
            cluster.call_app(
                pid,
                lambda app, i=i: app.put(
                    "key-{0}".format(i % 32), "value-{0}".format(i)
                ),
            )
        cluster.wait_until(
            lambda: all(
                cluster.app(pid).log_length >= requests for pid in pids
            ),
            timeout=WAIT,
            what="{0} requests applied everywhere".format(requests),
        )
        t_end = cluster._call(lambda: cluster._clock.now)
        cluster.check()
        timed = cluster._call(cluster.log.timed_actions)

    sends = {}
    latencies = []
    for time, action in timed:
        if action.name == "bcast":
            sends[(action.params[0], action.params[1])] = time
        elif action.name == "brcv":
            sent = sends.get((action.params[0], action.params[1]))
            if sent is not None and time is not None:
                latencies.append(time - sent)

    elapsed = t_end - t_start
    assert latencies, "action log must carry timed bcast/brcv pairs"
    return {
        "nodes": nodes,
        "requests": requests,
        "elapsed_s": round(elapsed, 4),
        "throughput_req_s": round(requests / elapsed, 1),
        "deliveries": len(latencies),
        "latency_ms": {
            "mean": round(1e3 * sum(latencies) / len(latencies), 3),
            "p50": round(1e3 * _percentile(latencies, 0.50), 3),
            "p95": round(1e3 * _percentile(latencies, 0.95), 3),
            "max": round(1e3 * max(latencies), 3),
        },
    }


def _bench(benchmark, nodes):
    # One full workload per measurement: cluster boot and teardown are
    # part of neither the throughput window nor the latency samples,
    # but they make repeats expensive -- hence pedantic single rounds.
    result = benchmark.pedantic(
        _run_workload, args=(nodes,), rounds=1, iterations=1
    )
    assert result["deliveries"] >= nodes * REQUESTS
    RESULTS["{0}-node".format(nodes)] = result
    return result


def test_bench_runtime_to_3_nodes(benchmark):
    result = _bench(benchmark, 3)
    assert result["throughput_req_s"] > 0


def test_bench_runtime_to_5_nodes(benchmark):
    result = _bench(benchmark, 5)
    assert result["throughput_req_s"] > 0


def test_bench_runtime_report():
    # Runs after the measurements (pytest preserves file order); if a
    # subset was selected, regenerate what is missing.
    for nodes in (3, 5):
        RESULTS.setdefault(
            "{0}-node".format(nodes), _run_workload(nodes)
        )
    payload = {
        "benchmark": "runtime-to-throughput",
        "transport": "tcp-loopback",
        "monitor": "armed",
        "results": {k: RESULTS[k] for k in sorted(RESULTS)},
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    rows = []
    for key in sorted(RESULTS):
        r = RESULTS[key]
        rows.append([
            key,
            r["requests"],
            r["throughput_req_s"],
            r["latency_ms"]["p50"],
            r["latency_ms"]["p95"],
            r["latency_ms"]["max"],
        ])
    print()
    print(
        render_table(
            ["cluster", "requests", "req/s", "p50 ms", "p95 ms", "max ms"],
            rows,
            title="E11: live TO broadcast on loopback TCP "
                  "(monitor armed)",
        )
    )
