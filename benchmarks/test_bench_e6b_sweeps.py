"""E6 (figure form) -- availability curves over churn parameters.

Sweeps trace the full curves behind the E6 tables: availability vs.
departure rate (where the static and dynamic rules cross), and
availability vs. registration lag (the price of slow state exchange).
"""

from repro.analysis import (
    ascii_series,
    crossover_point,
    render_table,
    sweep_drift_rate,
    sweep_register_lag,
)

UNIVERSE = ["p{0}".format(i) for i in range(1, 8)]
LEAVE_PROBS = [0.0, 0.005, 0.01, 0.02, 0.04, 0.08]
LAGS = [0, 1, 2, 4]


def test_bench_drift_sweep(benchmark):
    points = benchmark(
        lambda: sweep_drift_rate(
            UNIVERSE, LEAVE_PROBS, steps=300, repeats=2
        )
    )
    print()
    print(
        render_table(
            ["leave prob", "static avail", "dynamic avail"],
            [p.row() for p in points],
            title="E6 figure: availability vs departure rate",
        )
    )
    print(ascii_series(points))
    crossover = crossover_point(points)
    print("crossover at leave_prob =", crossover)
    # Shape: equal at zero drift; dynamic dominates from the first
    # nonzero drift rate onward.
    assert abs(points[0].static - points[0].dynamic) < 0.1
    assert crossover is not None and crossover <= LEAVE_PROBS[1]
    assert all(p.dynamic > p.static for p in points[1:])


def test_bench_register_lag_sweep(benchmark):
    points = benchmark(
        lambda: sweep_register_lag(UNIVERSE, LAGS, steps=300, repeats=2)
    )
    print()
    print(
        render_table(
            ["register lag", "static avail", "dynamic avail"],
            [p.row() for p in points],
            title="E6 figure: availability vs registration lag",
        )
    )
    # Shape: static is lag-independent; dynamic availability is
    # non-increasing in the lag.
    statics = {p.static for p in points}
    assert len(statics) == 1
    dynamics = [p.dynamic for p in points]
    assert all(a >= b - 1e-9 for a, b in zip(dynamics, dynamics[1:]))
