"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment from DESIGN.md's index (E1-E8)
and, where the experiment has a result table, prints it (run with ``-s``
to see the tables; EXPERIMENTS.md records the reference output).
"""

import pytest

from repro.core import make_view


@pytest.fixture
def universe4():
    return ["p1", "p2", "p3", "p4"]


@pytest.fixture
def v0_of(universe4):
    return make_view(0, universe4[:3])
