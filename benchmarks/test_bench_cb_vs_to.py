"""E12 -- ordering-tier benchmark: causal vs totally ordered broadcast.

Runs the *same* broadcast workload through both ordering towers of one
live :class:`~repro.runtime.cluster.RuntimeCluster` (every node a real
socket endpoint on 127.0.0.1, online safety monitor armed) for 3- and
5-node clusters, and compares throughput and delivery latency.

The interesting number is the latency gap.  A TO broadcast is confirmed
only after the DVS *safe* indication -- every member has acknowledged
the sequencer's ordering decision -- so each delivery pays a full
ack round beyond dissemination.  A CB cast delivers as soon as it
arrives with its causal predecessors already delivered: no sequencer,
no safe round, roughly half the protocol hops.  The paper's service
hierarchy prices exactly this trade (total order when replicas must
agree on one history, causal order when per-sender FIFO + causality
suffice), and the benchmark makes the price concrete.

End-to-end latencies are taken from the shared action log on the
cluster's monotonic clock: ``bcast``->``brcv`` gaps for TO,
``cbcast``->``cb_brcv`` gaps for CB.  Results land in ``BENCH_cb.json``
at the repository root (CI archives it as an artifact).
"""

import json
import os

from repro.analysis import render_table
from repro.runtime.cluster import RuntimeCluster

REQUESTS = 150
WAIT = 60.0
RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_cb.json",
)

#: Filled by the per-size benchmarks, flushed by the report test (which
#: runs last in file order).
RESULTS = {}


def _percentile(values, fraction):
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _delivered(cluster, kind, pid):
    """Deliveries of ``kind`` ("brcv"/"cb_brcv") recorded at ``pid``.

    Reads the shared log directly, so it is safe inside ``wait_until``
    predicates (which run on the loop thread: a marshalled call there
    would deadlock).
    """
    return sum(
        1 for action in cluster.log.actions
        if action.name == kind and action.params[2] == pid
    )


def _run_tier(cluster, pids, tier, requests=REQUESTS, phase="run"):
    """Drive ``requests`` broadcasts through one ordering tower and
    wait until every live member delivered all of them.  ``phase``
    keeps payloads globally unique across warm-up and headline runs
    (the monitor's no-duplication check keys on payload + origin)."""
    deliver_kind = "brcv" if tier == "to" else "cb_brcv"
    base = {pid: _delivered(cluster, deliver_kind, pid) for pid in pids}
    t_start = cluster._call(lambda: cluster._clock.now)
    for i in range(requests):
        pid = pids[i % len(pids)]
        cluster.bcast(pid, ("bench", tier, phase, i), ordering=tier)
    cluster.wait_until(
        lambda: all(
            _delivered(cluster, deliver_kind, pid) >= base[pid] + requests
            for pid in pids
        ),
        timeout=WAIT,
        what="{0} {1} broadcasts delivered everywhere".format(
            requests, tier),
    )
    t_end = cluster._call(lambda: cluster._clock.now)

    def ours(payload):
        # Only this call's sends: the log accumulates across phases.
        return (
            isinstance(payload, tuple) and len(payload) == 4
            and payload[:3] == ("bench", tier, phase)
        )

    sends = {}
    latencies = []
    for time, action in cluster._call(cluster.log.timed_actions):
        if action.name == "bcast" and tier == "to":
            if ours(action.params[0]):
                sends[(action.params[0], action.params[1])] = time
        elif action.name == "cbcast" and tier == "cb":
            if ours(action.params[0]):
                sends[(action.params[0], action.params[1])] = time
        elif action.name == "brcv" and tier == "to":
            sent = sends.get((action.params[0], action.params[1]))
            if sent is not None and time is not None:
                latencies.append(time - sent)
        elif action.name == "cb_brcv" and tier == "cb":
            message = action.params[0]
            sent = sends.get((message.payload, action.params[1]))
            if sent is not None and time is not None:
                latencies.append(time - sent)

    elapsed = t_end - t_start
    assert latencies, "log must carry timed {0} pairs".format(tier)
    return {
        "tier": tier,
        "requests": requests,
        "elapsed_s": round(elapsed, 4),
        "throughput_req_s": round(requests / elapsed, 1),
        "deliveries": len(latencies),
        "latency_ms": {
            "mean": round(1e3 * sum(latencies) / len(latencies), 3),
            "p50": round(1e3 * _percentile(latencies, 0.50), 3),
            "p95": round(1e3 * _percentile(latencies, 0.95), 3),
            "max": round(1e3 * max(latencies), 3),
        },
    }


def _run_comparison(nodes, requests=REQUESTS):
    """Both tiers over one cluster: same sockets, same heartbeat state,
    sequential workloads (a short warm-up each, discarded)."""
    pids = ["n{0}".format(i + 1) for i in range(nodes)]
    cluster = RuntimeCluster(
        pids, hb_interval=0.05, hb_timeout=0.25,
    )
    with cluster:
        cluster.wait_formation(timeout=WAIT)
        _run_tier(cluster, pids, "to", requests=nodes * 4, phase="warm")
        _run_tier(cluster, pids, "cb", requests=nodes * 4, phase="warm")
        to_result = _run_tier(cluster, pids, "to", requests=requests)
        cb_result = _run_tier(cluster, pids, "cb", requests=requests)
        cluster.check()
        violations = len(cluster.violations)
    assert violations == 0, "safety monitor reported violations"
    comparison = {
        "nodes": nodes,
        "to": to_result,
        "cb": cb_result,
        "cb_over_to_p50": round(
            cb_result["latency_ms"]["p50"]
            / to_result["latency_ms"]["p50"], 4
        ) if to_result["latency_ms"]["p50"] else None,
    }
    # Every broadcast reaches every member (sender included) in both
    # tiers -- CB's weaker order drops nothing in a stable view.
    assert to_result["deliveries"] >= nodes * requests
    assert cb_result["deliveries"] >= nodes * requests
    return comparison


def _bench(benchmark, nodes):
    result = benchmark.pedantic(
        _run_comparison, args=(nodes,), rounds=1, iterations=1,
    )
    RESULTS["{0}-node".format(nodes)] = result
    return result


def test_bench_cb_vs_to_3_nodes(benchmark):
    result = _bench(benchmark, 3)
    # The acceptance headline: causal delivery must be strictly
    # cheaper than totally ordered delivery on the 3-node cluster --
    # CB skips the sequencer's safe round that TO waits out.
    assert (
        result["cb"]["latency_ms"]["p50"]
        < result["to"]["latency_ms"]["p50"]
    ), result


def test_bench_cb_vs_to_5_nodes(benchmark):
    result = _bench(benchmark, 5)
    assert result["cb"]["throughput_req_s"] > 0
    assert result["to"]["throughput_req_s"] > 0


def test_bench_cb_report():
    for nodes in (3, 5):
        RESULTS.setdefault(
            "{0}-node".format(nodes), _run_comparison(nodes)
        )
    payload = {
        "benchmark": "cb-vs-to-latency",
        "transport": "tcp-loopback",
        "monitor": "armed",
        "results": {k: RESULTS[k] for k in sorted(RESULTS)},
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    rows = []
    for key in sorted(RESULTS):
        result = RESULTS[key]
        for tier in ("to", "cb"):
            r = result[tier]
            rows.append([
                key,
                tier,
                r["requests"],
                r["throughput_req_s"],
                r["latency_ms"]["p50"],
                r["latency_ms"]["p95"],
            ])
    print()
    print(
        render_table(
            ["cluster", "tier", "requests", "req/s", "p50 ms", "p95 ms"],
            rows,
            title="E12: causal vs totally ordered broadcast on "
                  "loopback TCP (monitor armed)",
        )
    )
