"""E12 -- replay benchmark: deterministic re-execution of a recorded
live run.

A short live chaos run (3 nodes, partition + jitter + loss on loopback
TCP) is recorded once; the benchmarks then measure the offline half of
the pipeline: trace serialization (the length-prefixed frame codec) and
full deterministic replay through the unchanged layer stack under a
fresh safety monitor.  Replay cost is what bounds the ddmin shrinker
(each probe is one replay), so events/second here is the practical
budget for minimizing a violating live trace.
"""

from repro.analysis import render_table
from repro.checking.replay import replay_trace
from repro.faults.nemesis import NemesisPlan
from repro.obs.record import ReplayTrace
from repro.runtime.chaos import run_live_chaos

PROCS = ["n1", "n2", "n3"]

#: Recorded once, replayed many times (the whole point of the format).
_CACHE = {}


def _trace():
    if "trace" not in _CACHE:
        plan = NemesisPlan([
            (0.5, "delay", (None, 0.02, 0.05, 0.05, 3.0)),
            (0.5, "drop", (None, 0.03, 3.0)),
            (1.0, "partition", ((("n1", "n2"), ("n3",)),)),
            (2.5, "heal", ()),
        ])
        result = run_live_chaos(
            PROCS, plan=plan, duration=5.0, broadcast_interval=0.1,
            settle_time=1.5,
        )
        assert result.ok
        _CACHE["trace"] = result.trace
        _CACHE["stats"] = result.stats
    return _CACHE["trace"]


def test_bench_replay(benchmark):
    trace = _trace()
    result = benchmark(replay_trace, trace)
    assert result.ok
    assert result.stats["events"] == len(trace)


def test_bench_trace_encode(benchmark):
    trace = _trace()
    data = benchmark(trace.to_bytes)
    assert len(data) > 0


def test_bench_trace_decode(benchmark):
    data = _trace().to_bytes()
    again = benchmark(ReplayTrace.from_bytes, data)
    assert again == _trace()


def test_bench_replay_report(benchmark):
    trace = _trace()
    result = benchmark(replay_trace, trace)
    size = len(trace.to_bytes())
    print()
    print(
        render_table(
            ["events", "bytes", "bytes/event", "dispatched", "actions",
             "deliveries"],
            [[
                len(trace),
                size,
                "{0:.0f}".format(size / max(len(trace), 1)),
                result.stats["dispatched"],
                result.stats["actions"],
                result.stats["deliveries"],
            ]],
            title="E12: recorded live trace, replayed deterministically",
        )
    )
    assert result.digest == replay_trace(trace).digest
