"""E7 -- ablation: how fast counterexample search refutes broken variants.

For each ablated ``VS-TO-DVS_p`` (majority check weakened, info wait
dropped, eager garbage collection) the randomized search finds an
invariant violation; for the faithful algorithm the same budget finds
none.  The benchmark measures time-to-counterexample.
"""

import pytest

from repro.analysis import render_table
from repro.checking import build_closed_dvs_impl, random_view_pool
from repro.core import make_view
from repro.dvs.ablation import (
    EagerGarbageCollectVsToDvs,
    NoInfoWaitVsToDvs,
    NoMajorityCheckVsToDvs,
)
from repro.dvs.invariants import dvs_impl_invariants
from repro.dvs.vs_to_dvs import VsToDvs
from repro.ioa import run_random
from repro.ioa.errors import InvariantViolation

UNIVERSE = ["p1", "p2", "p3", "p4", "p5"]
V0 = make_view(0, UNIVERSE)
WEIGHTS = {
    "vs_createview": 0.4,
    "vs_newview": 1.5,
    "dvs_register": 2.5,
    "dvs_garbage_collect": 2.5,
    "dvs_newview": 2.0,
}


def search(factory, max_seeds=8, steps=2000):
    """Return (violation or None, seeds tried, steps executed)."""
    executed = 0
    for seed in range(max_seeds):
        pool = random_view_pool(UNIVERSE, 7, seed=seed * 13 + 1, min_size=1)
        system, procs = build_closed_dvs_impl(
            V0,
            UNIVERSE,
            view_pool=pool,
            budget=1,
            eager_register=True,
            filter_factory=factory,
        )
        suite = dvs_impl_invariants(procs)
        execution = run_random(system, steps, seed=seed, weights=WEIGHTS)
        executed += len(execution)
        try:
            suite.check_execution(execution)
        except InvariantViolation as violation:
            return violation, seed + 1, executed
    return None, max_seeds, executed


@pytest.mark.parametrize(
    "factory",
    [NoMajorityCheckVsToDvs, NoInfoWaitVsToDvs, EagerGarbageCollectVsToDvs],
    ids=["no-majority", "no-info-wait", "eager-gc"],
)
def test_bench_counterexample_search(benchmark, factory):
    violation, seeds, steps = benchmark(lambda: search(factory))
    print()
    print(
        render_table(
            ["variant", "violated invariant", "seeds", "steps"],
            [[factory.__name__,
              getattr(violation, "invariant_name", "-"), seeds, steps]],
            title="E7: time-to-counterexample",
        )
    )
    assert violation is not None


def test_bench_faithful_algorithm_survives_same_budget(benchmark):
    violation, seeds, steps = benchmark(
        lambda: search(VsToDvs, max_seeds=4)
    )
    assert violation is None
