"""E6 -- the paper's motivation, quantified: dynamic vs static primaries.

Three regimes over the same connectivity histories:

1. fixed population, random partitions -- static and dynamic comparable;
2. drifting population (permanent departures, fresh joins) -- static
   majority availability collapses, dynamic voting keeps tracking;
3. interrupted formations -- naive dynamic voting forms disjoint
   primaries (split brain), the LKD/DVS rule never does.

The printed tables are the reference results recorded in EXPERIMENTS.md.
"""

from repro.analysis import (
    compare_trackers,
    drifting_population,
    random_churn,
    render_table,
)
from repro.core import make_view
from repro.membership import (
    DynamicVotingTracker,
    NaiveDynamicTracker,
    StaticMajorityTracker,
)

UNIVERSE = ["p{0}".format(i) for i in range(1, 8)]
V0 = make_view(0, UNIVERSE)
HEADERS = ["rule", "availability", "primaries", "disjoint"]


def _fixed_population():
    scenario = random_churn(UNIVERSE, 400, seed=3, partition_prob=0.5)
    return compare_trackers(
        [
            ("static majority", StaticMajorityTracker(V0)),
            ("dynamic voting (DVS)", DynamicVotingTracker(V0)),
            ("dynamic voting lag=2", DynamicVotingTracker(V0, register_lag=2)),
        ],
        scenario,
    )


def _drifting_population():
    scenario = drifting_population(
        UNIVERSE, 600, seed=5, leave_prob=0.02, join_prob=0.015
    )
    return compare_trackers(
        [
            ("static majority", StaticMajorityTracker(V0)),
            ("dynamic voting (DVS)", DynamicVotingTracker(V0)),
        ],
        scenario,
    )


def _interrupted_formations(seed=1):
    scenario = random_churn(UNIVERSE, 500, seed=seed, partition_prob=0.7)
    return compare_trackers(
        [
            ("naive dynamic", NaiveDynamicTracker(
                V0, failure_prob=0.4, seed=seed)),
            ("dynamic voting (DVS)", DynamicVotingTracker(
                V0, register_lag=1, failure_prob=0.4, seed=seed)),
        ],
        scenario,
    )


def test_bench_fixed_population(benchmark):
    results = benchmark(_fixed_population)
    print()
    print(render_table(HEADERS, [r.row() for r in results],
                       title="E6a: fixed population"))
    static, dynamic, lagged = results
    assert abs(static.availability - dynamic.availability) < 0.2
    assert all(r.disjoint_incidents == 0 for r in results)


def test_bench_drifting_population(benchmark):
    results = benchmark(_drifting_population)
    print()
    print(render_table(HEADERS, [r.row() for r in results],
                       title="E6b: drifting population"))
    static, dynamic = results
    assert static.availability < 0.3
    assert dynamic.availability > 0.6


def test_bench_interrupted_formations(benchmark):
    results = benchmark(_interrupted_formations)
    print()
    print(render_table(HEADERS, [r.row() for r in results],
                       title="E6c: interrupted formations (split brain)"))
    naive, dvs = results
    assert naive.disjoint_incidents > 0
    assert dvs.disjoint_incidents == 0
