"""E3 -- Figure 3 (VS-TO-DVS / DVS-IMPL): execution and invariant costs.

Regenerates DVS-IMPL behaviour under a churn adversary and measures:
stepping throughput of the full composition, per-state cost of the
Section 5.2 invariant suite (5.1-5.6), and the message cost of a view
change (info + registered messages per attempted view).
"""

from repro.analysis import render_table
from repro.checking import build_closed_dvs_impl, random_view_pool
from repro.core import make_view
from repro.dvs import dvs_impl_invariants
from repro.ioa import run_random

UNIVERSE = ["p1", "p2", "p3", "p4"]
V0 = make_view(0, UNIVERSE[:3])
POOL = random_view_pool(UNIVERSE, 5, seed=7, min_size=2)
WEIGHTS = {
    "vs_createview": 0.2,
    "vs_newview": 1.0,
    "dvs_newview": 2.0,
    "dvs_register": 2.0,
    "dvs_garbage_collect": 1.5,
}
STEPS = 500


def _run(seed=0):
    system, procs = build_closed_dvs_impl(
        V0, UNIVERSE, view_pool=POOL, budget=2
    )
    return run_random(system, STEPS, seed=seed, weights=WEIGHTS), procs


def test_bench_dvs_impl_execution(benchmark):
    """Steps of the DVS-IMPL composition per benchmark round."""
    execution, _ = benchmark(_run)
    assert len(execution) > 50


def test_bench_dvs_impl_invariants(benchmark):
    """Invariants 5.1-5.6 checked on every state of a run."""
    execution, procs = _run()
    suite = dvs_impl_invariants(procs)
    states = benchmark(lambda: suite.check_execution(execution))
    assert states == len(execution) + 1


def test_bench_view_change_message_cost(benchmark):
    """Protocol messages spent per attempted view (the view-change cost
    the paper's algorithm adds on top of VS)."""

    def measure():
        execution, _ = _run(seed=4)
        actions = execution.actions()
        from repro.core.messages import InfoMsg, RegisteredMsg

        info = sum(
            1
            for a in actions
            if a.name == "vs_gpsnd" and isinstance(a.params[0], InfoMsg)
        )
        registered = sum(
            1
            for a in actions
            if a.name == "vs_gpsnd"
            and isinstance(a.params[0], RegisteredMsg)
        )
        attempts = sum(1 for a in actions if a.name == "dvs_newview")
        return info, registered, max(attempts, 1)

    info, registered, attempts = benchmark(measure)
    print()
    print(
        render_table(
            ["info msgs", "registered msgs", "attempts", "msgs/attempt"],
            [[info, registered, attempts,
              "{0:.1f}".format((info + registered) / attempts)]],
            title="E3: view-change message cost (one 500-step run)",
        )
    )
