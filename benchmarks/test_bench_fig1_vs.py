"""E1 -- Figure 1 (VS): execution throughput and invariant checking.

Regenerates the VS specification's behaviour: a closed VS system under a
partition adversary, measured as scheduler steps per benchmark round, plus
the cost of checking Invariant 3.1 (and the auxiliary VS invariants) on
every reachable state of an execution.
"""

from repro.checking import build_closed_vs_spec, random_view_pool
from repro.core import make_view
from repro.ioa import run_random
from repro.vs import vs_invariants

UNIVERSE = ["p1", "p2", "p3", "p4"]
V0 = make_view(0, UNIVERSE[:3])
POOL = random_view_pool(UNIVERSE, 5, seed=17, min_size=2)
WEIGHTS = {"vs_createview": 0.1, "vs_newview": 0.6}
STEPS = 400


def _run(seed=0):
    system, _ = build_closed_vs_spec(V0, UNIVERSE, view_pool=POOL, budget=3)
    return run_random(system, STEPS, seed=seed, weights=WEIGHTS)


def test_bench_vs_execution(benchmark):
    """Steps of the VS spec automaton per second (Figure 1 executed)."""
    execution = benchmark(_run)
    assert len(execution) > 50


def test_bench_vs_invariant_checking(benchmark):
    """Invariant 3.1 + auxiliaries checked on every state of a run."""
    execution = _run()
    suite = vs_invariants()

    def check():
        count = 0
        for state in execution.states():
            suite.check_state(state.part("vs"))
            count += 1
        return count

    states = benchmark(check)
    assert states == len(execution) + 1
