"""E9 -- Section 7 extensions, measured.

(a) The Isis same-messages property: DVS deliberately omits it; the
    randomized search finds a concrete violation quickly, while the TO
    guarantees hold on the same executions (the paper's point: total
    order does not need the Isis property).
(b) SX-DVS (service-supported state exchange): the simplified TO
    application over SX-DVS versus the Figure 5 application over DVS --
    same workload, same adversary; compare recovery event counts.
"""

from repro.analysis import render_table
from repro.checking import (
    build_closed_to_impl,
    check_to_trace_properties,
    random_view_pool,
)
from repro.checking.harness import build_closed_sx_to_impl
from repro.checking.isis_property import find_isis_counterexample
from repro.core import make_view
from repro.ioa import run_random

UNIVERSE = ["p1", "p2", "p3"]
V0 = make_view(0, UNIVERSE)


def test_bench_isis_counterexample_search(benchmark):
    result = benchmark(
        lambda: find_isis_counterexample(max_seeds=10, steps=2000)
    )
    assert result is not None
    seed, violations, _ = result
    print()
    print(
        render_table(
            ["found at seed", "violations", "example"],
            [[seed, len(violations), str(violations[0])[:60]]],
            title="E9a: Isis same-messages property violated by DVS",
        )
    )


def _run_variant(builder, weights, seed=0):
    pool = random_view_pool(UNIVERSE, 4, seed=19, min_size=2)
    system, procs = builder(V0, UNIVERSE, view_pool=pool, budget=3)
    return run_random(system, 3000, seed=seed, weights=weights)


def test_bench_sx_vs_figure5_recovery(benchmark):
    """Recovery traffic: Figure 5's app-level exchange vs SX-DVS."""

    def measure():
        fig5 = _run_variant(
            build_closed_to_impl,
            {"dvs_createview": 0.08, "bcast": 1.0},
        )
        sx = _run_variant(
            build_closed_sx_to_impl,
            {"dvs_createview": 0.08, "bcast": 1.0},
        )
        check_to_trace_properties(fig5.trace())
        check_to_trace_properties(sx.trace())

        def recovery_events(execution, names):
            return sum(
                1 for a in execution.actions() if a.name in names
            )

        from repro.to.summaries import Summary

        fig5_summaries = sum(
            1
            for a in fig5.actions()
            if a.name in ("dvs_gpsnd", "dvs_gprcv")
            and isinstance(a.params[0], Summary)
        )
        sx_exchange = recovery_events(
            sx, {"sx_sendstate", "sx_statedelivery", "sx_statesafe"}
        )
        fig5_views = recovery_events(fig5, {"dvs_newview"})
        sx_views = recovery_events(sx, {"dvs_newview"})
        return fig5_summaries, sx_exchange, fig5_views, sx_views

    fig5_summaries, sx_exchange, fig5_views, sx_views = benchmark(measure)
    print()
    print(
        render_table(
            ["variant", "recovery events", "views"],
            [
                ["Figure 5 over DVS (summary msgs)", fig5_summaries,
                 fig5_views],
                ["simplified app over SX-DVS", sx_exchange, sx_views],
            ],
            title="E9b: recovery machinery, application vs service",
        )
    )
    assert sx_exchange >= 0 and fig5_summaries >= 0
