"""``DVS-TO-TO_p``: totally ordered broadcast over DVS (Figure 5).

Normal activity: client payloads are buffered (``delay``), given
system-wide unique labels, and multicast through DVS.  Deliveries append
labels to the tentative ``order``; DVS safe indications mark labels safe;
a label at the confirmation frontier whose message is safe may be
*confirmed*, and confirmed messages are released to clients in order.

Recovery activity: when DVS reports a new primary view, each member
multicasts a summary of its state; once a member holds all members'
summaries it *establishes* the view in one atomic step (adopting
``fullorder`` of the collected summaries), then tells DVS with
DVS-REGISTER.  When the state exchange is safe, all exchanged labels
become safe and confirmation resumes.

Differences from the static algorithm of [12] (Section 6.1): no local
primary test and no gossiping in non-primary views (DVS only reports
primaries); the DVS-REGISTER output; and the ``delay`` buffer for payloads
arriving before the node has any view.

``buildorder`` is a history variable (from the proof in [13]): the last
value of ``order`` while this node was in each view.  It appears in
Invariant 6.3 only.
"""

from types import MappingProxyType

from repro.core.sequences import head, nth, remove_head
from repro.core.tables import Table
from repro.core.viewids import G0
from repro.ioa.action import act
from repro.ioa.automaton import TransitionAutomaton
from repro.ioa.state import State
from repro.to.summaries import Label, Summary, fullorder, maxnextconfirm

#: Read-only: module globals are shared by every simulated process.
_PROC_PARAM = MappingProxyType({
    "bcast": 1,
    "label": 1,
    "confirm": 0,
    "brcv": 2,
    "dvs_gpsnd": 1,
    "dvs_register": 0,
    "dvs_newview": 1,
    "dvs_gprcv": 2,
    "dvs_safe": 2,
})

NORMAL = "normal"
SEND = "send"
COLLECT = "collect"


class DvsToToState(State):
    """State of ``DVS-TO-TO_p``, named as in Figure 5."""

    def __init__(self, pid, initial_view):
        is_initial_member = pid in initial_view.set
        super().__init__(
            current=initial_view if is_initial_member else None,
            status=NORMAL,
            content=set(),
            nextseqno=1,
            buffer=[],
            safe_labels=set(),
            order=[],
            nextconfirm=1,
            nextreport=1,
            highprimary=G0,
            gotstate={},
            safe_exch=set(),
            registered={G0} if is_initial_member else set(),
            delay=[],
            established=Table(lambda: False),
            buildorder=Table(tuple),
        )


class DvsToTo(TransitionAutomaton):
    """The ``DVS-TO-TO_p`` automaton for one process (Figure 5)."""

    parameterized_signature = True

    inputs = frozenset(
        {"bcast", "dvs_gprcv", "dvs_safe", "dvs_newview"}
    )
    outputs = frozenset({"dvs_gpsnd", "dvs_register", "brcv"})
    internals = frozenset({"label", "confirm"})

    def __init__(self, pid, initial_view, name=None):
        self.pid = pid
        self.initial_view = initial_view
        self.name = name or "dvs_to_to:{0}".format(pid)

    def participates(self, action):
        index = _PROC_PARAM.get(action.name)
        if index is None:
            return False
        return (
            len(action.params) > index and action.params[index] == self.pid
        )

    def initial_state(self):
        return DvsToToState(self.pid, self.initial_view)

    # -- History bookkeeping ------------------------------------------------------

    def _snapshot_order(self, state):
        """Record ``order`` into the per-view history variable."""
        if state.current is not None:
            state.buildorder[state.current.id] = tuple(state.order)

    # -- Client input and labelling ---------------------------------------------------

    def eff_bcast(self, state, a, p):
        state.delay.append(a)

    def pre_label(self, state, a, p):
        return state.current is not None and head(state.delay) == a

    def eff_label(self, state, a, p):
        label = Label(state.current.id, state.nextseqno, self.pid)
        state.content.add((label, a))
        state.buffer.append(label)
        state.nextseqno += 1
        remove_head(state.delay)

    def cand_label(self, state):
        if state.current is None:
            return
        a = head(state.delay)
        if a is not None:
            yield act("label", a, self.pid)

    # -- Normal multicast ---------------------------------------------------------------

    def _content_lookup(self, state, label):
        for entry_label, payload in state.content:
            if entry_label == label:
                return payload
        return None

    def pre_dvs_gpsnd(self, state, m, p):
        if isinstance(m, Summary):
            return (
                state.status == SEND and m == self._current_summary(state)
            )
        label, payload = m
        return (
            state.status == NORMAL
            and head(state.buffer) == label
            and (label, payload) in state.content
        )

    def eff_dvs_gpsnd(self, state, m, p):
        if isinstance(m, Summary):
            state.status = COLLECT
        else:
            remove_head(state.buffer)

    def cand_dvs_gpsnd(self, state):
        if state.status == SEND:
            yield act("dvs_gpsnd", self._current_summary(state), self.pid)
            return
        if state.status != NORMAL:
            return
        label = head(state.buffer)
        if label is not None:
            payload = self._content_lookup(state, label)
            if payload is not None:
                yield act("dvs_gpsnd", (label, payload), self.pid)

    # -- Deliveries -----------------------------------------------------------------------

    def eff_dvs_gprcv(self, state, m, q, p):
        if isinstance(m, Summary):
            self._receive_summary(state, m, q)
        else:
            label, payload = m
            state.content.add((label, payload))
            # The label may already be in the tentative order: a payload
            # labelled during recovery (before this view was established)
            # rides in the state-exchange summaries and is ordered by
            # fullorder at establishment, and its direct multicast arrives
            # afterwards.  Ordering it twice would corrupt the total order
            # (a message would be confirmed and released twice), so a label
            # enters the order at most once.
            if label not in state.order:
                state.order.append(label)
                self._snapshot_order(state)

    def eff_dvs_safe(self, state, m, q, p):
        if isinstance(m, Summary):
            state.safe_exch.add(q)
            if (
                state.current is not None
                and state.safe_exch == set(state.current.set)
                and set(state.gotstate) == set(state.current.set)
            ):
                state.safe_labels |= set(fullorder(state.gotstate))
        else:
            label, _ = m
            state.safe_labels.add(label)

    # -- Confirmation and release to the client ------------------------------------------------

    def pre_confirm(self, state, p):
        entry = nth(state.order, state.nextconfirm)
        return entry is not None and entry in state.safe_labels

    def eff_confirm(self, state, p):
        state.nextconfirm += 1

    def cand_confirm(self, state):
        if self.pre_confirm(state, self.pid):
            yield act("confirm", self.pid)

    def pre_brcv(self, state, a, q, p):
        if state.nextreport >= state.nextconfirm:
            return False
        label = nth(state.order, state.nextreport)
        return (
            label is not None
            and (label, a) in state.content
            and q == label.origin
        )

    def eff_brcv(self, state, a, q, p):
        state.nextreport += 1

    def cand_brcv(self, state):
        if state.nextreport >= state.nextconfirm:
            return
        label = nth(state.order, state.nextreport)
        if label is None:
            return
        payload = self._content_lookup(state, label)
        if payload is not None:
            yield act("brcv", payload, label.origin, self.pid)

    # -- Recovery -------------------------------------------------------------------------------

    def eff_dvs_newview(self, state, v, p):
        state.current = v
        state.nextseqno = 1
        state.buffer = []
        state.gotstate = {}
        state.safe_exch = set()
        state.safe_labels = set()
        state.status = SEND

    def _current_summary(self, state):
        return Summary(
            con=frozenset(state.content),
            ord=tuple(state.order),
            next=state.nextconfirm,
            high=state.highprimary,
        )

    def _receive_summary(self, state, summary, q):
        state.content |= set(summary.con)
        state.gotstate = dict(state.gotstate)
        state.gotstate[q] = summary
        if (
            state.current is not None
            and set(state.gotstate) == set(state.current.set)
            and state.status == COLLECT
        ):
            state.nextconfirm = maxnextconfirm(state.gotstate)
            state.order = list(fullorder(state.gotstate))
            state.highprimary = state.current.id
            state.status = NORMAL
            state.established[state.current.id] = True
            self._snapshot_order(state)

    def pre_dvs_register(self, state, p):
        return (
            state.current is not None
            and state.established.get(state.current.id)
            and state.current.id not in state.registered
        )

    def eff_dvs_register(self, state, p):
        state.registered.add(state.current.id)

    def cand_dvs_register(self, state):
        if self.pre_dvs_register(state, self.pid):
            yield act("dvs_register", self.pid)
