"""Totally ordered broadcast over SX-DVS: Figure 5 without the recovery
state machine.

With the state exchange run by the service (:mod:`repro.dvs.state_exchange`),
the application no longer needs ``status``/``gotstate``/``safe-exch``:

- on a new view it hands the service its summary (``sx_sendstate``);
- the service returns everyone's summaries in one ``sx_statedelivery``,
  which is the establishment step (adopt ``fullorder``, resume labelling);
- ``sx_statesafe`` tells it the exchange is safe everywhere, making the
  exchanged labels confirmable.

Comparing this automaton with :class:`repro.to.dvs_to_to.DvsToTo` is the
Section 7 exercise the paper proposes: the application shrinks by a full
protocol phase, at the cost of a richer service interface.
"""

from types import MappingProxyType

from repro.core.sequences import head, nth, remove_head
from repro.core.tables import Table
from repro.core.viewids import G0
from repro.ioa.action import act
from repro.ioa.automaton import TransitionAutomaton
from repro.ioa.state import State
from repro.to.summaries import Label, Summary, fullorder, maxnextconfirm

#: Read-only: module globals are shared by every simulated process.
_PROC_PARAM = MappingProxyType({
    "bcast": 1,
    "label": 1,
    "confirm": 0,
    "brcv": 2,
    "dvs_gpsnd": 1,
    "dvs_newview": 1,
    "dvs_gprcv": 2,
    "dvs_safe": 2,
    "sx_sendstate": 1,
    "sx_statedelivery": 1,
    "sx_statesafe": 0,
})


class SxToState(State):
    """Figure 5's state minus ``status``, ``gotstate`` and ``safe-exch``."""

    def __init__(self, pid, initial_view):
        is_member = pid in initial_view.set
        super().__init__(
            current=initial_view if is_member else None,
            established_current=is_member,
            sent_state=is_member,  # v0 needs no exchange
            content=set(),
            nextseqno=1,
            buffer=[],
            safe_labels=set(),
            order=[],
            nextconfirm=1,
            nextreport=1,
            highprimary=G0,
            exchanged_labels=set(),
            pending_content=[],
            delay=[],
            established=Table(lambda: False),
            buildorder=Table(tuple),
        )


class SxTotalOrder(TransitionAutomaton):
    """One process of the simplified TO algorithm over SX-DVS."""

    parameterized_signature = True

    inputs = frozenset(
        {"bcast", "dvs_gprcv", "dvs_safe", "dvs_newview",
         "sx_statedelivery", "sx_statesafe"}
    )
    outputs = frozenset({"dvs_gpsnd", "sx_sendstate", "brcv"})
    internals = frozenset({"label", "confirm"})

    def __init__(self, pid, initial_view, name=None):
        self.pid = pid
        self.initial_view = initial_view
        self.name = name or "sx_to:{0}".format(pid)

    def participates(self, action):
        index = _PROC_PARAM.get(action.name)
        if index is None:
            return False
        return (
            len(action.params) > index and action.params[index] == self.pid
        )

    def initial_state(self):
        return SxToState(self.pid, self.initial_view)

    # -- History ----------------------------------------------------------------

    def _snapshot_order(self, state):
        if state.current is not None:
            state.buildorder[state.current.id] = tuple(state.order)

    # -- Client input, labelling, normal multicast ----------------------------------

    def eff_bcast(self, state, a, p):
        state.delay.append(a)

    def pre_label(self, state, a, p):
        return state.current is not None and head(state.delay) == a

    def eff_label(self, state, a, p):
        label = Label(state.current.id, state.nextseqno, self.pid)
        state.content.add((label, a))
        state.buffer.append(label)
        state.nextseqno += 1
        remove_head(state.delay)

    def cand_label(self, state):
        if state.current is None:
            return
        a = head(state.delay)
        if a is not None:
            yield act("label", a, self.pid)

    def _content_lookup(self, state, label):
        for entry_label, payload in state.content:
            if entry_label == label:
                return payload
        return None

    def pre_dvs_gpsnd(self, state, m, p):
        label, payload = m
        return (
            state.established_current
            and head(state.buffer) == label
            and (label, payload) in state.content
        )

    def eff_dvs_gpsnd(self, state, m, p):
        remove_head(state.buffer)

    def cand_dvs_gpsnd(self, state):
        if not state.established_current:
            return
        label = head(state.buffer)
        if label is not None:
            payload = self._content_lookup(state, label)
            if payload is not None:
                yield act("dvs_gpsnd", (label, payload), self.pid)

    # -- Deliveries ----------------------------------------------------------------------

    def eff_dvs_gprcv(self, state, m, q, p):
        """Order received content -- but only once this view is established.

        Unlike Figure 5, establishment here (``sx_statedelivery``) is an
        independent service output and is *not* ordered before the view's
        content messages, so content arriving first must be buffered: a
        direct append would be wiped (and re-sequenced differently) when
        establishment adopts ``fullorder``.
        """
        label, payload = m
        state.content.add((label, payload))
        if not state.established_current:
            state.pending_content.append(label)
            return
        if label not in state.order:
            state.order.append(label)
            self._snapshot_order(state)

    def eff_dvs_safe(self, state, m, q, p):
        label, _ = m
        state.safe_labels.add(label)

    # -- Confirmation and release ------------------------------------------------------------

    def pre_confirm(self, state, p):
        entry = nth(state.order, state.nextconfirm)
        return entry is not None and entry in state.safe_labels

    def eff_confirm(self, state, p):
        state.nextconfirm += 1

    def cand_confirm(self, state):
        if self.pre_confirm(state, self.pid):
            yield act("confirm", self.pid)

    def pre_brcv(self, state, a, q, p):
        if state.nextreport >= state.nextconfirm:
            return False
        label = nth(state.order, state.nextreport)
        return (
            label is not None
            and (label, a) in state.content
            and q == label.origin
        )

    def eff_brcv(self, state, a, q, p):
        state.nextreport += 1

    def cand_brcv(self, state):
        if state.nextreport >= state.nextconfirm:
            return
        label = nth(state.order, state.nextreport)
        if label is None:
            return
        payload = self._content_lookup(state, label)
        if payload is not None:
            yield act("brcv", payload, label.origin, self.pid)

    # -- Recovery: three inputs/outputs instead of a state machine ------------------------------

    def eff_dvs_newview(self, state, v, p):
        state.current = v
        state.established_current = False
        state.sent_state = False
        state.nextseqno = 1
        state.buffer = []
        state.safe_labels = set()
        state.exchanged_labels = set()
        state.pending_content = []

    def _summary(self, state):
        return Summary(
            con=frozenset(state.content),
            ord=tuple(state.order),
            next=state.nextconfirm,
            high=state.highprimary,
        )

    def pre_sx_sendstate(self, state, x, p):
        return (
            state.current is not None
            and not state.sent_state
            and x == self._summary(state)
        )

    def eff_sx_sendstate(self, state, x, p):
        state.sent_state = True

    def cand_sx_sendstate(self, state):
        if state.current is not None and not state.sent_state:
            yield act("sx_sendstate", self._summary(state), self.pid)

    def eff_sx_statedelivery(self, state, bundle, p):
        """Establishment, in one input: adopt the bundle's fullorder."""
        gotstate = dict(bundle)
        if not gotstate or state.current is None:
            return
        for summary in gotstate.values():
            state.content |= set(summary.con)
        state.nextconfirm = maxnextconfirm(gotstate)
        state.order = list(fullorder(gotstate))
        state.exchanged_labels = set(state.order)
        state.highprimary = state.current.id
        state.established_current = True
        state.established[state.current.id] = True
        # Sequence the content that arrived before establishment, in
        # arrival order, after the exchanged prefix.
        for label in state.pending_content:
            if label not in state.order:
                state.order.append(label)
        state.pending_content = []
        self._snapshot_order(state)

    def eff_sx_statesafe(self, state, p):
        state.safe_labels |= state.exchanged_labels
