"""Invariants of TO-IMPL (Section 6.2: Invariants 6.1-6.3).

All three are stated over the composition of the application automata with
the DVS *specification*; they are checked on states of
:func:`repro.to.impl.build_to_impl`.

Invariant 6.3 quantifies over label sequences sigma; the checkable
equivalent used here: for each created view v, let
``P* = {p ∈ v.set : current.id_p > v.id}``.  When every ``p ∈ P*`` has
``established[v.id]_p``, the maximal sigma satisfying the hypothesis is the
longest common prefix of ``{buildorder[p, v.id] : p ∈ P*}``, and the
invariant demands that this sigma be a prefix of ``x.ord`` for every
summary ``x ∈ allstate`` with ``x.high > v.id``.  (When some ``p ∈ P*`` is
not established, or ``P*`` is empty, no sigma -- respectively every sigma --
satisfies the hypothesis; the first case is vacuous, the second is covered
by Invariant 6.2, which forbids any such ``x`` outright.)
"""

from repro.core.sequences import is_prefix
from repro.core.viewids import vid_gt
from repro.ioa.invariants import InvariantSuite
from repro.to.impl import ToImplState


def _wrap(processes, predicate, dvs_name="dvs"):
    def check(composition_state):
        return predicate(ToImplState(composition_state, processes, dvs_name))

    check.__doc__ = predicate.__doc__
    check.__name__ = predicate.__name__
    return check


def _longest_common_prefix(sequences):
    sequences = [list(s) for s in sequences]
    if not sequences:
        return []
    prefix = sequences[0]
    for seq in sequences[1:]:
        limit = min(len(prefix), len(seq))
        i = 0
        while i < limit and prefix[i] == seq[i]:
            i += 1
        prefix = prefix[:i]
    return prefix


def invariant_6_1(impl):
    """Invariant 6.1: every known summary names a totally attempted view.

    If ``x ∈ allstate`` then some ``w ∈ created`` has ``x.high = w.id``
    and every member of w is in ``attempted[w.id]``.
    """
    created_by_id = {w.id: w for w in impl.created}
    for x in impl.allstate():
        w = created_by_id.get(x.high)
        assert w is not None, (
            "summary {0} names uncreated view id {1}".format(x, x.high)
        )
        attempted = impl.dvs.attempted.get(w.id)
        assert w.set <= attempted, (
            "summary {0}: view {1} not attempted by all members "
            "(attempted: {2})".format(x, w, sorted(attempted))
        )
    return True


def invariant_6_2(impl):
    """Invariant 6.2: an established view deactivates older views.

    If ``v ∈ created``, ``x ∈ allstate`` and ``x.high > v.id``, then some
    ``p ∈ v.set`` has ``current.id_p > v.id``.
    """
    highs = {x.high for x in impl.allstate()}
    for v in impl.created:
        if not any(vid_gt(h, v.id) for h in highs):
            continue
        assert any(
            vid_gt(impl.dvs.current_viewid[p], v.id) for p in v.set
        ), (
            "a summary has high > {0} but every member of {1} is still "
            "at or below it".format(v.id, v)
        )
    return True


def invariant_6_3(impl):
    """Invariant 6.3: established orders propagate into later summaries.

    See the module docstring for the executable reading.
    """
    summaries = impl.allstate()
    for v in impl.created:
        movers = [
            p
            for p in v.set
            if vid_gt(impl.dvs.current_viewid[p], v.id)
        ]
        if not movers:
            continue
        if not all(impl.app(p).established.get(v.id) for p in movers):
            continue
        sigma = _longest_common_prefix(
            [impl.app(p).buildorder.get(v.id) for p in movers]
        )
        if not sigma:
            continue
        for x in summaries:
            if not vid_gt(x.high, v.id):
                continue
            assert is_prefix(sigma, x.ord), (
                "summary {0} (high {1}) lost the order established in view "
                "{2}: {3} is not a prefix of {4}".format(
                    x, x.high, v, sigma, list(x.ord)
                )
            )
    return True


def app_view_tracking(impl):
    """Auxiliary: each application's ``current`` tracks DVS's view for it."""
    for p in impl.processes:
        current = impl.app(p).current
        current_id = None if current is None else current.id
        assert impl.dvs.current_viewid[p] == current_id, (
            "DVS current-viewid[{0}] = {1} but application current = "
            "{2}".format(p, impl.dvs.current_viewid[p], current)
        )
    return True


def confirmed_prefixes_consistent(impl):
    """Auxiliary (the heart of Theorem 6.4): confirmed prefixes agree.

    The confirmed prefixes ``order_p(1..nextconfirm_p - 1)`` of all
    processes form a consistent set of label sequences -- this is what
    makes the lub in the TO refinement well-defined and is the substance
    of [12]'s Lemma 6.17 in our setting.
    """
    prefixes = []
    for p in impl.processes:
        app = impl.app(p)
        prefixes.append(list(app.order)[: app.nextconfirm - 1])
    for i, a in enumerate(prefixes):
        for b in prefixes[i + 1:]:
            shorter, longer = (a, b) if len(a) <= len(b) else (b, a)
            assert longer[: len(shorter)] == shorter, (
                "inconsistent confirmed prefixes: {0} vs {1}".format(a, b)
            )
    return True


def to_impl_invariants(processes, dvs_name="dvs"):
    """The suite for TO-IMPL composition states (Invariants 6.1-6.3)."""
    processes = sorted(processes)
    return InvariantSuite(
        {
            "TO-IMPL 6.1 summaries name attempted views": _wrap(
                processes, invariant_6_1, dvs_name
            ),
            "TO-IMPL 6.2 establishment deactivates": _wrap(
                processes, invariant_6_2, dvs_name
            ),
            "TO-IMPL 6.3 established order propagates": _wrap(
                processes, invariant_6_3, dvs_name
            ),
            "TO-IMPL aux app view tracking": _wrap(
                processes, app_view_tracking, dvs_name
            ),
            "TO-IMPL aux confirmed prefixes consistent": _wrap(
                processes, confirmed_prefixes_consistent, dvs_name
            ),
        }
    )
