"""Totally ordered broadcast over DVS (Section 6).

- :mod:`repro.to.summaries` -- labels ``L = G x N x P``, summaries
  ``S = 2^C x seqof(L) x N x G`` and the recovery functions
  (``knowncontent``, ``maxprimary``, ``chosenrep``, ``fullorder``, ...);
- :mod:`repro.to.spec` -- the TO service specification (from [12]);
- :mod:`repro.to.dvs_to_to` -- the per-process algorithm ``DVS-TO-TO_p``
  (Figure 5);
- :mod:`repro.to.impl` -- TO-IMPL, the composition of all ``DVS-TO-TO_p``
  with DVS, DVS actions hidden;
- :mod:`repro.to.invariants` -- Invariants 6.1-6.3;
- :mod:`repro.to.refinement` -- the refinement to TO (Theorem 6.4).
"""

from repro.to.dvs_to_to import DvsToTo
from repro.to.impl import build_to_impl, to_impl_allstate
from repro.to.invariants import to_impl_invariants
from repro.to.refinement import to_refinement_checker
from repro.to.spec import TOSpec
from repro.to.summaries import (
    Label,
    Summary,
    chosenrep,
    fullorder,
    knowncontent,
    maxnextconfirm,
    maxprimary,
    reps,
    shortorder,
)

__all__ = [
    "DvsToTo",
    "Label",
    "Summary",
    "TOSpec",
    "build_to_impl",
    "chosenrep",
    "fullorder",
    "knowncontent",
    "maxnextconfirm",
    "maxprimary",
    "reps",
    "shortorder",
    "to_impl_allstate",
    "to_impl_invariants",
    "to_refinement_checker",
]
