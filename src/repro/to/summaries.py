"""Labels, summaries and the recovery functions of Section 6.1.

``L = G x N^{>0} x P`` is the set of labels with selectors ``id``,
``seqno``, ``origin``; labels are totally ordered lexicographically (view
identifier first), which is the "label order" used by ``fullorder``.

``S = 2^C x seqof(L) x N^{>0} x G`` is the set of summaries with selectors
``con``, ``ord``, ``next``, ``high``: the content relation, the tentative
order, the next-confirm pointer and the highest established primary of the
summarizing process.

Given ``Y``, a partial function from process ids to summaries (the
``gotstate`` variable), the paper defines::

    knowncontent(Y)   = union of Y(q).con
    maxprimary(Y)     = max of Y(q).high
    maxnextconfirm(Y) = max of Y(q).next
    reps(Y)           = {q : Y(q).high = maxprimary(Y)}
    chosenrep(Y)      = some element of reps(Y)          (here: the least)
    shortorder(Y)     = Y(chosenrep(Y)).ord
    fullorder(Y)      = shortorder(Y) followed by the remaining labels of
                        dom(knowncontent(Y)), in label order
"""

import functools
from dataclasses import dataclass
from typing import FrozenSet, Tuple

from repro.core.viewids import ViewId


@functools.total_ordering
@dataclass(frozen=True)
class Label:
    """A label ``<g, seqno, origin> ∈ L``; ordered lexicographically."""

    id: ViewId
    seqno: int
    origin: str

    def _key(self):
        return (self.id, self.seqno, self.origin)

    def __lt__(self, other):
        if not isinstance(other, Label):
            return NotImplemented
        return self._key() < other._key()

    def __str__(self):
        return "{0}#{1}@{2}".format(self.id, self.seqno, self.origin)

    def __repr__(self):
        return str(self)


@dataclass(frozen=True)
class Summary:
    """A summary ``<con, ord, next, high> ∈ S`` (one node's recovery state)."""

    con: FrozenSet[Tuple[Label, object]]
    ord: Tuple[Label, ...]
    next: int
    high: ViewId

    def __post_init__(self):
        if not isinstance(self.con, frozenset):
            object.__setattr__(self, "con", frozenset(self.con))
        if not isinstance(self.ord, tuple):
            object.__setattr__(self, "ord", tuple(self.ord))

    def __str__(self):
        return "summary(|con|={0}, |ord|={1}, next={2}, high={3})".format(
            len(self.con), len(self.ord), self.next, self.high
        )


def knowncontent(gotstate):
    """``∪_{q ∈ dom(Y)} Y(q).con``: every known (label, payload) pair."""
    content = set()
    for summary in gotstate.values():
        content |= summary.con
    return content


def maxprimary(gotstate):
    """``max_q Y(q).high``: the highest established primary seen."""
    return max(summary.high for summary in gotstate.values())


def maxnextconfirm(gotstate):
    """``max_q Y(q).next``: the furthest confirmation pointer."""
    return max(summary.next for summary in gotstate.values())


def reps(gotstate):
    """Members whose summary carries the maximal ``high``."""
    top = maxprimary(gotstate)
    return {q for q, summary in gotstate.items() if summary.high == top}


def chosenrep(gotstate):
    """A deterministic representative: the least member of ``reps``.

    The paper allows "some element in reps(Y)"; all members must make the
    same choice, so we fix the minimum process id.
    """
    return min(reps(gotstate))


def shortorder(gotstate):
    """The representative's tentative order."""
    return list(gotstate[chosenrep(gotstate)].ord)


def fullorder(gotstate):
    """``shortorder`` followed by the remaining known labels, label-sorted.

    This is the order every member adopts when it establishes the view:
    the representative's order is authoritative for the prefix; labels
    known only through content (never ordered anywhere reachable) are
    appended deterministically.
    """
    prefix = shortorder(gotstate)
    seen = set(prefix)
    remaining = sorted(
        {label for label, _ in knowncontent(gotstate)} - seen
    )
    return prefix + remaining
