"""The refinement from TO-IMPL states to TO states (Theorem 6.4).

The mapping follows [12], adapted as the paper describes (Section 6.2):
the abstract ``pending[p]`` additionally carries the contents of
``delay_p`` as a tail.

- ``t.order``: the *confirmed* global order.  Each process's confirmed
  prefix is ``order_p(1..nextconfirm_p - 1)``; these prefixes are
  consistent (auxiliary invariant), so their least upper bound is the
  system-wide confirmed label sequence; mapping each label to
  ``(payload, origin)`` gives the TO order.
- ``t.next[p] = nextreport_p``.
- ``t.pending[p]``: the payloads p has broadcast that are not yet in the
  confirmed order -- the labelled-but-unconfirmed ones in label order,
  followed by the still-unlabelled ``delay_p``.
"""

from repro.core.sequences import lub
from repro.ioa.refinement import RefinementChecker
from repro.to.impl import ToImplState
from repro.to.spec import TOSpec, TOState


def all_confirm(impl):
    """The lub of the processes' confirmed label prefixes."""
    prefixes = []
    for p in impl.processes:
        app = impl.app(p)
        prefixes.append(list(app.order)[: app.nextconfirm - 1])
    return lub(prefixes)


def _global_content(impl):
    """Label -> payload over every process's content relation."""
    content = {}
    for p in impl.processes:
        for label, payload in impl.app(p).content:
            content[label] = payload
    return content


def to_refinement_f(processes, dvs_name="dvs"):
    """Build the mapping F_TO(state) -> TOState."""
    processes = sorted(processes)

    def mapping(composition_state):
        impl = ToImplState(composition_state, processes, dvs_name)
        t = TOState(processes)

        confirmed = all_confirm(impl)
        content = _global_content(impl)
        t.order = [(content[label], label.origin) for label in confirmed]

        confirmed_set = set(confirmed)
        for p in processes:
            app = impl.app(p)
            labelled = sorted(
                label
                for label in content
                if label.origin == p and label not in confirmed_set
            )
            t.pending[p] = [content[label] for label in labelled] + list(
                app.delay
            )
            t.next[p] = app.nextreport
        return t

    return mapping


def to_hints(mapping):
    """Fragment hints for the TO step correspondence.

    ``bcast`` / ``brcv`` are trace actions of TO and map to themselves;
    a ``confirm`` step that extends the global confirmed order maps to the
    ``to_order`` of the newly confirmed message; every other step
    (labelling, DVS-internal traffic, recovery) is a stutter.
    """

    def hints(step, abstract_from):
        name = step.action.name
        if name in ("bcast", "brcv"):
            return [[step.action]]
        if name == "confirm":
            before = abstract_from.order
            after = mapping(step.next_state).order
            if len(after) == len(before) + 1:
                payload, origin = after[-1]
                from repro.ioa.action import act

                return [[act("to_order", payload, origin)]]
            return [[]]
        return [[]]

    return hints


def to_refinement_checker(processes, dvs_name="dvs"):
    """A :class:`RefinementChecker` for Theorem 6.4.

    Pass executions of the TO-IMPL composition built by
    :func:`repro.to.impl.build_to_impl` (composed with TO client drivers to
    close it).
    """
    processes = sorted(processes)
    spec = TOSpec(processes, name="to_spec")
    mapping = to_refinement_f(processes, dvs_name)
    return RefinementChecker(
        impl=None,
        spec=spec,
        mapping=mapping,
        hints=to_hints(mapping),
        max_depth=3,
    )
