"""TO-IMPL: the composition of all ``DVS-TO-TO_p`` with DVS (Section 6.1).

"The system TO-IMPL is the composition of all the DVS-TO-TO_p automata and
DVS with all the external actions of DVS hidden."  Here DVS is the
*specification* automaton: the paper's layered proof verifies the
application against the service spec, and Theorem 5.9 separately justifies
replacing the spec by DVS-IMPL.  (The full-stack composition -- DVS-TO-TO
over VS-TO-DVS over VS -- is also buildable; see
:func:`build_to_over_dvs_impl`.)
"""

from repro.dvs.impl import VS_EXTERNAL_ACTIONS, build_dvs_impl
from repro.dvs.spec import DVSSpec
from repro.ioa.composition import Composition
from repro.to.dvs_to_to import DvsToTo
from repro.to.summaries import Summary

TO_IMPL_NAME = "to_impl"

#: Names of the DVS service's external actions, hidden inside TO-IMPL.
DVS_EXTERNAL_ACTIONS = frozenset(
    {"dvs_gpsnd", "dvs_gprcv", "dvs_safe", "dvs_newview", "dvs_register"}
)


def app_component_name(pid):
    return "dvs_to_to:{0}".format(pid)


def build_to_impl(initial_view, universe, view_pool=(), name=TO_IMPL_NAME):
    """TO-IMPL over the DVS *specification* (the paper's Section 6 system)."""
    universe = frozenset(universe) | initial_view.set
    dvs = DVSSpec(initial_view, universe=universe, view_pool=view_pool)
    apps = [
        DvsToTo(pid, initial_view, name=app_component_name(pid))
        for pid in sorted(universe)
    ]
    return Composition(
        [dvs] + apps, hidden=DVS_EXTERNAL_ACTIONS, name=name
    )


def build_to_over_dvs_impl(
    initial_view, universe, view_pool=(), name="to_over_dvs_impl"
):
    """The full stack: DVS-TO-TO over VS-TO-DVS over VS, everything hidden.

    This is the end-to-end system a deployment would run; the paper's two
    theorems compose to show its traces are TO traces.  We check that
    directly as well (tests/test_full_stack.py).
    """
    universe = frozenset(universe) | initial_view.set
    dvs_impl = build_dvs_impl(initial_view, universe, view_pool=view_pool)
    apps = [
        DvsToTo(pid, initial_view, name=app_component_name(pid))
        for pid in sorted(universe)
    ]
    return Composition(
        dvs_impl.components + apps,
        hidden=VS_EXTERNAL_ACTIONS | DVS_EXTERNAL_ACTIONS,
        name=name,
    )


class ToImplState:
    """Named access to a TO-IMPL composition state."""

    def __init__(self, composition_state, processes, dvs_name="dvs"):
        self.state = composition_state
        self.processes = sorted(processes)
        self.dvs_name = dvs_name

    @property
    def dvs(self):
        return self.state.part(self.dvs_name)

    def app(self, pid):
        return self.state.part(app_component_name(pid))

    @property
    def created(self):
        return self.dvs.created

    def allstate(self):
        """Every summary present anywhere in the system state.

        Summaries live in the DVS pending queues, in the per-view DVS
        message queues, and in the ``gotstate`` maps of the application
        processes.  (The paper's ``allstate`` derived variable, defined as
        in [12].)
        """
        summaries = set()
        for _, entries in self.dvs.pending.items():
            for m in entries:
                if isinstance(m, Summary):
                    summaries.add(m)
        for _, entries in self.dvs.queue.items():
            for m, _sender in entries:
                if isinstance(m, Summary):
                    summaries.add(m)
        for pid in self.processes:
            for summary in self.app(pid).gotstate.values():
                summaries.add(summary)
        return summaries


def to_impl_allstate(composition_state, processes, dvs_name="dvs"):
    return ToImplState(
        composition_state, processes, dvs_name=dvs_name
    ).allstate()
