"""TO: the totally-ordered broadcast service specification (from [12]).

TO is *not* group-oriented: clients just broadcast payloads and receive
payloads, and the service guarantees that all clients receive messages
according to one system-wide total order, each client seeing a gap-free
prefix of it, with integrity (only broadcast messages are delivered, with
correct attribution) and no duplication.

Signature::

    Input:    BCAST(a)_p          bcast(a, p)
    Output:   BRCV(a)_{q,p}       brcv(a, q, p)      (a from q, at p)
    Internal: TO-ORDER(a, p)      to_order(a, p)

State: ``pending[p]`` (a sequence of payloads), the global ``order`` (a
sequence of ``(a, p)`` pairs) and a delivery pointer ``next[p]`` per
process.  ``to_order`` moves *any* pending message into the global order --
the service does not promise per-sender FIFO into the total order, matching
what the recovery procedure of the implementation provides (a payload left
unordered across a partition may be sequenced after later payloads from
the same sender).
"""

from repro.core.sequences import nth
from repro.ioa.action import act
from repro.ioa.automaton import TransitionAutomaton
from repro.ioa.state import State


class TOState(State):
    """State of the TO specification."""

    def __init__(self, universe):
        super().__init__(
            pending={p: [] for p in sorted(universe)},
            order=[],
            next={p: 1 for p in sorted(universe)},
        )


class TOSpec(TransitionAutomaton):
    """The TO service automaton."""

    inputs = frozenset({"bcast"})
    outputs = frozenset({"brcv"})
    internals = frozenset({"to_order"})

    def __init__(self, universe, name="to"):
        self.name = name
        self.universe = frozenset(universe)

    def initial_state(self):
        return TOState(self.universe)

    # -- BCAST(a)_p (input) ----------------------------------------------------

    def eff_bcast(self, state, a, p):
        state.pending[p].append(a)

    # -- TO-ORDER(a, p) -----------------------------------------------------------

    def pre_to_order(self, state, a, p):
        return a in state.pending[p]

    def eff_to_order(self, state, a, p):
        state.pending[p].remove(a)
        state.order.append((a, p))

    def cand_to_order(self, state):
        for p in sorted(self.universe):
            seen = set()
            for a in state.pending[p]:
                if a in seen:
                    continue
                seen.add(a)
                yield act("to_order", a, p)

    # -- BRCV(a)_{q,p} ---------------------------------------------------------------

    def pre_brcv(self, state, a, q, p):
        return nth(state.order, state.next[p]) == (a, q)

    def eff_brcv(self, state, a, q, p):
        state.next[p] += 1

    def cand_brcv(self, state):
        for p in sorted(self.universe):
            entry = nth(state.order, state.next[p])
            if entry is not None:
                a, q = entry
                yield act("brcv", a, q, p)
