"""Pass 6: wire-schema drift (DVS015).

The codec (``repro/runtime/codec.py``) encodes a registered dataclass
as ``["@", "ClassName", [field values]]`` -- *positional*, in declared
field order.  Nothing in Python stops a later PR from renaming,
retyping or reordering a field of a message dataclass without anyone
noticing that the wire layout just changed; the bytes still encode,
they just mean something else to an older peer.

The codec therefore pins the layout in a ``WIRE_SCHEMA`` literal
(class name -> ordered ``(field, annotation)`` pairs) next to the
``WIRE_TYPES`` registry, and this pass proves three things statically:

- **fidelity** -- every registered dataclass's declared fields match
  the pinned schema, name for name and annotation for annotation
  (drift is reported at the *dataclass definition*, where the edit
  happened);
- **registration** -- ``WIRE_TYPES`` and ``WIRE_SCHEMA`` name exactly
  the same set of classes;
- **coverage** -- every frozen top-level dataclass in the stack's
  message modules (``config.wire_message_globs``) is registered, so a
  new message cannot silently ride on a connection it cannot survive.

``codec.schema_drift()`` re-proves fidelity at import time from the
live classes; this rule is the static half of that contract.

Every finding is stamped with the codec's declared ``WIRE_VERSION``
as its baseline *context* (``wire-schema-v2``), so fingerprints are
version-scoped: bumping the schema version invalidates baseline
entries recorded against the old layout rather than letting them waive
fresh drift forever.
"""

import ast

from repro.lint.report import Finding

_REGISTRY_NAME = "WIRE_TYPES"
_SCHEMA_NAME = "WIRE_SCHEMA"
_VERSION_NAME = "WIRE_VERSION"


def _wire_version(tree):
    """The integer value of a top-level ``WIRE_VERSION = <int>``
    literal, or ``None`` when absent or non-literal."""
    node = _top_level_assign(tree, _VERSION_NAME)
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, int)
        and not isinstance(node.value, bool)
    ):
        return node.value
    return None


def _top_level_assign(tree, name):
    """The value node of a top-level ``name = ...`` assignment."""
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id == name
            ):
                return stmt.value
    return None


def _registry_names(value):
    """Class names listed in ``WIRE_TYPES = (A, B, ...)``, in order."""
    if not isinstance(value, (ast.Tuple, ast.List)):
        return None
    names = []
    for elt in value.elts:
        if isinstance(elt, ast.Name):
            names.append(elt.id)
        else:
            return None
    return names


def _schema_entries(value):
    """``WIRE_SCHEMA`` literal -> {name: ((field, annotation), ...)}.

    Accepts a bare dict literal or one wrapped in a single call
    (``MappingProxyType({...})``).  Returns ``None`` when the shape is
    not the recognised literal form.
    """
    if isinstance(value, ast.Call) and len(value.args) == 1:
        value = value.args[0]
    if not isinstance(value, ast.Dict):
        return None
    entries = {}
    for key, val in zip(value.keys, value.values):
        if not (
            isinstance(key, ast.Constant) and isinstance(key.value, str)
        ):
            return None
        if not isinstance(val, (ast.Tuple, ast.List)):
            return None
        pairs = []
        for pair in val.elts:
            if not (
                isinstance(pair, (ast.Tuple, ast.List))
                and len(pair.elts) == 2
                and all(
                    isinstance(p, ast.Constant)
                    and isinstance(p.value, str)
                    for p in pair.elts
                )
            ):
                return None
            pairs.append((pair.elts[0].value, pair.elts[1].value))
        entries[key.value] = tuple(pairs)
    return entries


def _decorator_names(node):
    names = set()
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        while isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name):
                names.add(target.value.id + "." + target.attr)
            target = target.value
        if isinstance(target, ast.Name):
            names.add(target.id)
    return names


def _is_dataclass(node):
    names = _decorator_names(node)
    return "dataclass" in names or "dataclasses.dataclass" in names


def _is_frozen_dataclass(node):
    if not _is_dataclass(node):
        return False
    for deco in node.decorator_list:
        if isinstance(deco, ast.Call):
            for kw in deco.keywords:
                if kw.arg == "frozen" and (
                    isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                ):
                    return True
    return False


def _declared_fields(node):
    """Ordered ``(field, annotation-source)`` pairs of a dataclass."""
    pairs = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            pairs.append(
                (stmt.target.id, ast.unparse(stmt.annotation))
            )
    return tuple(pairs)


def _class_defs(module):
    """Top-level class definitions of a module, in source order."""
    return [
        stmt for stmt in module.tree.body
        if isinstance(stmt, ast.ClassDef)
    ]


def run_pass(model, config):
    """All pass-6 findings over the model."""
    if not config.enabled("DVS015"):
        return []
    findings = []

    codec_modules = [
        module for module in model.modules
        if config.is_codec_path(module.path)
    ]
    if not codec_modules:
        return []

    # Findings carry the codec's declared schema version as their
    # baseline context ("wire-schema-v2"), so a legitimate version bump
    # retires stale baseline entries instead of waiving new drift.
    versions = [
        version for version in
        (_wire_version(module.tree) for module in codec_modules)
        if version is not None
    ]
    context = "wire-schema-v{0}".format(versions[0]) if versions else ""

    def flag(path, node, message):
        findings.append(Finding(
            rule="DVS015", path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            context=context,
        ))

    registered = set()
    schema = {}
    # Where each registered-or-pinned name is defined, for fidelity.
    for module in codec_modules:
        registry_node = _top_level_assign(module.tree, _REGISTRY_NAME)
        schema_node = _top_level_assign(module.tree, _SCHEMA_NAME)
        if registry_node is None:
            flag(module.path, module.tree,
                 "codec module defines no {0} registry".format(
                     _REGISTRY_NAME))
            continue
        names = _registry_names(registry_node)
        if names is None:
            flag(module.path, registry_node,
                 "{0} must be a literal tuple of class names".format(
                     _REGISTRY_NAME))
            continue
        if schema_node is None:
            flag(module.path, module.tree,
                 "codec module defines no {0} pin".format(_SCHEMA_NAME))
            continue
        entries = _schema_entries(schema_node)
        if entries is None:
            flag(module.path, schema_node,
                 "{0} must be a literal dict of (field, annotation) "
                 "tuples".format(_SCHEMA_NAME))
            continue
        registered |= set(names)
        schema.update(entries)
        for name in names:
            if name not in entries:
                flag(module.path, registry_node,
                     "{0} registers {1} but {2} does not pin its "
                     "layout".format(_REGISTRY_NAME, name, _SCHEMA_NAME))
        for name in entries:
            if name not in names:
                flag(module.path, schema_node,
                     "{0} pins {1} but {2} does not register it".format(
                         _SCHEMA_NAME, name, _REGISTRY_NAME))

    # Fidelity: every registered class that we can see must declare
    # exactly the pinned fields -- reported where the class is defined.
    seen_defs = {}
    for module in model.modules:
        in_scope = (
            config.is_wire_message_path(module.path)
            or config.is_codec_path(module.path)
        )
        for node in _class_defs(module):
            if node.name in schema and _is_dataclass(node):
                seen_defs[node.name] = (module, node)
            if (
                in_scope
                and _is_frozen_dataclass(node)
                and node.name not in registered
            ):
                flag(module.path, node,
                     "stack message dataclass {0} is not registered in "
                     "the codec's {1}; it cannot cross the wire".format(
                         node.name, _REGISTRY_NAME))
    for name in sorted(schema):
        pinned = schema[name]
        if name not in seen_defs:
            continue  # class defined outside the linted tree
        module, node = seen_defs[name]
        declared = _declared_fields(node)
        if declared != pinned:
            flag(module.path, node,
                 "wire drift: {0} declares fields {1} but {2} pins {3}; "
                 "update the pin (and WIRE_VERSION if the layout "
                 "changed)".format(
                     name,
                     _render(declared),
                     _SCHEMA_NAME,
                     _render(pinned),
                 ))
    return findings


def _render(pairs):
    if not pairs:
        return "()"
    return ", ".join(
        "{0}: {1}".format(field, annotation)
        for field, annotation in pairs
    )
