"""The project-wide call graph and class-attribute points-to summaries.

Built once per lint run on top of the :mod:`repro.lint.ir` function
summaries, this module answers the questions the interprocedural rules
ask:

- *What does this call site invoke?*  ``self.m()`` resolves through the
  project MRO; ``self.attr.m()`` resolves through the points-to summary
  of ``attr``; ``self._nodes[p].to.m()`` folds subscripts through
  container-element summaries; bare names resolve to nested functions,
  module functions, constructors or imported externals.
- *What class of object can ``self.attr`` hold?*  Collected from every
  ``self.attr = Expr`` in the class, with one level of return-type
  inference for factory methods (``self._nodes[p] =
  self._build_node(...)`` where ``_build_node`` returns
  ``RuntimeNode(...)``).
- *Which bound methods flow into callback attributes?*  A construction
  site ``Listener(self._on_frame)`` binds the constructor parameter to
  the caller's bound method; ``self._cb = on_frame`` in ``__init__``
  then lets ``self._cb(...)`` resolve back to the real handler across
  the object boundary.

Event-loop objects get the pseudo-class :data:`LOOP_CLASS` so the race
pass can tell threadsafe loop entry points from loop-affine ones.
"""

import ast

from repro.lint.ir import FunctionIR, receiver_chain
from repro.lint.model import dotted_name, resolve_dotted

#: Pseudo-class naming an asyncio event loop object.
LOOP_CLASS = "<asyncio.EventLoop>"

#: Callables whose result is an event loop.
_LOOP_FACTORIES = frozenset({
    "asyncio.new_event_loop",
    "asyncio.get_event_loop",
    "asyncio.get_running_loop",
})


class Target:
    """A resolved call target: a project method/function."""

    __slots__ = ("klass", "name", "ir")

    def __init__(self, klass, name, ir):
        self.klass = klass  # class name or None for module functions
        self.name = name
        self.ir = ir

    def key(self):
        return (self.klass, self.name, self.ir.path)

    def __repr__(self):
        return "Target({0}.{1})".format(self.klass or "<module>", self.name)


class External:
    """A call that leaves the project (stdlib or unresolvable import)."""

    __slots__ = ("dotted",)

    def __init__(self, dotted):
        self.dotted = dotted

    def __repr__(self):
        return "External({0})".format(self.dotted)


class LoopCall:
    """A call on an event-loop object (pseudo-class LOOP_CLASS)."""

    __slots__ = ("method",)

    def __init__(self, method):
        self.method = method

    def __repr__(self):
        return "LoopCall({0})".format(self.method)


class ClassModel:
    """IR-level view of one class: methods plus points-to inputs."""

    def __init__(self, info, module):
        self.info = info
        self.module = module
        self.name = info.name
        self.path = module.path
        self.methods = {}
        for stmt in info.node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods[stmt.name] = FunctionIR(
                    stmt, module.path, klass=info.name,
                    qualname=info.name + "." + stmt.name,
                )

    def has_async_method(self):
        return any(ir.is_async for ir in self.methods.values())


class ProjectModel:
    """The call graph: class models, points-to and resolution."""

    def __init__(self, model):
        self.model = model
        self.classes = {}
        self.module_functions = {}  # (path, name) -> FunctionIR
        self._functions_by_name = {}
        self._attr_classes_cache = {}
        self._return_classes_cache = {}
        self._callbacks_cache = None
        self.edges = 0
        for module in model.modules:
            for info in module.classes:
                # Simple-name index, like SourceModel.class_index: the
                # last definition wins, which is unambiguous here.
                self.classes[info.name] = ClassModel(info, module)
            for stmt in module.tree.body:
                if isinstance(stmt, (
                    ast.FunctionDef, ast.AsyncFunctionDef
                )):
                    ir = FunctionIR(stmt, module.path)
                    self.module_functions[(module.path, stmt.name)] = ir
                    self._functions_by_name.setdefault(
                        stmt.name, []
                    ).append(ir)

    # -- Statistics ----------------------------------------------------

    def function_count(self):
        count = len(self.module_functions)
        for cls in self.classes.values():
            count += len(cls.methods)
        return count

    # -- Points-to: class attribute summaries --------------------------

    def attr_classes(self, class_name, attr):
        """The set of class names (or LOOP_CLASS) an attribute of
        ``class_name`` may hold, judging from every ``self.attr = ...``
        (and ``self.attr[k] = ...``) site in the class."""
        key = (class_name, attr)
        if key in self._attr_classes_cache:
            return self._attr_classes_cache[key]
        self._attr_classes_cache[key] = frozenset()  # cycle guard
        result = set()
        cls = self.classes.get(class_name)
        if cls is not None:
            for ir in cls.methods.values():
                for name, values in ir.assigned_attrs("self").items():
                    if name != attr:
                        continue
                    for value in values:
                        result |= self.infer_expr(value, ir)
        self._attr_classes_cache[key] = frozenset(result)
        return self._attr_classes_cache[key]

    def return_classes(self, ir):
        """Classes of values a function can return (constructor calls
        and locals holding them; one level of factory indirection)."""
        key = id(ir)
        if key in self._return_classes_cache:
            return self._return_classes_cache[key]
        self._return_classes_cache[key] = frozenset()  # cycle guard
        result = set()
        for node in ast.walk(ir.node):
            if isinstance(node, ast.Return) and node.value is not None:
                result |= self.infer_expr(node.value, ir)
        self._return_classes_cache[key] = frozenset(result)
        return self._return_classes_cache[key]

    def infer_expr(self, expr, ir, depth=0):
        """Class names an expression may evaluate to (conservative:
        empty set when unknown)."""
        if depth > 6:
            return frozenset()
        if isinstance(expr, ast.Call):
            dotted = resolve_dotted(
                dotted_name(expr.func), self._imports_for(ir)
            )
            if dotted in _LOOP_FACTORIES:
                return frozenset({LOOP_CLASS})
            if isinstance(expr.func, ast.Name):
                name = expr.func.id
                if name in self.classes:
                    return frozenset({name})
                nested = ir.nested.get(name)
                if nested is not None:
                    return self.return_classes(nested)
            root, chain = receiver_chain(expr.func)
            if root == "self" and len(chain) == 1 and ir.klass:
                target = self._lookup_method(ir.klass, chain[0])
                if target is not None:
                    return self.return_classes(target.ir)
            return frozenset()
        if isinstance(expr, ast.Name):
            value = ir.local_values.get(expr.id)
            if value is not None and value is not expr:
                return self.infer_expr(value, ir, depth + 1)
            return frozenset()
        if isinstance(expr, ast.Attribute):
            root, chain = receiver_chain(expr)
            if root == "self" and ir.klass and chain:
                return self.fold_chain(ir.klass, chain)
            return frozenset()
        if isinstance(expr, ast.Subscript):
            # Element of a tracked container: same bucket as the
            # container attribute (element assignments land there too).
            return self.infer_expr(expr.value, ir, depth + 1)
        if isinstance(expr, ast.IfExp):
            return (
                self.infer_expr(expr.body, ir, depth + 1)
                | self.infer_expr(expr.orelse, ir, depth + 1)
            )
        if isinstance(expr, ast.Await):
            return self.infer_expr(expr.value, ir, depth + 1)
        return frozenset()

    def fold_chain(self, class_name, chain):
        """Classes of the object at ``self.<chain>`` within
        ``class_name`` (the chain excludes the final method name)."""
        classes = frozenset({class_name})
        for attr in chain:
            folded = set()
            for cls in classes:
                if cls == LOOP_CLASS:
                    continue
                folded |= self.attr_classes(cls, attr)
            classes = frozenset(folded)
            if not classes:
                break
        return classes

    # -- Callback bindings ---------------------------------------------

    def _callback_bindings(self):
        """(class, attr) -> set of (owner class or None, method name)
        bound-method values that can flow into the attribute via a
        constructor parameter."""
        if self._callbacks_cache is not None:
            return self._callbacks_cache
        # 1. parameter name -> attr for ``self.attr = param`` in
        #    __init__ of every class.
        stored = {}  # class -> param -> attr
        for cls in self.classes.values():
            init = cls.methods.get("__init__")
            if init is None:
                continue
            mapping = {}
            for attr, values in init.assigned_attrs("self").items():
                for value in values:
                    if isinstance(value, ast.Name) and (
                        value.id in init.param_names
                    ):
                        mapping[value.id] = attr
            if mapping:
                stored[cls.name] = (init, mapping)
        # 2. every construction site: match bound-method arguments to
        #    the stored parameters.
        bindings = {}
        for ir in self._all_irs():
            for site in ir.calls:
                name = site.chain[0] if (
                    site.root is None and site.chain
                ) else None
                if name not in stored:
                    continue
                init, mapping = stored[name]
                params = [p for p in init.param_names if p != "self"]
                bound = {}
                for index, arg in enumerate(site.node.args):
                    if index < len(params):
                        bound[params[index]] = arg
                for kw in site.node.keywords:
                    if kw.arg is not None:
                        bound[kw.arg] = kw.value
                for param, arg in bound.items():
                    attr = mapping.get(param)
                    if attr is None:
                        continue
                    method = self._bound_method(arg, ir)
                    if method is not None:
                        bindings.setdefault(
                            (name, attr), set()
                        ).add(method)
        self._callbacks_cache = bindings
        return bindings

    def _bound_method(self, arg, ir):
        """``self.m`` (or a local function name) as a (class, method)
        pair, else None."""
        if isinstance(arg, ast.Attribute) and isinstance(
            arg.value, ast.Name
        ) and arg.value.id == "self" and ir.klass:
            return (ir.klass, arg.attr)
        if isinstance(arg, ast.Name) and arg.id in ir.nested:
            return (None, ir.qualname + "." + arg.id)
        return None

    def callback_targets(self, class_name, attr):
        """Resolved FunctionIR targets a callback attribute can call."""
        out = []
        for klass, method in sorted(
            self._callback_bindings().get((class_name, attr), ())
        ):
            if klass is not None:
                target = self._lookup_method(klass, method)
                if target is not None:
                    out.append(target)
        return out

    # -- Call resolution -----------------------------------------------

    def _imports_for(self, ir):
        for module in self.model.modules:
            if module.path == ir.path:
                return module.imports
        return {}

    def _all_irs(self):
        for ir in self.module_functions.values():
            yield ir
        for cls in self.classes.values():
            for ir in cls.methods.values():
                yield ir

    def _lookup_method(self, class_name, method):
        """MRO lookup of ``method`` starting at ``class_name``."""
        info = self.model.class_index.get(class_name)
        if info is None:
            return None
        for ancestor in self.model.mro_chain(info):
            cls = self.classes.get(ancestor.name)
            if cls is not None and method in cls.methods:
                return Target(
                    ancestor.name, method, cls.methods[method]
                )
        return None

    def resolve(self, site, ir):
        """All resolutions of one call site: a list of
        :class:`Target` / :class:`External` / :class:`LoopCall`.

        An empty list means "unknown receiver" -- the rules treat that
        as silence, never as a finding.
        """
        self.edges += 1
        root, chain = site.root, site.chain
        imports = self._imports_for(ir)
        # Bare name: nested function, module function, constructor,
        # or an import.
        if root is None:
            if not chain:
                return []
            name = site.callee
            if name in ir.nested:
                return [Target(ir.klass, name, ir.nested[name])]
            if (ir.path, name) in self.module_functions:
                return [Target(
                    None, name, self.module_functions[(ir.path, name)]
                )]
            if name in self.classes:
                init = self._lookup_method(name, "__init__")
                return [init] if init is not None else []
            dotted = resolve_dotted(name, imports)
            if dotted is not None and dotted != name:
                return [External(dotted)]
            return []
        # Module-aliased dotted call (``asyncio.run(...)``,
        # ``threading.Thread(...)``): the root is an import.
        if root not in ("self",) and root not in ir.local_values and (
            root not in ir.param_names
        ):
            dotted = resolve_dotted(
                ".".join((root,) + chain), imports
            )
            origin = imports.get(root)
            if origin is not None:
                return [External(dotted)]
        # Receiver chain: fold to classes, then look up the method.
        callee = site.callee
        prefix = chain[:-1]
        if root == "self" and ir.klass:
            if not prefix:
                target = self._lookup_method(ir.klass, callee)
                if target is not None:
                    return [target]
                # ``self.cb(...)``: a callback attribute.
                callbacks = self.callback_targets(ir.klass, callee)
                if callbacks:
                    return callbacks
                classes = self.attr_classes(ir.klass, callee)
                if LOOP_CLASS in classes:
                    return [LoopCall("__call__")]
                return []
            classes = self.fold_chain(ir.klass, prefix)
        elif root in ir.local_values:
            classes = self.infer_expr(
                ir.local_values[root], ir
            )
            for attr in prefix:
                folded = set()
                for cls in classes:
                    if cls != LOOP_CLASS:
                        folded |= self.attr_classes(cls, attr)
                classes = frozenset(folded)
                if not classes:
                    break
        else:
            return []
        out = []
        for cls in sorted(classes):
            if cls == LOOP_CLASS:
                out.append(LoopCall(callee))
                continue
            target = self._lookup_method(cls, callee)
            if target is not None:
                out.append(target)
        return out


def build_project(model):
    """Build (or fetch the cached) :class:`ProjectModel` for a run."""
    cached = getattr(model, "_project", None)
    if cached is None:
        cached = ProjectModel(model)
        model._project = cached
    return cached
