"""Pass 3: cross-process aliasing (rules DVS010-DVS011).

Every simulated process is an object graph inside one Python process,
so module globals and class-level attributes are *physically shared*
across all of them.  A mutable container there silently couples
processes that the distributed model requires to be independent (a
membership set one process appends to would "teleport" to the others).
The pass flags module-level and class-level mutable containers;
read-only tables should be tuples, frozensets or ``MappingProxyType``.
"""

import ast

from repro.lint.report import Finding

#: Constructor names producing mutable containers.
MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray",
    "defaultdict", "OrderedDict", "Counter", "deque",
})

#: Module-level names exempt by convention (consumed read-only by the
#: import machinery itself).
EXEMPT_MODULE_NAMES = frozenset({"__all__"})


def _is_mutable_value(node):
    if isinstance(node, (
        ast.List, ast.Dict, ast.Set,
        ast.ListComp, ast.DictComp, ast.SetComp,
    )):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in MUTABLE_CALLS
    return False


def _describe(node):
    if isinstance(node, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Call):
        return node.func.id
    return "container"


def _assignments(body):
    for stmt in body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    yield stmt, target.id, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                yield stmt, stmt.target.id, stmt.value


def run_pass(model, config):
    """All pass-3 findings over the model."""
    findings = []

    def flag(rule, module, stmt, message):
        if config.enabled(rule):
            findings.append(Finding(
                rule=rule, path=module.path, line=stmt.lineno,
                col=stmt.col_offset, message=message,
            ))

    for module in model.modules:
        for stmt, name, value in _assignments(module.tree.body):
            if name in EXEMPT_MODULE_NAMES:
                continue
            if _is_mutable_value(value):
                flag(
                    "DVS010", module, stmt,
                    "module-level {0} {1!r} is shared across all "
                    "simulated processes".format(_describe(value), name),
                )
        for info in module.classes:
            for stmt, name, value in _assignments(info.node.body):
                if _is_mutable_value(value):
                    flag(
                        "DVS011", module, stmt,
                        "class attribute {0}.{1} is a mutable {2} "
                        "shared by every instance".format(
                            info.name, name, _describe(value)
                        ),
                    )
    return findings
