"""The rule registry for ``repro lint``.

Each rule has a stable id (``DVS001``...), the pass it belongs to, a
one-line summary and a generic fix hint.  Findings carry a
site-specific message; the hint is the generic remedy shown alongside.

Passes (see DESIGN.md section 7):

1. **wellformed** -- the ``pre_``/``eff_``/``cand_`` contract of
   :class:`repro.ioa.automaton.TransitionAutomaton` subclasses, plus
   purity of predicates (preconditions, candidate enumerators and
   invariant functions must not mutate automaton state).
2. **determinism** -- no wall-clock or entropy escapes, no
   order-unstable iteration in effect/simulator paths, no ``id()``
   ordering: the whole simulation must replay bit-for-bit from a seed.
3. **aliasing** -- no module- or class-level mutable state that would be
   silently shared across simulated processes.
4. **races** -- interprocedural thread-boundary analysis of the live
   runtime: state shared between the synchronous facade and the event
   loop must cross through a designated handoff
   (``call_soon_threadsafe`` / ``run_coroutine_threadsafe``).
5. **escape** -- transition effects must not leak aliases of one
   layer's mutable state into another layer's reachable set (the
   static counterpart of the runtime
   :class:`~repro.gcs.effect_check.EffectIsolationChecker`).
6. **wire** -- the codec's wire registry must cover every stack message
   dataclass, with field names and annotations matching the pinned
   schema.
7. **asyncflow** -- async-hazard analysis of the live runtime: no
   blocking calls reachable from a coroutine, no dropped task handles,
   no ``await`` between writes to the same layer state, no lock
   acquisition-order cycles across coroutines.
8. **taint** -- wire-taint analysis: values decoded from TCP frames
   must pass a registered validator before reaching automaton state,
   container keys or timer delays, and receive-path containers must be
   pruned or bounded.
9. **typestate** -- must-typestate analyses on the monotone dataflow
   framework (DESIGN.md section 15): fanout-port lifecycle,
   send-after-close, harness arm-order and view-scoped clock state.
10. **specconf** -- spec-conformance: layer downcalls must be guarded
    wherever the spec automaton's effect is a silent no-op outside
    its enabling state, and impl automata must not drift from their
    package's spec automaton.

``level`` is the SARIF severity the rule reports at: ``error`` for
contract violations, ``warning`` for heuristic or resource-hygiene
rules whose findings occasionally need a justifying pragma, ``note``
for low-confidence advisories.
"""

from dataclasses import dataclass
from types import MappingProxyType

#: The SARIF severities a rule may report at.
LEVELS = ("error", "warning", "note")


@dataclass(frozen=True)
class Rule:
    """A lint rule: stable id, owning pass, summary, fix hint and
    SARIF severity."""

    id: str
    name: str
    lint_pass: str
    summary: str
    hint: str
    level: str = "error"


_RULES = (
    Rule(
        "DVS001",
        "eff-without-pre",
        "wellformed",
        "output/internal action has an eff_ but no matching pre_",
        "add an explicit pre_<action>(self, state, ...) -> bool; absent "
        "preconditions silently default to True",
    ),
    Rule(
        "DVS002",
        "pre-on-input",
        "wellformed",
        "precondition declared for an input action",
        "delete the pre_; I/O automata are input-enabled, so input "
        "actions may never be guarded",
    ),
    Rule(
        "DVS003",
        "orphan-handler",
        "wellformed",
        "pre_/eff_/cand_ handler names no action in the signature",
        "add the action to inputs/outputs/internals or rename/remove "
        "the handler (cand_ is only meaningful for locally controlled "
        "actions)",
    ),
    Rule(
        "DVS004",
        "impure-predicate-write",
        "wellformed",
        "assignment to self/state inside a predicate",
        "preconditions, candidate generators and invariants must be "
        "side-effect-free; move the mutation into the eff_",
    ),
    Rule(
        "DVS005",
        "impure-predicate-mutation",
        "wellformed",
        "mutating call on self/state inside a predicate",
        "copy before mutating (e.g. sorted(xs), set(xs) | {x}) or move "
        "the mutation into the eff_",
    ),
    Rule(
        "DVS006",
        "wall-clock",
        "determinism",
        "wall-clock read in simulation code",
        "use the simulated clock (net.queue.now / node.now); real time "
        "breaks seed-replay and log digests",
    ),
    Rule(
        "DVS007",
        "unseeded-entropy",
        "determinism",
        "global or unseeded entropy source",
        "draw from a random.Random(seed) instance plumbed in from the "
        "run seed; never the random module, uuid4 or os.urandom",
    ),
    Rule(
        "DVS008",
        "unsorted-set-iteration",
        "determinism",
        "order-unstable iteration in an effect/simulator path",
        "wrap the iterable in sorted(...) (set iteration order depends "
        "on PYTHONHASHSEED)",
        level="warning",
    ),
    Rule(
        "DVS009",
        "id-ordering",
        "determinism",
        "ordering by id()",
        "id() varies across runs and processes; order by a stable key "
        "(pid, viewid, sequence number) instead",
        level="note",
    ),
    Rule(
        "DVS010",
        "module-mutable-state",
        "aliasing",
        "module-level mutable container",
        "module globals are shared by every simulated process; use a "
        "tuple/frozenset/MappingProxyType or move it into per-process "
        "state",
    ),
    Rule(
        "DVS011",
        "class-mutable-default",
        "aliasing",
        "class-level mutable default attribute",
        "class attributes are shared by every instance (= every "
        "simulated process); initialise the container in __init__ or "
        "use an immutable type",
        level="warning",
    ),
    Rule(
        "DVS012",
        "cross-thread-state",
        "races",
        "mutable state shared across the runtime thread boundary",
        "marshal the access onto the event loop with "
        "run_coroutine_threadsafe/call_soon_threadsafe, or justify the "
        "benign race with a line-scoped ignore",
    ),
    Rule(
        "DVS013",
        "unmarshalled-loop-call",
        "races",
        "caller-thread call into event-loop-owned code",
        "wrap the call in a designated handoff "
        "(run_coroutine_threadsafe for coroutines, "
        "call_soon_threadsafe for callbacks); loop objects are not "
        "threadsafe",
    ),
    Rule(
        "DVS014",
        "effect-alias-escape",
        "escape",
        "transition effect leaks an alias of mutable layer state",
        "hand a copy across the layer boundary (list(xs), dict(m), "
        "set(s)); shared aliases let one layer mutate another's state "
        "behind the automaton's back",
    ),
    Rule(
        "DVS015",
        "wire-schema-drift",
        "wire",
        "wire registry out of sync with the message dataclasses",
        "regenerate WIRE_SCHEMA in repro/runtime/codec.py and bump "
        "WIRE_VERSION if the encoded field order changed; every stack "
        "message dataclass must be registered in WIRE_TYPES",
    ),
    Rule(
        "DVS016",
        "blocking-call-on-loop",
        "asyncflow",
        "blocking call reachable from a coroutine",
        "the event loop hosts every node's timers and heartbeats; move "
        "the blocking call to the facade thread or a run_in_executor "
        "job (time.sleep -> asyncio.sleep, Future.result -> await)",
    ),
    Rule(
        "DVS017",
        "orphaned-task",
        "asyncflow",
        "create_task/ensure_future result dropped",
        "keep the returned task in an attribute (or a set with a "
        "done-callback that discards it); an unreferenced task can be "
        "garbage-collected mid-flight and its exception is lost",
        level="warning",
    ),
    Rule(
        "DVS018",
        "await-torn-invariant",
        "asyncflow",
        "await between two writes to the same layer state",
        "apply the update atomically before the await, or re-validate "
        "the invariant after it: any handler may run at a suspension "
        "point and observe the half-applied state",
        level="warning",
    ),
    Rule(
        "DVS019",
        "lock-order-cycle",
        "asyncflow",
        "lock/queue acquisition-order cycle across coroutines",
        "impose a global acquisition order (and stick to it in every "
        "coroutine); cyclic orders deadlock the loop under load",
    ),
    Rule(
        "DVS020",
        "unvalidated-wire-taint",
        "taint",
        "wire-tainted value reaches a sink without a validator",
        "gate the receive path with a registered validator (a callable "
        "matching LintConfig.taint_validators, e.g. validate_message / "
        "_validate_inbound) before the value touches automaton state, "
        "container keys or timer delays",
    ),
    Rule(
        "DVS021",
        "unbounded-recv-container",
        "taint",
        "receive-path container grows without a prune or bound",
        "prune the container against current membership, pop on a "
        "timeout, or construct it bounded (deque(maxlen=...), "
        "Queue(maxsize=...)); otherwise every received frame enlarges "
        "it forever",
        level="warning",
    ),
    Rule(
        "DVS022",
        "unguarded-spec-send",
        "specconf",
        "layer downcall reachable while its spec enabling state may "
        "be unset",
        "guard the send on the enabling attribute (if self.cur is "
        "None: return / if self.cur is not None: ...); the spec "
        "automaton's effect silently drops the action when the "
        "process has no current view, so an unguarded send is a "
        "silent message loss",
    ),
    Rule(
        "DVS023",
        "fanout-port-misuse",
        "typestate",
        "fanout port driven before it is bound to a tower (or "
        "claimed and dropped)",
        "pass the port straight into the tower constructor; driving "
        "a bare port bypasses the all-ports-registered gate, and a "
        "claimed-but-unused port blocks DVS registration forever",
    ),
    Rule(
        "DVS024",
        "send-after-close",
        "typestate",
        "send/broadcast reachable after close/stop/leave on the "
        "same handle",
        "reorder the send before the close, re-open the handle "
        "first, or rebind the name to a fresh handle; sends on a "
        "closed PeerLink/stack handle are silently dropped",
    ),
    Rule(
        "DVS025",
        "late-harness-arm",
        "typestate",
        "monitor/tracer armed, or workload driven, out of order "
        "with harness start",
        "build and arm monitors, nemeses and recorders before "
        "start() and drive the workload after it; late arming "
        "misses the formation events and early drives race the "
        "boot",
        level="warning",
    ),
    Rule(
        "DVS026",
        "view-scoped-state-leak",
        "typestate",
        "view-scoped clock state cached across a newview boundary",
        "reset the clock/cursor attribute in the on_*_newview "
        "handler (directly or via a helper it calls); vector clocks "
        "are scoped to one view's membership and carrying one into "
        "the next view corrupts the delivery condition",
        level="warning",
    ),
    Rule(
        "DVS027",
        "spec-drift",
        "specconf",
        "impl automaton's transitions cannot be matched to its spec "
        "automaton",
        "align the impl automaton with the package's spec: external "
        "action names must keep their input/output kind, and an "
        "action every spec transition guards must not run unguarded "
        "in the impl",
        level="warning",
    ),
)

#: Stable id -> :class:`Rule`, in id order (read-only mapping).
RULES = MappingProxyType({rule.id: rule for rule in _RULES})

#: The pass names, in execution order.
PASSES = (
    "wellformed", "determinism", "aliasing", "races", "escape", "wire",
    "asyncflow", "taint", "typestate", "specconf",
)


def rules_for_pass(lint_pass):
    """The rules belonging to ``lint_pass``, in id order."""
    return [rule for rule in _RULES if rule.lint_pass == lint_pass]
