"""Pass 4: static races across the runtime thread boundary (DVS012/013).

The live runtime (DESIGN.md section 9) is a two-thread system: a
synchronous facade runs on the caller's thread while the nodes, links
and timers live on a background asyncio loop.  The only sanctioned ways
across are the *designated handoffs* -- ``run_coroutine_threadsafe``
and ``call_soon_threadsafe`` -- so this pass recovers the two sides
from the call graph and checks the discipline:

- a **facade class** is a class in a runtime module (``config.
  runtime_globs``) that starts a ``threading.Thread``; its public
  methods (plus ``__enter__``/``__exit__``) are *caller-thread roots*,
  its ``async`` methods run on the loop;
- a **loop-owned class** is any other runtime class with an ``async``
  method, closed under the class-attribute points-to relation (the
  hosted gcs layers a node references are loop-owned too);
- everything transitively called from a caller-thread root *without
  passing a handoff* executes on the caller's thread; everything
  reachable from loop roots (async methods, handoff-passed callables)
  executes on the loop.

**DVS012** flags an attribute of a runtime class written on one side
and touched on the other.  **DVS013** flags a caller-thread call whose
resolved target is a method of a loop-owned object (or a
non-threadsafe event-loop API, or a bare coroutine construction) --
the exact mistake deleting a handoff wrap introduces.

Findings are reported at the caller-thread site, so a deliberate
exception is a one-line ``# lint: ignore[DVS012]`` with its
justification next to the code it excuses.
"""

import ast

from repro.lint.callgraph import (
    External,
    LoopCall,
    Target,
    build_project,
)
from repro.lint.report import Finding

#: The designated cross-thread handoffs.
HANDOFF_NAMES = frozenset({
    "run_coroutine_threadsafe", "call_soon_threadsafe",
})

#: Event-loop methods that are documented thread-safe (or only touched
#: after the loop stopped) and therefore fine from the caller's thread.
LOOP_THREADSAFE = frozenset(HANDOFF_NAMES | {
    "is_running", "is_closed", "close", "time",
})

#: Loop APIs that schedule their callable arguments onto the loop.
_LOOP_SCHEDULERS = frozenset({
    "call_soon", "call_later", "call_at", "ensure_future",
    "create_task",
} | HANDOFF_NAMES)

_EXTERNAL_HANDOFFS = frozenset({
    "asyncio.run_coroutine_threadsafe",
})

_THREAD_CTORS = frozenset({"threading.Thread", "Thread"})


def _is_runtime_module(config, path):
    return config.is_runtime_path(path)


class _Side:
    """Accesses and visit bookkeeping for one side of the boundary."""

    def __init__(self):
        self.visited = set()
        #: (class, attr) -> {kind -> [(path, line)]}
        self.accesses = {}

    def record(self, klass, access, path):
        kinds = self.accesses.setdefault((klass, access.attr), {})
        kinds.setdefault(access.kind, []).append(
            (path, access.line, access.col)
        )


class _ThreadBoundaryAnalysis:
    def __init__(self, model, config):
        self.model = model
        self.config = config
        self.project = build_project(model)
        self.findings = []
        self.sync = _Side()
        self.loop = _Side()
        self._loop_roots = []
        self.facades = []
        self.loop_owned = set()

    # -- Classification ------------------------------------------------

    def classify(self):
        runtime_classes = []
        for name, cls in self.project.classes.items():
            if _is_runtime_module(self.config, cls.path):
                runtime_classes.append(cls)
        for cls in runtime_classes:
            if self._starts_thread(cls):
                self.facades.append(cls)
        facade_names = {cls.name for cls in self.facades}
        seeds = [
            cls.name for cls in runtime_classes
            if cls.name not in facade_names and cls.has_async_method()
        ]
        # Close loop ownership over the points-to relation: the layer
        # objects a loop-owned object holds are loop-owned too.
        worklist = list(seeds)
        while worklist:
            name = worklist.pop()
            if name in self.loop_owned:
                continue
            self.loop_owned.add(name)
            cls = self.project.classes.get(name)
            if cls is None:
                continue
            referenced = set()
            for ir in cls.methods.values():
                for attr in ir.assigned_attrs("self"):
                    referenced |= self.project.attr_classes(name, attr)
            for ref in referenced:
                if ref not in facade_names:
                    worklist.append(ref)

    def _starts_thread(self, cls):
        for ir in cls.methods.values():
            for site in ir.calls:
                for res in self.project.resolve(site, ir):
                    if isinstance(res, External) and (
                        res.dotted in _THREAD_CTORS
                    ):
                        return True
        return False

    # -- Traversal -----------------------------------------------------

    def run(self):
        self.classify()
        if not self.facades:
            return []
        for cls in self.facades:
            for name, ir in sorted(cls.methods.items()):
                if ir.is_async:
                    self._loop_roots.append((cls.name, name, ir))
                elif self._is_sync_root(name):
                    self._walk_sync(cls.name, name, ir)
        # Loop side: every method of a loop-owned runtime class, the
        # facade's async methods, and handoff-passed callables.
        for name in sorted(self.loop_owned):
            cls = self.project.classes.get(name)
            if cls is None or not _is_runtime_module(
                self.config, cls.path
            ):
                continue
            for method, ir in sorted(cls.methods.items()):
                self._loop_roots.append((name, method, ir))
        for klass, method, ir in self._loop_roots:
            self._walk_loop(klass, method, ir)
        self._report_conflicts()
        return self.findings

    @staticmethod
    def _is_sync_root(name):
        if name in ("__enter__", "__exit__"):
            return True
        return not name.startswith("_")

    def _collect(self, side, klass, ir):
        if not _is_runtime_module(self.config, ir.path):
            return
        for access in ir.attr_accesses("self"):
            side.record(klass, access, ir.path)

    def _walk_sync(self, klass, method, ir):
        key = (klass, method, ir.path)
        if key in self.sync.visited:
            return
        self.sync.visited.add(key)
        if method != "__init__":
            self._collect(self.sync, klass, ir)
        resolved = [
            (site, self.project.resolve(site, ir)) for site in ir.calls
        ]
        # A call written as a handoff *argument* -- e.g. the coroutine
        # construction in run_coroutine_threadsafe(self._boot(), loop)
        # -- is consumed by the handoff, not executed sync-side.
        shielded = set()
        for site, resolutions in resolved:
            if self._is_handoff(site, resolutions):
                self._register_handoff_args(klass, site, ir)
                for arg in site.node.args:
                    shielded.add(id(arg))
        for site, resolutions in resolved:
            if self._is_handoff(site, resolutions):
                continue
            if id(site.node) in shielded:
                continue
            for res in resolutions:
                if isinstance(res, LoopCall):
                    if res.method not in LOOP_THREADSAFE:
                        self._flag_013(
                            site,
                            ir,
                            "event-loop method {0}() is not threadsafe; "
                            "only {1} may be called off-loop".format(
                                res.method,
                                "/".join(sorted(HANDOFF_NAMES)),
                            ),
                        )
                elif isinstance(res, Target):
                    if res.klass in self.loop_owned:
                        self._flag_013(
                            site,
                            ir,
                            "{0}.{1}() belongs to the event-loop side; "
                            "marshal the call through a designated "
                            "handoff".format(res.klass, res.name),
                        )
                    elif res.ir is not None and res.ir.is_async:
                        self._flag_013(
                            site,
                            ir,
                            "calling async {0}() from the caller thread "
                            "builds a coroutine that never runs; submit "
                            "it with run_coroutine_threadsafe".format(
                                res.name
                            ),
                        )
                    elif res.ir is not None:
                        self._walk_sync(
                            res.klass if res.klass else klass,
                            res.name,
                            res.ir,
                        )

    def _walk_loop(self, klass, method, ir):
        key = (klass, method, ir.path)
        if key in self.loop.visited:
            return
        self.loop.visited.add(key)
        if method != "__init__":
            self._collect(self.loop, klass, ir)
        for inner in ir.nested.values():
            # A nested function defined on the loop side runs there
            # (timer bodies, poll loops).
            self._walk_loop(klass, method + "." + inner.name, inner)
        for site in ir.calls:
            for res in self.project.resolve(site, ir):
                if isinstance(res, Target) and res.ir is not None:
                    if _is_runtime_module(self.config, res.ir.path):
                        self._walk_loop(
                            res.klass if res.klass else klass,
                            res.name,
                            res.ir,
                        )

    def _is_handoff(self, site, resolutions):
        for res in resolutions:
            if isinstance(res, LoopCall) and res.method in HANDOFF_NAMES:
                return True
            if isinstance(res, External) and (
                res.dotted in _EXTERNAL_HANDOFFS
                or res.dotted.rpartition(".")[2] in HANDOFF_NAMES
            ):
                return True
        if not resolutions and site.callee in HANDOFF_NAMES:
            return True
        return False

    def _register_handoff_args(self, klass, site, ir):
        """Callable arguments of a handoff run on the loop."""
        for arg in site.node.args:
            target = None
            if isinstance(arg, ast.Attribute) and isinstance(
                arg.value, ast.Name
            ) and arg.value.id == "self":
                target = self.project._lookup_method(klass, arg.attr)
            elif isinstance(arg, ast.Name) and arg.id in ir.nested:
                target = Target(klass, arg.id, ir.nested[arg.id])
            elif isinstance(arg, ast.Call):
                func = arg.func
                if isinstance(func, ast.Name) and func.id in ir.nested:
                    target = Target(
                        klass, func.id, ir.nested[func.id]
                    )
                elif isinstance(func, ast.Attribute) and isinstance(
                    func.value, ast.Name
                ) and func.value.id == "self":
                    target = self.project._lookup_method(
                        klass, func.attr
                    )
            if target is not None and target.ir is not None:
                self._loop_roots.append(
                    (target.klass or klass, target.name, target.ir)
                )

    # -- Findings ------------------------------------------------------

    def _flag_013(self, site, ir, detail):
        if not self.config.enabled("DVS013"):
            return
        node = site.node
        self.findings.append(Finding(
            rule="DVS013", path=ir.path, line=node.lineno,
            col=node.col_offset,
            message="caller-thread call crosses the loop boundary: "
            + detail,
        ))

    def _report_conflicts(self):
        if not self.config.enabled("DVS012"):
            return
        keys = sorted(
            set(self.sync.accesses) | set(self.loop.accesses)
        )
        for key in keys:
            klass, attr = key
            sync_kinds = self.sync.accesses.get(key, {})
            loop_kinds = self.loop.accesses.get(key, {})
            sync_writes = sync_kinds.get("write", []) + sync_kinds.get(
                "mutate", []
            )
            loop_writes = loop_kinds.get("write", []) + loop_kinds.get(
                "mutate", []
            )
            sync_reads = sync_kinds.get("read", [])
            loop_reads = loop_kinds.get("read", [])
            conflict = bool(
                (sync_writes and (loop_writes or loop_reads))
                or (loop_writes and sync_reads)
            )
            if not conflict:
                continue
            loop_site = sorted(loop_writes or loop_reads)[0]
            loop_desc = "{0}:{1}".format(
                loop_site[0].rpartition("/")[2], loop_site[1]
            )
            seen_lines = set()
            for path, line, col in sorted(sync_writes + sync_reads):
                if (path, line) in seen_lines:
                    continue
                seen_lines.add((path, line))
                self.findings.append(Finding(
                    rule="DVS012", path=path, line=line, col=col,
                    message=(
                        "{0}.{1} is {2} on the event-loop side ({3}) "
                        "and touched here on the caller thread without "
                        "a designated handoff".format(
                            klass, attr,
                            "written" if loop_writes else "read",
                            loop_desc,
                        )
                    ),
                ))


def run_pass(model, config):
    """All pass-4 findings over the model."""
    if not (config.enabled("DVS012") or config.enabled("DVS013")):
        return []
    if not any(
        _is_runtime_module(config, module.path)
        for module in model.modules
    ):
        return []
    return _ThreadBoundaryAnalysis(model, config).run()
