"""Findings and reports: text and JSON rendering.

The JSON layout is stable (schema version 1) because CI archives it as
an artifact and tests validate it:

.. code-block:: json

    {
      "version": 1,
      "tool": "repro-lint",
      "ok": false,
      "files_scanned": 42,
      "counts": {"DVS004": 2},
      "findings": [
        {"rule": "DVS004", "name": "impure-predicate-write",
         "path": "src/repro/x.py", "line": 10, "col": 4,
         "message": "...", "hint": "..."}
      ]
    }
"""

import json
from dataclasses import dataclass

from repro.lint.rules import RULES

#: Bumped on any backwards-incompatible change to the JSON layout.
JSON_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    @property
    def name(self):
        return RULES[self.rule].name

    @property
    def hint(self):
        return RULES[self.rule].hint

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule, self.message)

    def to_dict(self):
        return {
            "rule": self.rule,
            "name": self.name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self):
        return "{0}:{1}:{2}: {3} [{4}] {5}\n    hint: {6}".format(
            self.path, self.line, self.col, self.rule, self.name,
            self.message, self.hint,
        )


class Report:
    """The outcome of one lint run over a set of files."""

    def __init__(self, findings, files_scanned, suppressed=0, excluded=0):
        self.findings = sorted(findings, key=Finding.sort_key)
        self.files_scanned = files_scanned
        self.suppressed = suppressed
        self.excluded = excluded

    @property
    def ok(self):
        return not self.findings

    def counts(self):
        """Findings per rule id, in id order."""
        counts = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self):
        return {
            "version": JSON_SCHEMA_VERSION,
            "tool": "repro-lint",
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "suppressed": self.suppressed,
            "excluded": self.excluded,
            "counts": self.counts(),
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def to_text(self):
        lines = [finding.render() for finding in self.findings]
        if self.findings:
            per_rule = ", ".join(
                "{0} x{1}".format(rule, n) for rule, n in self.counts().items()
            )
            lines.append(
                "{0} finding(s) in {1} file(s) scanned ({2})".format(
                    len(self.findings), self.files_scanned, per_rule
                )
            )
        else:
            lines.append(
                "clean: 0 findings in {0} file(s) scanned".format(
                    self.files_scanned
                )
            )
        if self.suppressed:
            lines.append(
                "{0} finding(s) suppressed by lint: ignore comments".format(
                    self.suppressed
                )
            )
        if self.excluded:
            lines.append(
                "{0} finding(s) in packages where the rule is "
                "configured off".format(self.excluded)
            )
        return "\n".join(lines)
