"""Findings and reports: text, JSON and SARIF rendering.

The JSON layout is stable (schema version 2) because CI archives it as
an artifact and tests validate it:

.. code-block:: json

    {
      "version": 2,
      "tool": "repro-lint",
      "ok": false,
      "files_scanned": 42,
      "engine": {"name": "ir-dataflow", "passes": ["wellformed", "..."],
                 "ir_functions": 310, "callgraph_edges": 1200},
      "counts": {"DVS004": 2},
      "findings": [
        {"rule": "DVS004", "name": "impure-predicate-write",
         "path": "src/repro/x.py", "line": 10, "col": 4,
         "message": "...", "hint": "..."}
      ]
    }

Version 2 added the ``engine`` block (which analysis backend produced
the findings, with its IR/call-graph sizes) and the ``baselined``
counter (findings waived by ``--baseline``).  Finding entries also
carry the rule's ``level`` (``error``/``warning``/``note``) and, for
passes bound to a versioned artifact (DVS015's wire schema), a
``context`` qualifier that joins the baseline fingerprint -- both
additive keys, so the schema version is unchanged.  SARIF 2.1.0 output
is a projection of the same data for code-scanning UIs, with the level
mapped to both the result and the rule's ``defaultConfiguration``.
"""

import json
from dataclasses import dataclass

from repro.lint.rules import RULES

#: Bumped on any backwards-incompatible change to the JSON layout.
JSON_SCHEMA_VERSION = 2

#: SARIF constants (the one version GitHub code scanning ingests).
_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: Optional schema/epoch qualifier (e.g. ``wire-schema-v2``).  When
    #: set, it joins the fingerprint, so findings tied to a versioned
    #: artifact expire with the version instead of waiving forever: a
    #: baseline entry recorded against wire schema v1 does not silently
    #: waive the "same" finding re-surfacing against v2.
    context: str = ""

    @property
    def name(self):
        return RULES[self.rule].name

    @property
    def hint(self):
        return RULES[self.rule].hint

    @property
    def level(self):
        """SARIF severity: ``error``, ``warning`` or ``note``."""
        return RULES[self.rule].level

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule, self.message)

    def fingerprint(self):
        """Identity under ``--baseline``: deliberately excludes the
        line number so reformatting does not resurrect old findings,
        but includes the ``context`` qualifier (when set) so versioned
        findings do not outlive the version they were recorded
        against."""
        return (self.rule, self.path, self.message, self.context)

    def to_dict(self):
        entry = {
            "rule": self.rule,
            "name": self.name,
            "level": self.level,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }
        if self.context:
            entry["context"] = self.context
        return entry

    def render(self):
        return "{0}:{1}:{2}: {3} [{4}] {5}\n    hint: {6}".format(
            self.path, self.line, self.col, self.rule, self.name,
            self.message, self.hint,
        )


def prune_baseline(baseline, current_findings):
    """Split a baseline into ``(kept entries, pruned entries)``.

    A baseline entry is *retired* -- pruned rather than kept -- when it
    can no longer waive anything:

    - its rule id is no longer registered (the rule was removed or
      renamed), or
    - it carries a version-scoped ``context`` qualifier (e.g.
      ``wire-schema-v1``) that no current finding carries: either the
      artifact version rotated past it, or the finding it waived is
      gone.  Context-free entries are kept even when currently unused,
      since their fingerprints stay comparable across runs.

    ``baseline`` is a parsed report dict or an iterable of finding
    dicts; ``current_findings`` the :class:`Finding` list of the run
    being baselined.
    """
    if isinstance(baseline, dict):
        entries = baseline.get("findings", [])
    else:
        entries = list(baseline)
    live_contexts = {
        finding.context for finding in current_findings
        if finding.context
    }
    kept, pruned = [], []
    for entry in entries:
        retired = entry.get("rule") not in RULES or (
            entry.get("context", "")
            and entry["context"] not in live_contexts
        )
        (pruned if retired else kept).append(entry)
    return kept, pruned


class Report:
    """The outcome of one lint run over a set of files."""

    def __init__(self, findings, files_scanned, suppressed=0, excluded=0,
                 engine=None, baselined=0):
        self.findings = sorted(findings, key=Finding.sort_key)
        self.files_scanned = files_scanned
        self.suppressed = suppressed
        self.excluded = excluded
        self.engine = dict(engine) if engine else {"name": "ir-dataflow"}
        self.baselined = baselined

    @property
    def ok(self):
        return not self.findings

    def counts(self):
        """Findings per rule id, in id order."""
        counts = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def apply_baseline(self, baseline):
        """Waive findings present in ``baseline`` (a parsed version-1/2
        report dict, or an iterable of finding dicts); returns a new
        :class:`Report` failing only on what is *new*."""
        if isinstance(baseline, dict):
            baseline = baseline.get("findings", [])
        known = {
            (entry["rule"], entry["path"], entry["message"],
             entry.get("context", ""))
            for entry in baseline
        }
        kept = [
            finding for finding in self.findings
            if finding.fingerprint() not in known
        ]
        return Report(
            kept,
            files_scanned=self.files_scanned,
            suppressed=self.suppressed,
            excluded=self.excluded,
            engine=self.engine,
            baselined=len(self.findings) - len(kept),
        )

    def to_dict(self):
        return {
            "version": JSON_SCHEMA_VERSION,
            "tool": "repro-lint",
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "suppressed": self.suppressed,
            "excluded": self.excluded,
            "baselined": self.baselined,
            "engine": dict(self.engine),
            "counts": self.counts(),
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def to_sarif(self, indent=2):
        """The report as a SARIF 2.1.0 document (one run)."""
        used = sorted({finding.rule for finding in self.findings})
        rules = [
            {
                "id": rule_id,
                "name": RULES[rule_id].name,
                "shortDescription": {"text": RULES[rule_id].summary},
                "help": {"text": RULES[rule_id].hint},
                "defaultConfiguration": {"level": RULES[rule_id].level},
                "properties": {"lintPass": RULES[rule_id].lint_pass},
            }
            for rule_id in used
        ]
        results = [
            {
                "ruleId": finding.rule,
                "ruleIndex": used.index(finding.rule),
                "level": finding.level,
                "message": {"text": finding.message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    },
                }],
            }
            for finding in self.findings
        ]
        document = {
            "$schema": _SARIF_SCHEMA,
            "version": _SARIF_VERSION,
            "runs": [{
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri":
                            "https://example.invalid/repro-lint",
                        "rules": rules,
                    },
                },
                "results": results,
                "properties": {
                    "filesScanned": self.files_scanned,
                    "engine": dict(self.engine),
                },
            }],
        }
        return json.dumps(document, indent=indent, sort_keys=False)

    def to_text(self):
        lines = [finding.render() for finding in self.findings]
        if self.findings:
            per_rule = ", ".join(
                "{0} x{1}".format(rule, n) for rule, n in self.counts().items()
            )
            lines.append(
                "{0} finding(s) in {1} file(s) scanned ({2})".format(
                    len(self.findings), self.files_scanned, per_rule
                )
            )
        else:
            lines.append(
                "clean: 0 findings in {0} file(s) scanned".format(
                    self.files_scanned
                )
            )
        if self.suppressed:
            lines.append(
                "{0} finding(s) suppressed by lint: ignore comments".format(
                    self.suppressed
                )
            )
        if self.excluded:
            lines.append(
                "{0} finding(s) in packages where the rule is "
                "configured off".format(self.excluded)
            )
        if self.baselined:
            lines.append(
                "{0} finding(s) waived by the baseline".format(
                    self.baselined
                )
            )
        return "\n".join(lines)
