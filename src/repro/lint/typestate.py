"""Pass 9: object-protocol typestate (DVS023-DVS026).

Four per-object protocols, checked with must-analyses on the monotone
dataflow framework (:mod:`repro.lint.dataflow`):

- **DVS023 (fanout-port-misuse)** -- a ``DvsFanout`` port is UNBOUND
  from ``fanout.port()`` until it escapes into a tower (passed as a
  call argument).  Driving an unbound port (``port.gpsnd`` /
  ``port.register``) bypasses the all-ports-registered gate, and a
  ``fanout.port()`` whose result is dropped on the floor claims a port
  that can never register -- blocking DVS registration forever.
- **DVS024 (send-after-close)** -- a handle is CLOSED after
  ``close()``/``stop()``/``leave()`` (or a method whose
  interprocedural summary says it closes its receiver); reaching a
  send/broadcast on a closed handle on *every* path is a silent
  message drop.  Rebinding the name or calling a re-opener
  (``start``/``restart``/``connect``) returns the handle to unknown.
- **DVS025 (late-harness-arm)** -- a chaos/replay harness (a class
  with a ``start`` method and monitor/nemesis/recorder attributes) is
  CREATED until ``start()`` (or ``with harness:``); arming an
  observability attribute after start misses the formation events,
  and driving the workload before start races the boot.
- **DVS026 (view-scoped-state-leak)** -- an attribute fed from the
  view-scoped vector-clock constructors (``repro.cb.clocks``) must be
  reset by the class's ``on_*newview`` handler, directly or through a
  helper it calls; a clock carried across the view boundary corrupts
  the delivery condition for the new membership.

All four report only *must* facts: a close or start inside one branch
merges back to unknown, so nothing that merely may happen is flagged.
"""

import ast

from repro.lint.callgraph import build_project
from repro.lint.dataflow import (
    Analysis,
    SummaryTable,
    facts_at_statements,
    self_attr_of,
    statement_parts,
)
from repro.lint.ir import receiver_chain
from repro.lint.report import Finding

UNBOUND = "unbound-port"
FANOUT = "fanout"
CLOSED = "closed"
CREATED = "created"
STARTED = "started"


def _iter_function_irs(project):
    """Every top-level function and method IR (nested functions are
    skipped: their facts belong to the call site that runs them)."""
    for ir in project.module_functions.values():
        yield ir
    for cls in sorted(project.classes.values(), key=lambda c: c.name):
        for ir in cls.methods.values():
            yield ir


def _calls_in(part):
    if not isinstance(part, ast.AST):
        return
    for node in ast.walk(part):
        if isinstance(node, ast.Call):
            yield node


def _call_args(node):
    for arg in node.args:
        yield arg.value if isinstance(arg, ast.Starred) else arg
    for keyword in node.keywords:
        yield keyword.value


# -- DVS023: fanout port lifecycle -------------------------------------------


class PortAnalysis(Analysis):
    """Tracks locals holding fanouts and unbound ports."""

    def __init__(self, config):
        self.fanout_classes = frozenset(config.fanout_classes)

    def _value_state(self, value, fact):
        if isinstance(value, ast.Call):
            if (
                isinstance(value.func, ast.Name)
                and value.func.id in self.fanout_classes
            ):
                return FANOUT
            root, chain = receiver_chain(value.func)
            if (
                root is not None
                and fact.get(root) == FANOUT
                and chain == ("port",)
            ):
                return UNBOUND
        return None

    def transfer(self, fact, stmt, ir):
        for part in statement_parts(stmt):
            for call in _calls_in(part):
                for arg in _call_args(call):
                    if (
                        isinstance(arg, ast.Name)
                        and fact.get(arg.id) == UNBOUND
                    ):
                        fact = dict(fact)
                        del fact[arg.id]  # escaped into a tower
            if isinstance(part, ast.Assign):
                for target in part.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    fact = dict(fact)
                    state = self._value_state(part.value, fact)
                    if state is None:
                        fact.pop(target.id, None)
                    else:
                        fact[target.id] = state
        return fact


def _check_ports(project, config):
    findings = []
    analysis = PortAnalysis(config)
    drives = frozenset(config.port_drive_methods)
    for ir in _iter_function_irs(project):
        facts = facts_at_statements(analysis, ir)
        if facts is None:
            continue
        for index in ir.cfg.reachable():
            for stmt in ir.cfg.blocks[index].statements:
                fact = facts.get(id(stmt), {})
                for part in statement_parts(stmt):
                    for call in _calls_in(part):
                        root, chain = receiver_chain(call.func)
                        if (
                            root is not None
                            and fact.get(root) == UNBOUND
                            and len(chain) == 1
                            and chain[0] in drives
                        ):
                            findings.append(Finding(
                                rule="DVS023",
                                path=ir.path,
                                line=call.lineno,
                                col=call.col_offset,
                                message=(
                                    "{0}.{1}() drives a fanout port "
                                    "that is not bound to a tower "
                                    "yet; it bypasses the all-ports-"
                                    "registered gate".format(
                                        root, chain[0]
                                    )
                                ),
                            ))
                if (
                    isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Call)
                ):
                    root, chain = receiver_chain(stmt.value.func)
                    if (
                        root is not None
                        and fact.get(root) == FANOUT
                        and chain == ("port",)
                    ):
                        findings.append(Finding(
                            rule="DVS023",
                            path=ir.path,
                            line=stmt.value.lineno,
                            col=stmt.value.col_offset,
                            message=(
                                "{0}.port() claims a port and drops "
                                "it; an unregistered port blocks DVS "
                                "registration for every tower".format(
                                    root
                                )
                            ),
                        ))
    return findings


# -- DVS024: send-after-close ------------------------------------------------


def _receiver_key(root, chain):
    """The tracked handle key of a call, or ``None``.

    ``link.close()`` -> ``"link"``; ``self.close()`` -> ``("self",)``;
    ``self._listener.close()`` -> ``("self", "_listener")``.
    """
    if root is None or not chain:
        return None
    if root == "self":
        if len(chain) == 1:
            return ("self",)
        if len(chain) == 2:
            return ("self", chain[0])
        return None
    if len(chain) == 1:
        return root
    return None


def _closes_receiver(ir, table, project, closers):
    """Summary: does calling this method unconditionally close its
    receiver?  Looks at top-level statements only (the must paths) and
    follows ``self.m()`` calls through the table."""
    for stmt in ir.node.body:
        value = stmt.value if isinstance(stmt, ast.Expr) else None
        if isinstance(value, ast.Await):
            value = value.value
        if not isinstance(value, ast.Call):
            continue
        root, chain = receiver_chain(value.func)
        if root != "self":
            continue
        if len(chain) == 2 and chain[1] in closers:
            return True
        if len(chain) == 1:
            if chain[0] in closers:
                return True
            if ir.klass is not None:
                target = project._lookup_method(ir.klass, chain[0])
                if target is not None and table.get(target.ir):
                    return True
    return False


class CloseAnalysis(Analysis):
    """Tracks handles that are must-closed."""

    def __init__(self, config, closer_call_ids):
        self.closers = frozenset(config.handle_closers)
        self.reopeners = frozenset(config.handle_reopeners)
        #: ``id(call node)`` of calls whose target's summary closes
        #: the receiver (precomputed: resolution is not cheap enough
        #: for the fixpoint loop).
        self.closer_call_ids = closer_call_ids

    def transfer(self, fact, stmt, ir):
        for part in statement_parts(stmt):
            for call in _calls_in(part):
                root, chain = receiver_chain(call.func)
                key = _receiver_key(root, chain)
                if key is None:
                    continue
                method = chain[-1]
                if method in self.closers or (
                    id(call) in self.closer_call_ids
                ):
                    fact = dict(fact)
                    fact[key] = CLOSED
                elif method in self.reopeners:
                    fact = dict(fact)
                    fact.pop(key, None)
            if isinstance(part, ast.Assign):
                for target in part.targets:
                    fact = self._kill_target(fact, target)
            elif isinstance(part, (ast.AnnAssign, ast.AugAssign)):
                fact = self._kill_target(fact, part.target)
        return fact

    def _kill_target(self, fact, target):
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                fact = self._kill_target(fact, elt)
            return fact
        key = None
        if isinstance(target, ast.Name):
            key = target.id
        else:
            attr = self_attr_of(target)
            if attr is not None:
                key = ("self", attr)
        if key is not None and key in fact:
            fact = dict(fact)
            del fact[key]
        return fact


def _summary_closer_calls(ir, project, table):
    """Ids of call nodes in ``ir`` resolving to a method whose summary
    closes its receiver."""
    ids = set()
    irs = [ir]
    while irs:
        current = irs.pop()
        for site in current.calls:
            if site.root is None or len(site.chain) != 1:
                continue
            from repro.lint.callgraph import Target

            for resolution in project.resolve(site, current):
                if (
                    isinstance(resolution, Target)
                    and resolution.ir is not None
                    and table.get(resolution.ir)
                ):
                    ids.add(id(site.node))
                    break
    return ids


def _check_closes(project, config):
    findings = []
    closers = frozenset(config.handle_closers)
    senders = frozenset(config.handle_senders)
    table = SummaryTable(
        lambda ir, t: _closes_receiver(ir, t, project, closers),
        bottom=False,
    )
    for ir in _iter_function_irs(project):
        closer_call_ids = _summary_closer_calls(ir, project, table)
        analysis = CloseAnalysis(config, closer_call_ids)
        facts = facts_at_statements(analysis, ir)
        if facts is None:
            continue
        for index in ir.cfg.reachable():
            for stmt in ir.cfg.blocks[index].statements:
                fact = facts.get(id(stmt), {})
                if not fact:
                    continue
                for part in statement_parts(stmt):
                    for call in _calls_in(part):
                        root, chain = receiver_chain(call.func)
                        key = _receiver_key(root, chain)
                        if key is None or chain[-1] not in senders:
                            continue
                        closed = fact.get(key) == CLOSED or (
                            isinstance(key, tuple)
                            and fact.get(("self",)) == CLOSED
                        )
                        if closed:
                            handle = (
                                root if not isinstance(key, tuple)
                                else ".".join(("self",) + key[1:])
                            )
                            findings.append(Finding(
                                rule="DVS024",
                                path=ir.path,
                                line=call.lineno,
                                col=call.col_offset,
                                message=(
                                    "{0}.{1}() is reachable only "
                                    "after {0} was closed; the send "
                                    "is silently dropped".format(
                                        handle, chain[-1]
                                    )
                                ),
                            ))
    return findings


# -- DVS025: harness arm order -----------------------------------------------


def _harness_subjects(project, config):
    """Names of classes with a ``start`` method and at least one
    armable observability attribute."""
    arm_attrs = set(config.harness_arm_attrs)
    subjects = set()
    for cls in project.classes.values():
        if "start" not in cls.methods:
            continue
        init = cls.methods.get("__init__")
        if init is None:
            continue
        armable = set(init.assigned_attrs("self")) | set(
            init.param_names
        )
        if armable & arm_attrs:
            subjects.add(cls.name)
    return subjects


class HarnessAnalysis(Analysis):
    """CREATED -> STARTED lifecycle of locally built harnesses."""

    def __init__(self, subjects):
        self.subjects = frozenset(subjects)

    def _is_subject_ctor(self, value):
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in self.subjects
        )

    def transfer(self, fact, stmt, ir):
        for part in statement_parts(stmt):
            if isinstance(part, ast.withitem):
                context = part.context_expr
                if (
                    isinstance(context, ast.Name)
                    and context.id in fact
                ):
                    fact = dict(fact)
                    fact[context.id] = STARTED
                elif self._is_subject_ctor(context) and isinstance(
                    part.optional_vars, ast.Name
                ):
                    fact = dict(fact)
                    fact[part.optional_vars.id] = STARTED
                continue
            for call in _calls_in(part):
                root, chain = receiver_chain(call.func)
                if root is None or len(chain) != 1 or root not in fact:
                    continue
                if chain[0] == "start":
                    fact = dict(fact)
                    fact[root] = STARTED
                elif chain[0] == "stop":
                    fact = dict(fact)
                    fact.pop(root, None)
            if isinstance(part, ast.Assign):
                for target in part.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    fact = dict(fact)
                    if self._is_subject_ctor(part.value):
                        fact[target.id] = CREATED
                    else:
                        fact.pop(target.id, None)
        return fact


def _check_harnesses(project, config):
    findings = []
    subjects = _harness_subjects(project, config)
    if not subjects:
        return findings
    arm_attrs = frozenset(config.harness_arm_attrs)
    drives = frozenset(config.harness_drive_methods)
    analysis = HarnessAnalysis(subjects)
    for ir in _iter_function_irs(project):
        facts = facts_at_statements(analysis, ir)
        if facts is None:
            continue
        for index in ir.cfg.reachable():
            for stmt in ir.cfg.blocks[index].statements:
                fact = facts.get(id(stmt), {})
                if not fact:
                    continue
                for part in statement_parts(stmt):
                    for call in _calls_in(part):
                        root, chain = receiver_chain(call.func)
                        if (
                            root is not None
                            and fact.get(root) == CREATED
                            and len(chain) == 1
                            and chain[0] in drives
                        ):
                            findings.append(Finding(
                                rule="DVS025",
                                path=ir.path,
                                line=call.lineno,
                                col=call.col_offset,
                                message=(
                                    "{0}.{1}() drives the harness "
                                    "before {0}.start(); the "
                                    "workload races the boot".format(
                                        root, chain[0]
                                    )
                                ),
                            ))
                    if isinstance(part, ast.Assign):
                        for target in part.targets:
                            if not (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and fact.get(target.value.id) == STARTED
                                and target.attr in arm_attrs
                            ):
                                continue
                            findings.append(Finding(
                                rule="DVS025",
                                path=ir.path,
                                line=target.lineno,
                                col=target.col_offset,
                                message=(
                                    "{0}.{1} is armed after {0}."
                                    "start(); the {1} misses the "
                                    "formation events".format(
                                        target.value.id, target.attr
                                    )
                                ),
                            ))
    return findings


# -- DVS026: view-scoped clock state -----------------------------------------


def _clock_names(module, config):
    """Local names bound (by import) to view-scoped clock
    constructors in this module."""
    names = set()
    clock_modules = set(config.clock_modules)
    for local, origin in module.imports.items():
        if "." in origin and origin.rsplit(".", 1)[0] in clock_modules:
            names.add(local)
    return names


def _clock_attr_sites(cls, clock_names):
    """``attr -> (line, col)`` of ``self`` attributes assigned from a
    clock-constructor call (directly or by tuple unpacking)."""
    sites = {}
    for ir in cls.methods.values():
        for node in ast.walk(ir.node):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if not (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in clock_names
            ):
                continue
            for target in node.targets:
                elts = (
                    target.elts
                    if isinstance(target, (ast.Tuple, ast.List))
                    else [target]
                )
                for elt in elts:
                    attr = self_attr_of(elt)
                    if attr is not None and attr not in sites:
                        sites[attr] = (elt.lineno, elt.col_offset)
    return sites


def _written_attrs_from(cls, method_names):
    """``self`` attributes written by the named methods or any
    ``self.*()`` helper they (transitively) call."""
    written = set()
    seen = set()
    stack = [
        name for name in method_names if name in cls.methods
    ]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        ir = cls.methods.get(name)
        if ir is None:
            continue
        written.update(ir.assigned_attrs("self"))
        for site in ir.calls:
            if site.root == "self" and len(site.chain) == 1:
                stack.append(site.chain[0])
    return written


def _check_clocks(project, model, config):
    findings = []
    for cls in sorted(project.classes.values(), key=lambda c: c.name):
        info = model.class_index.get(cls.name)
        if info is None or model.is_automaton(info):
            continue
        newview_handlers = [
            name for name in cls.methods
            if name.startswith("on_") and name.endswith("newview")
        ]
        if not newview_handlers:
            continue
        clock_names = _clock_names(cls.module, config)
        if not clock_names:
            continue
        sites = _clock_attr_sites(cls, clock_names)
        if not sites:
            continue
        reset = _written_attrs_from(cls, newview_handlers)
        for attr in sorted(set(sites) - reset):
            line, col = sites[attr]
            findings.append(Finding(
                rule="DVS026",
                path=cls.path,
                line=line,
                col=col,
                message=(
                    "self.{0} holds a view-scoped clock but no "
                    "write to it is reachable from {1}; the clock "
                    "leaks across the newview boundary".format(
                        attr, " / ".join(sorted(newview_handlers))
                    )
                ),
            ))
    return findings


def run_pass(model, config):
    findings = []
    rules = ("DVS023", "DVS024", "DVS025", "DVS026")
    if not any(config.enabled(rule) for rule in rules):
        return findings
    project = build_project(model)
    if config.enabled("DVS023"):
        findings.extend(_check_ports(project, config))
    if config.enabled("DVS024"):
        findings.extend(_check_closes(project, config))
    if config.enabled("DVS025"):
        findings.extend(_check_harnesses(project, config))
    if config.enabled("DVS026"):
        findings.extend(_check_clocks(project, model, config))
    return findings
