"""Pass 1: automaton well-formedness (rules DVS001-DVS005).

Checks every :class:`~repro.ioa.automaton.TransitionAutomaton` subclass
against the precondition/effect contract of the paper's figures:

- every output/internal action with an ``eff_`` has an explicit
  ``pre_`` (DVS001) -- the base class defaults a missing precondition
  to ``True``, which is almost always an authoring mistake in
  precondition/effect style;
- no ``pre_`` guards an input action (DVS002, input-enabledness);
- every handler names an action in the resolved signature, and
  ``cand_`` only enumerates locally controlled actions (DVS003);
- ``pre_``/``cand_`` bodies are side-effect-free (DVS004/DVS005), as
  are ``invariant_*`` functions anywhere in the tree.
"""

import ast
from types import MappingProxyType

from repro.lint.model import HANDLER_PREFIXES
from repro.lint.purity import (
    INVARIANT_PREFIXES,
    check_predicate,
    predicate_roots,
)
from repro.lint.report import Finding

_PREDICATE_KINDS = MappingProxyType(
    {"pre_": "precondition", "cand_": "candidate generator"}
)


def _split_handler(name):
    for prefix in HANDLER_PREFIXES:
        if name.startswith(prefix):
            return prefix, name[len(prefix):]
    return None, None


def _check_class(model, info, config):
    findings = []
    inputs = model.resolved_signature(info, "inputs")
    outputs = model.resolved_signature(info, "outputs")
    internals = model.resolved_signature(info, "internals")
    signature_known = None not in (inputs, outputs, internals)
    if signature_known:
        controlled = outputs | internals
        all_actions = inputs | controlled
    handlers = model.resolved_handlers(info)

    def flag(rule, node, message):
        findings.append(Finding(
            rule=rule, path=info.path, line=node.lineno,
            col=node.col_offset, message=message,
        ))

    for name, (owner, func) in sorted(handlers.items()):
        prefix, action = _split_handler(name)
        # Report at the definition site only for the defining class, so
        # subclasses do not duplicate inherited findings.
        own = owner is info
        if signature_known and own:
            if action not in all_actions and config.enabled("DVS003"):
                flag(
                    "DVS003", func,
                    "{0}.{1} handles {2!r}, which is not in the "
                    "signature".format(info.name, name, action),
                )
                continue
            if prefix == "pre_" and action in inputs and (
                config.enabled("DVS002")
            ):
                flag(
                    "DVS002", func,
                    "{0}.{1} guards input action {2!r}; inputs are "
                    "always enabled".format(info.name, name, action),
                )
            if prefix == "cand_" and action in inputs and (
                config.enabled("DVS003")
            ):
                flag(
                    "DVS003", func,
                    "{0}.{1} enumerates input action {2!r}; the "
                    "environment controls inputs".format(
                        info.name, name, action
                    ),
                )
        if prefix in _PREDICATE_KINDS and own and (
            config.enabled("DVS004") or config.enabled("DVS005")
        ):
            found = check_predicate(
                func,
                predicate_roots(func, is_method=True),
                info.path,
                _PREDICATE_KINDS[prefix],
            )
            findings.extend(
                f for f in found if config.enabled(f.rule)
            )

    if signature_known and config.enabled("DVS001"):
        for action in sorted(controlled):
            eff = handlers.get("eff_" + action)
            if eff is not None and ("pre_" + action) not in handlers:
                owner, func = eff
                if owner is info:
                    flag(
                        "DVS001", func,
                        "{0}: {1} action {2!r} has eff_{2} but no "
                        "pre_{2}".format(
                            info.name,
                            "output" if action in outputs else "internal",
                            action,
                        ),
                    )
    return findings


def _check_invariants(module, config):
    """Purity of ``invariant_*`` / ``inv_*`` functions (module level or
    nested), wherever they are defined."""
    findings = []
    if not (config.enabled("DVS004") or config.enabled("DVS005")):
        return findings
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        if not node.name.startswith(INVARIANT_PREFIXES):
            continue
        parent = module.parents.get(node)
        is_method = isinstance(parent, ast.ClassDef)
        found = check_predicate(
            node,
            predicate_roots(node, is_method=is_method),
            module.path,
            "invariant",
        )
        findings.extend(f for f in found if config.enabled(f.rule))
    return findings


def run_pass(model, config):
    """All pass-1 findings over the model."""
    findings = []
    for module in model.modules:
        for info in module.classes:
            if model.is_automaton(info):
                findings.extend(_check_class(model, info, config))
        findings.extend(_check_invariants(module, config))
    return findings
