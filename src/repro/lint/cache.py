"""Per-file result caching and incremental dependency cones.

``repro lint`` is run on every commit, but commits touch a handful of
files; re-deriving the whole IR and re-running ten passes for an
unchanged tree is wasted work.  This module keys each file's *raw*
findings (pre-suppression, pre-exclusion -- those are re-applied from
the current sources at report time) by a **cone key**: a digest of

- the content hashes of the file and its transitive dependency cone,
- the lint configuration, and
- the analyzer itself (every ``repro.lint`` source plus the
  ``repro.ioa.metadata`` bridge the spec-conformance pass reads).

A file whose cone key matches the manifest is *clean* and its cached
findings are authoritative; anything else is *dirty* and re-analyzed.
A fully-warm run therefore does no parsing at all -- hash, look up,
report.

The dependency graph is an over-approximation assembled without
importing anything:

- ``import``/``from ... import`` statements (absolute and relative)
  resolved against the scanned file set;
- synthetic edges tie the wire codec to every wire-message module
  (DVS015 compares them), every file to the spec modules (DVS022's
  downcall vocabulary is project-wide) and a package's spec module to
  its directory siblings (DVS027 reports drift at the spec).

It is deliberately *not* exact: project-wide call-graph effects (a
renamed method changing receiver resolution in an unrelated package)
can escape a cone.  ``repro lint`` without ``--changed-only`` still
analyzes the full tree whenever anything is dirty, so the cache can
only serve stale results for a file whose entire cone is untouched --
the trade DESIGN.md section 15 documents.

The manifest lives in ``<cache dir>/cache.json``; direct import deps
are stored per content hash, so even dep extraction skips parsing for
unchanged files.
"""

import ast
import hashlib
import json
import os

#: Bumped on any change to the manifest layout.
CACHE_FORMAT = 1

MANIFEST_NAME = "cache.json"


def _sha(data):
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def file_sha(source):
    """Content hash of one source file."""
    return _sha(source)


def engine_fingerprint():
    """Digest of the analyzer itself: every ``repro.lint`` module plus
    the ``repro.ioa.metadata`` bridge.  Editing any pass invalidates
    every cached finding."""
    import repro.ioa.metadata
    import repro.lint

    sources = []
    lint_dir = os.path.dirname(os.path.abspath(repro.lint.__file__))
    for name in sorted(os.listdir(lint_dir)):
        if name.endswith(".py"):
            sources.append(os.path.join(lint_dir, name))
    sources.append(os.path.abspath(repro.ioa.metadata.__file__))
    digest = hashlib.sha256()
    for path in sources:
        digest.update(os.path.basename(path).encode("utf-8"))
        with open(path, "rb") as handle:
            digest.update(hashlib.sha256(handle.read()).digest())
    return digest.hexdigest()


def config_fingerprint(config):
    """Digest of the lint configuration (any knob change re-keys every
    cone)."""
    payload = []
    for name in sorted(vars(config)):
        value = getattr(config, name)
        if isinstance(value, frozenset):
            value = sorted(value)
        elif hasattr(value, "items"):
            value = sorted(
                (key, list(val)) for key, val in value.items()
            )
        payload.append((name, value))
    return _sha(json.dumps(payload, sort_keys=True, default=list))


# -- Dependency extraction ---------------------------------------------------


def _module_index(files):
    """posix path -> file, for resolving dotted imports by suffix."""
    index = {}
    for path in files:
        index[os.path.normpath(path).replace("\\", "/")] = path
    return index


def _resolve_dotted(dotted, index):
    """Scanned files a dotted module name may denote (suffix match)."""
    tail = dotted.replace(".", "/")
    matches = []
    for suffix in (tail + ".py", tail + "/__init__.py"):
        for posix, path in index.items():
            if posix.endswith("/" + suffix) or posix == suffix:
                matches.append(path)
    return matches


def direct_deps(path, source, files):
    """Files in ``files`` that ``path`` imports (absolute dotted names
    resolved by path suffix; relative imports resolved against the
    file's package directory)."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return []
    index = _module_index(files)
    scanned = {os.path.normpath(f) for f in files}
    deps = set()
    base = os.path.dirname(os.path.normpath(path))
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                deps.update(_resolve_dotted(alias.name, index))
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                module = node.module or ""
                deps.update(_resolve_dotted(module, index))
                for alias in node.names:
                    deps.update(_resolve_dotted(
                        module + "." + alias.name, index
                    ))
            else:
                package = base
                for _ in range(node.level - 1):
                    package = os.path.dirname(package)
                parts = (node.module or "").split(".")
                parts = [part for part in parts if part]
                target = os.path.join(package, *parts) if parts else package
                for alias in node.names:
                    for candidate in (
                        target + ".py",
                        os.path.join(target, "__init__.py"),
                        os.path.join(target, alias.name + ".py"),
                    ):
                        normalized = os.path.normpath(candidate)
                        if normalized in scanned:
                            deps.add(normalized)
    deps.discard(os.path.normpath(path))
    return sorted(deps)


def augmented_graph(deps_by_path, config):
    """The direct-import graph plus the analysis coupling edges.

    - every codec module is tied (both ways) to every wire-message
      module: DVS015 compares the two and reports on both sides;
    - every file depends on every spec module: the spec-conformance
      pass derives its downcall vocabulary (DVS022) from all spec
      automata, wherever the impl lives;
    - a spec module additionally depends on its directory siblings:
      DVS027 reports *at the spec* when a package impl drifts.

    Deliberately an approximation: project-wide call-graph effects (a
    renamed method changing receiver resolution in a file that never
    imports the edited one) can escape a cone.  A full run refreshes
    every entry, so only ``changed_only`` trades that soundness for
    cone-sized work.
    """
    graph = {
        path: set(deps) for path, deps in deps_by_path.items()
    }
    files = sorted(graph)
    codecs = [f for f in files if config.is_codec_path(f)]
    messages = [f for f in files if config.is_wire_message_path(f)]
    for codec in codecs:
        for message in messages:
            if codec != message:
                graph[codec].add(message)
                graph[message].add(codec)
    specs = [f for f in files if config.is_spec_path(f)]
    for spec in specs:
        for path in files:
            if path == spec:
                continue
            graph[path].add(spec)
            if os.path.dirname(path) == os.path.dirname(spec):
                graph[spec].add(path)
    return {path: sorted(deps) for path, deps in graph.items()}


def cone_of(path, graph):
    """The transitive dependency closure of ``path`` (including it)."""
    closure = {path}
    stack = [path]
    while stack:
        for dep in graph.get(stack.pop(), ()):
            if dep not in closure:
                closure.add(dep)
                stack.append(dep)
    return closure


def cone_key(path, graph, shas, config_fp, engine_fp):
    """The cache key of ``path``'s findings."""
    digest = hashlib.sha256()
    digest.update(engine_fp.encode("utf-8"))
    digest.update(config_fp.encode("utf-8"))
    for member in sorted(cone_of(path, graph)):
        digest.update(member.encode("utf-8"))
        digest.update(shas[member].encode("utf-8"))
    return digest.hexdigest()


# -- The manifest ------------------------------------------------------------


def _finding_to_entry(finding):
    entry = [finding.rule, finding.path, finding.line, finding.col,
             finding.message]
    if finding.context:
        entry.append(finding.context)
    return entry


def _entry_to_finding(entry):
    from repro.lint.report import Finding

    rule, path, line, col, message = entry[:5]
    context = entry[5] if len(entry) > 5 else ""
    return Finding(
        rule=rule, path=path, line=line, col=col, message=message,
        context=context,
    )


class LintCache:
    """The on-disk manifest: per-file content hash, direct deps and
    cone-keyed raw findings."""

    def __init__(self, directory):
        self.directory = directory
        self.manifest_path = os.path.join(directory, MANIFEST_NAME)
        self._files = {}
        self._engine_fp = engine_fingerprint()
        self._load()

    def _load(self):
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return
        if data.get("format") != CACHE_FORMAT:
            return
        if data.get("engine") != self._engine_fp:
            return  # the analyzer changed; every entry is stale
        files = data.get("files")
        if isinstance(files, dict):
            self._files = files

    def save(self):
        os.makedirs(self.directory, exist_ok=True)
        data = {
            "format": CACHE_FORMAT,
            "engine": self._engine_fp,
            "files": self._files,
        }
        temporary = self.manifest_path + ".tmp"
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(data, handle, sort_keys=True)
        os.replace(temporary, self.manifest_path)

    @property
    def engine_fp(self):
        return self._engine_fp

    def deps_for(self, path, sha, source, files):
        """Direct deps of ``path``, from the manifest when the content
        hash matches (no parse), else freshly extracted."""
        entry = self._files.get(path)
        if entry is not None and entry.get("sha") == sha:
            deps = entry.get("deps")
            if deps is not None:
                return list(deps)
        return direct_deps(path, source, files)

    def findings_for(self, path, key):
        """Cached raw findings for ``path`` under cone key ``key``, or
        ``None`` on a miss."""
        entry = self._files.get(path)
        if entry is None or entry.get("cone_key") != key:
            return None
        findings = entry.get("findings")
        if findings is None:
            return None
        return [_entry_to_finding(item) for item in findings]

    def store(self, path, sha, deps, key, findings):
        self._files[path] = {
            "sha": sha,
            "deps": list(deps),
            "cone_key": key,
            "findings": [
                _finding_to_entry(finding) for finding in findings
            ],
        }

    def prune(self, keep_paths):
        """Drop manifest entries for files no longer scanned."""
        keep = set(keep_paths)
        for path in list(self._files):
            if path not in keep:
                del self._files[path]
