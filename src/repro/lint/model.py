"""The cross-file source model the passes analyse.

One :class:`SourceModel` is built per lint run.  It holds, per file, the
parsed AST, source lines, a parent map (child AST node -> parent) and an
import map (local name -> fully dotted origin); plus a project-wide
class index so inheritance resolves across modules (subclasses of
``TransitionAutomaton`` inherit signatures and handlers -- e.g.
``LiteralSafeVsToDvs`` redeclares effects but inherits preconditions).

Resolution is by simple class name, which is unambiguous in this
repository; a name collision would only make the model conservative
(last definition wins), never crash.
"""

import ast
from dataclasses import dataclass, field


def parse_module(path, source):
    """Parse ``source``; return the AST or ``None`` on a syntax error."""
    try:
        return ast.parse(source, filename=str(path))
    except SyntaxError:
        return None


def build_parent_map(tree):
    parents = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def build_import_map(tree):
    """Local name -> fully dotted origin, for top-level imports.

    ``import time``                 -> {"time": "time"}
    ``import os.path``              -> {"os": "os"}
    ``from datetime import datetime`` -> {"datetime": "datetime.datetime"}
    ``from random import Random as R`` -> {"R": "random.Random"}
    """
    imports = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else local
                imports[local] = origin
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports never reach stdlib entropy
            for alias in node.names:
                local = alias.asname or alias.name
                imports[local] = node.module + "." + alias.name
    return imports


def dotted_name(node):
    """``a.b.c`` for an Attribute/Name chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve_dotted(name, imports):
    """Expand the first segment of ``name`` through the import map."""
    if name is None:
        return None
    head, sep, rest = name.partition(".")
    origin = imports.get(head)
    if origin is None:
        return name
    return origin + sep + rest


def chain_root(node):
    """The root Name of an attribute/subscript chain, else ``None``.

    ``state.queue[p].msgs`` -> ``"state"``; ``sorted(x).pop`` -> ``None``
    (rooted in a fresh value, so mutating it is harmless).
    """
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def literal_name_set(node):
    """Statically evaluate a signature declaration to a frozenset of
    action names, or ``None`` if it is not a recognised literal form.

    Handles set/list/tuple literals of strings, ``set(...)`` /
    ``frozenset(...)`` over those, and ``|`` unions of recognised forms.
    """
    if isinstance(node, (ast.Set, ast.List, ast.Tuple)):
        names = []
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                names.append(elt.value)
            else:
                return None
        return frozenset(names)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("frozenset", "set") and not node.keywords:
            if not node.args:
                return frozenset()
            if len(node.args) == 1:
                return literal_name_set(node.args[0])
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = literal_name_set(node.left)
        right = literal_name_set(node.right)
        if left is None or right is None:
            return None
        return left | right
    return None


#: Names of action-handler prefixes making up the automaton contract.
HANDLER_PREFIXES = ("pre_", "eff_", "cand_")

#: The base classes granting the contract.  ``TransitionAutomaton``
#: itself (and the abstract ``Automaton``) are exempt from checking.
AUTOMATON_BASES = frozenset({"TransitionAutomaton"})
ABSTRACT_NAMES = frozenset({"TransitionAutomaton", "Automaton"})


@dataclass
class ClassInfo:
    """One class definition, with enough structure for pass 1 and 3."""

    name: str
    node: ast.ClassDef
    path: str
    base_names: tuple
    #: Signature field name -> declared AST value node (own decls only).
    signature_decls: dict = field(default_factory=dict)
    #: Handler method name -> FunctionDef (own defs only).
    handlers: dict = field(default_factory=dict)

    @classmethod
    def from_node(cls, node, path):
        bases = tuple(
            name for name in (
                dotted_name(base) for base in node.bases
            ) if name
        )
        info = cls(node.name, node, path, bases)
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id in (
                        "inputs", "outputs", "internals"
                    ):
                        info.signature_decls[target.id] = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name) and stmt.target.id in (
                    "inputs", "outputs", "internals"
                ) and stmt.value is not None:
                    info.signature_decls[stmt.target.id] = stmt.value
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt.name.startswith(HANDLER_PREFIXES):
                    info.handlers[stmt.name] = stmt
        return info


@dataclass
class ModuleInfo:
    """One parsed file."""

    path: str
    tree: ast.Module
    lines: tuple
    imports: dict
    parents: dict
    classes: list


class SourceModel:
    """All parsed modules plus the project-wide class index."""

    def __init__(self):
        self.modules = []
        self.class_index = {}

    def add_module(self, path, source):
        tree = parse_module(path, source)
        if tree is None:
            return None
        classes = [
            ClassInfo.from_node(node, str(path))
            for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef)
        ]
        module = ModuleInfo(
            path=str(path),
            tree=tree,
            lines=tuple(source.splitlines()),
            imports=build_import_map(tree),
            parents=build_parent_map(tree),
            classes=classes,
        )
        self.modules.append(module)
        for info in classes:
            self.class_index[info.name] = info
        return module

    # -- Inheritance-aware queries ------------------------------------

    def mro_chain(self, info):
        """The class and its project-local ancestors, derived-most
        first (simple-name resolution; diamond-free in this codebase)."""
        chain = []
        seen = set()
        stack = [info]
        while stack:
            current = stack.pop(0)
            if current.name in seen:
                continue
            seen.add(current.name)
            chain.append(current)
            for base in current.base_names:
                base_info = self.class_index.get(base.split(".")[-1])
                if base_info is not None:
                    stack.append(base_info)
        return chain

    def is_automaton(self, info):
        """Whether ``info`` is a (strict) TransitionAutomaton subclass."""
        if info.name in ABSTRACT_NAMES:
            return False
        for ancestor in self.mro_chain(info):
            for base in ancestor.base_names:
                if base.split(".")[-1] in AUTOMATON_BASES:
                    return True
        return False

    def resolved_signature(self, info, fieldname):
        """The effective ``inputs``/``outputs``/``internals`` of a
        class, following Python attribute lookup (first declaration on
        the chain wins).  ``None`` means statically unresolvable."""
        for ancestor in self.mro_chain(info):
            decl = ancestor.signature_decls.get(fieldname)
            if decl is not None:
                return literal_name_set(decl)
        return frozenset()  # TransitionAutomaton's empty default

    def resolved_handlers(self, info):
        """Handler name -> (defining ClassInfo, FunctionDef), with the
        derived-most definition winning."""
        handlers = {}
        for ancestor in self.mro_chain(info):
            for name, node in ancestor.handlers.items():
                handlers.setdefault(name, (ancestor, node))
        return handlers
