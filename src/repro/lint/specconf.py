"""Pass 10: spec conformance (DVS022, DVS027).

The paper's services are specified as precondition/effect automata and
``src/repro/ioa`` keeps them machine-readable; this pass projects them
into protocols the implementation layers must respect.

**DVS022 (unguarded-spec-send).**  Some spec inputs are silent no-ops
outside their enabling state -- ``DVSSpec.eff_dvs_gpsnd`` drops the
payload whenever ``current_viewid[p]`` is ``None`` (the process has no
current primary view).  The metadata extractor
(:mod:`repro.ioa.metadata`) recognises that idiom statically, and this
pass then requires every event-driven layer downcall of such an action
(``self.<stack>.gpsnd(...)``, ``self.<stack>.register()``) to be
*must*-guarded: on every path reaching the call, at least one of the
class's nullable enabling attributes (``self.cur`` / ``self.current``
-- attributes ``__init__`` may leave ``None``) is known non-``None``.
The guard knowledge comes from a must-nonnull dataflow analysis on the
monotone framework (:mod:`repro.lint.dataflow`): ``if self.cur is
None: return`` early-outs, ``if/while ... self.cur is not None``
branches and ``self.cur = <handler parameter>`` assignments all
establish it.  Classes in scope are the view-driven layers: those with
an ``on_*newview`` handler and at least one nullable enabling
attribute.

**DVS027 (spec-drift).**  Within each package that has both a spec
automaton (``*Spec`` / ``*/spec.py``) and implementation automata, the
impl must stay matchable to the spec: a shared external action must
keep its input/output kind; an external the spec guards (``pre_``) in
every transition must not run unguarded in the impl; and every spec
external must be implemented by some impl automaton.  Internal spec
actions (``dvs_createview``, ``to_order``) are refinement freedom and
exempt.
"""

import ast
import os

from repro.ioa.metadata import EFF_PREFIX, PRE_PREFIX, is_none_guarded
from repro.lint.callgraph import build_project
from repro.lint.dataflow import (
    Analysis,
    facts_at_statements,
    negated_none_comparisons,
    none_comparisons,
    self_attr_of,
    statement_parts,
)
from repro.lint.ir import receiver_chain
from repro.lint.report import Finding

NONNULL = "nonnull"
NULL = "null"


# -- Spec projection ---------------------------------------------------------


def _spec_classes(model, config):
    """Automaton classes acting as *specs*: matching the spec globs or
    the ``*Spec`` naming convention."""
    specs = []
    for module in model.modules:
        for info in module.classes:
            if not model.is_automaton(info):
                continue
            if config.is_spec_path(info.path) or info.name.endswith(
                config.spec_class_suffix
            ):
                specs.append(info)
    return specs


def _signature_kinds(model, info):
    """Action name -> kind for one automaton class, or ``None`` when a
    signature field is not statically resolvable."""
    kinds = {}
    for fieldname, kind in (
        ("inputs", "input"), ("outputs", "output"),
        ("internals", "internal"),
    ):
        names = model.resolved_signature(info, fieldname)
        if names is None:
            return None
        for name in names:
            kinds[name] = kind
    return kinds


def _downcall_methods(model, config):
    """Downcall method name -> ``(spec class name, action name)`` for
    every spec *input* action whose effect is none-guarded.

    The method name is the action name with its service prefix
    stripped: ``dvs_gpsnd`` is the spec-side name of the layer
    downcall ``gpsnd``.
    """
    methods = {}
    for info in _spec_classes(model, config):
        kinds = _signature_kinds(model, info)
        if kinds is None:
            continue
        handlers = model.resolved_handlers(info)
        for action, kind in sorted(kinds.items()):
            if kind != "input":
                continue
            eff = handlers.get(EFF_PREFIX + action)
            if eff is None or not is_none_guarded(eff[1]):
                continue
            method = action.split("_", 1)[1] if "_" in action else action
            methods.setdefault(method, (info.name, action))
    return methods


# -- The must-nonnull analysis ----------------------------------------------


def _nullable_attrs(init_ir):
    """Attributes ``__init__`` may leave ``None``: assigned the
    ``None`` literal or a conditional expression with a ``None`` arm."""
    nullable = set()
    for attr, values in init_ir.assigned_attrs("self").items():
        for value in values:
            if isinstance(value, ast.Constant) and value.value is None:
                nullable.add(attr)
            elif isinstance(value, ast.IfExp) and any(
                isinstance(arm, ast.Constant) and arm.value is None
                for arm in (value.body, value.orelse)
            ):
                nullable.add(attr)
    return nullable


class NonNullAnalysis(Analysis):
    """Must-nonnull facts for a set of ``self`` attributes."""

    def __init__(self, attrs, params):
        self.attrs = attrs
        self.params = frozenset(params)

    def _assign(self, fact, target, value):
        attr = self_attr_of(target)
        if attr is None or attr not in self.attrs:
            return fact
        fact = dict(fact)
        if isinstance(value, ast.Constant) and value.value is None:
            fact[attr] = NULL
        elif isinstance(value, ast.IfExp):
            # May be None: back to unknown.
            fact.pop(attr, None)
        elif isinstance(value, ast.Name) and value.id not in self.params:
            # A local of unknown nullness.
            fact.pop(attr, None)
        else:
            # Handler parameters (the installed view) and constructed
            # values establish the attribute.
            fact[attr] = NONNULL
        return fact

    def transfer(self, fact, stmt, ir):
        for part in statement_parts(stmt):
            if isinstance(part, ast.Assign):
                for target in part.targets:
                    if isinstance(target, (ast.Tuple, ast.List)):
                        # Unpacked values have unknown nullness.
                        for elt in target.elts:
                            attr = self_attr_of(elt)
                            if attr in self.attrs:
                                fact = dict(fact)
                                fact.pop(attr, None)
                    else:
                        fact = self._assign(fact, target, part.value)
            elif isinstance(part, ast.AnnAssign) and part.value is not None:
                fact = self._assign(fact, part.target, part.value)
            elif isinstance(part, ast.Delete):
                for target in part.targets:
                    attr = self_attr_of(target)
                    if attr in self.attrs:
                        fact = dict(fact)
                        fact.pop(attr, None)
        return fact

    def refine(self, fact, test, sense, ir):
        pairs = (
            none_comparisons(test) if sense
            else negated_none_comparisons(test)
        )
        for operand, is_none in pairs:
            attr = self_attr_of(operand)
            if attr is not None and attr in self.attrs:
                fact = dict(fact)
                fact[attr] = NULL if is_none else NONNULL
        return fact


def _newview_classes(project, model):
    """Class models with an ``on_*newview`` handler that are not
    themselves automata (the event-driven layers)."""
    out = []
    for cls in project.classes.values():
        info = model.class_index.get(cls.name)
        if info is None or model.is_automaton(info):
            continue
        if any(
            name.startswith("on_") and name.endswith("newview")
            for name in cls.methods
        ):
            out.append(cls)
    return out


def _send_sites(ir, methods):
    """``(stmt, call node, stack attr, method)`` for calls of the form
    ``self.<attr>.<method>(...)`` in ``ir``'s reachable statements."""
    sites = []
    for index in ir.cfg.reachable():
        for stmt in ir.cfg.blocks[index].statements:
            for part in statement_parts(stmt):
                nodes = (
                    ast.walk(part) if isinstance(part, ast.AST) else ()
                )
                for node in nodes:
                    if not isinstance(node, ast.Call):
                        continue
                    root, chain = receiver_chain(node.func)
                    if (
                        root == "self"
                        and len(chain) == 2
                        and chain[1] in methods
                    ):
                        sites.append((stmt, node, chain[0], chain[1]))
    return sites


def _check_unguarded_sends(project, model, config):
    findings = []
    methods = _downcall_methods(model, config)
    if not methods:
        return findings
    for cls in _newview_classes(project, model):
        init = cls.methods.get("__init__")
        if init is None:
            continue
        nullable = _nullable_attrs(init)
        if not nullable:
            continue
        for name, ir in sorted(cls.methods.items()):
            if name == "__init__":
                continue
            sites = _send_sites(ir, methods)
            if not sites:
                continue
            analysis = NonNullAnalysis(nullable, ir.param_names)
            facts = facts_at_statements(analysis, ir)
            if facts is None:
                continue
            for stmt, call, stack_attr, method in sites:
                fact = facts.get(id(stmt), {})
                if any(fact.get(a) == NONNULL for a in nullable):
                    continue
                spec_name, action = methods[method]
                findings.append(Finding(
                    rule="DVS022",
                    path=ir.path,
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        "self.{0}.{1}() in {2}.{3} is reachable while "
                        "none of the enabling attributes ({4}) is known "
                        "non-None; {5}.eff_{6} silently drops the "
                        "action in that state".format(
                            stack_attr, method, cls.name, name,
                            ", ".join(sorted(nullable)),
                            spec_name, action,
                        )
                    ),
                ))
    return findings


# -- Spec drift --------------------------------------------------------------


def _automata_by_package(model, config):
    """Directory -> ``(specs, impls)`` lists of automaton ClassInfos."""
    packages = {}
    spec_names = {info.name for info in _spec_classes(model, config)}
    for module in model.modules:
        for info in module.classes:
            if not model.is_automaton(info):
                continue
            package = os.path.dirname(info.path)
            specs, impls = packages.setdefault(package, ([], []))
            if info.name in spec_names:
                specs.append(info)
            else:
                impls.append(info)
    return packages


def _check_drift(model, config):
    findings = []
    for package, (specs, impls) in sorted(
        _automata_by_package(model, config).items()
    ):
        if not specs or not impls:
            continue
        spec_kinds = {}
        spec_guarded = {}
        spec_lines = {}
        for spec in specs:
            kinds = _signature_kinds(model, spec)
            if kinds is None:
                continue
            handlers = model.resolved_handlers(spec)
            for action, kind in kinds.items():
                if kind == "internal":
                    continue
                spec_kinds[action] = (spec.name, kind)
                spec_guarded[action] = (
                    PRE_PREFIX + action in handlers
                )
                spec_lines[action] = (spec.path, spec.node.lineno)
        implemented = set()
        for impl in impls:
            kinds = _signature_kinds(model, impl)
            if kinds is None:
                continue
            handlers = model.resolved_handlers(impl)
            for action, kind in sorted(kinds.items()):
                if action not in spec_kinds:
                    continue
                implemented.add(action)
                spec_name, spec_kind = spec_kinds[action]
                if kind != spec_kind and kind != "internal":
                    findings.append(Finding(
                        rule="DVS027",
                        path=impl.path,
                        line=impl.node.lineno,
                        col=impl.node.col_offset,
                        message=(
                            "{0} declares {1} as an {2} but the spec "
                            "automaton {3} declares it as an {4}; no "
                            "spec transition can match it".format(
                                impl.name, action, kind, spec_name,
                                spec_kind,
                            )
                        ),
                    ))
                elif (
                    kind == "output"
                    and spec_kind == "output"
                    and spec_guarded.get(action)
                    and PRE_PREFIX + action not in handlers
                ):
                    eff = handlers.get(EFF_PREFIX + action)
                    node = eff[1] if eff is not None else impl.node
                    findings.append(Finding(
                        rule="DVS027",
                        path=impl.path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            "{0}.{1} runs unguarded but every {2} "
                            "transition for it has a precondition; "
                            "the unguarded effect cannot be matched "
                            "to any spec transition".format(
                                impl.name, action, spec_name,
                            )
                        ),
                    ))
        for action in sorted(set(spec_kinds) - implemented):
            spec_name, kind = spec_kinds[action]
            spec_path, spec_line = spec_lines[action]
            findings.append(Finding(
                rule="DVS027",
                path=spec_path,
                line=spec_line,
                col=0,
                message=(
                    "spec {0} external {1} ({2}) is implemented by no "
                    "automaton in its package; the impl trace cannot "
                    "contain it".format(spec_name, action, kind)
                ),
            ))
    return findings


def run_pass(model, config):
    findings = []
    if not (config.enabled("DVS022") or config.enabled("DVS027")):
        return findings
    project = build_project(model)
    if config.enabled("DVS022"):
        findings.extend(_check_unguarded_sends(project, model, config))
    if config.enabled("DVS027"):
        findings.extend(_check_drift(model, config))
    return findings
