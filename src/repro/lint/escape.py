"""Pass 5: effect alias escapes (DVS014).

The locality discipline of the paper's automata -- an ``eff_`` may
mutate only the state of the automaton it belongs to -- is enforced at
runtime by :class:`repro.gcs.effect_check.EffectIsolationChecker`,
which fingerprints every *other* process's layer state around each
dispatch.  That catches a violation only when a test actually drives
the aliased path.  This pass is the static half: it flags the way such
aliases are created in the first place -- a transition handler handing
a *mutable* piece of its own state to something that will retain it on
the far side of a layer or process boundary:

- constructing a message/action with a mutable state attribute as a
  field (``InfoMsg(state.act, state.amb)`` instead of
  ``InfoMsg(state.act, frozenset(state.amb))``) -- the message is
  delivered to other automatons, so every holder now shares the set;
- calling a method on a *foreign* object (a non-state parameter of the
  handler) with a mutable state attribute as argument;
- storing a mutable state attribute into a foreign object's attribute.

Mutability is judged per class: an attribute counts as mutable when
the class (or an ancestor) initialises it with a container literal,
comprehension, or a known mutable constructor (``list``, ``dict``,
``set``, ``Table``...), either by direct assignment or as a keyword to
``super().__init__``.  Wrapping the attribute in a copying call
(``frozenset(state.amb)``, ``list(state.order)``, ``sorted(...)``)
never matches -- only the bare alias does -- so the fix the rule hints
at is also exactly what silences it.
"""

import ast

from repro.lint.callgraph import build_project
from repro.lint.model import HANDLER_PREFIXES
from repro.lint.report import Finding

#: Constructors producing a fresh mutable container.
MUTABLE_CTORS = frozenset({
    "list", "dict", "set", "bytearray", "deque", "defaultdict",
    "OrderedDict", "Counter", "Table",
})

#: Handler prefixes whose results cross the layer boundary.
_ESCAPE_PREFIXES = ("eff_", "cand_")

#: Module-level action constructors: their parameters become action
#: payloads delivered to every participating automaton.
_ACTION_CTORS = frozenset({"act", "make_action", "Action"})


def _is_mutable_init(node):
    """Whether ``node`` evaluates to a fresh mutable container."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in MUTABLE_CTORS
    if isinstance(node, ast.IfExp):
        return _is_mutable_init(node.body) or _is_mutable_init(node.orelse)
    return False


def _is_super_init(node):
    """``super().__init__(...)`` call?"""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "__init__"
        and isinstance(node.func.value, ast.Call)
        and isinstance(node.func.value.func, ast.Name)
        and node.func.value.func.id == "super"
    )


class _MutabilityIndex:
    """Per-class set of mutably-initialised attribute names."""

    def __init__(self, model):
        self.model = model
        self._cache = {}

    def _own_mutable_attrs(self, info):
        attrs = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and _is_mutable_init(node.value)
                    ):
                        attrs.add(target.attr)
            elif _is_super_init(node):
                for kw in node.keywords:
                    if kw.arg is not None and _is_mutable_init(kw.value):
                        attrs.add(kw.arg)
        return attrs

    def mutable_attrs(self, class_name):
        if class_name in self._cache:
            return self._cache[class_name]
        info = self.model.class_index.get(class_name)
        attrs = set()
        if info is not None:
            for ancestor in self.model.mro_chain(info):
                attrs |= self._own_mutable_attrs(ancestor)
        self._cache[class_name] = frozenset(attrs)
        return self._cache[class_name]


def _state_classes(project, class_name):
    """The class(es) of an automaton's transition state, inferred from
    ``initial_state``'s returns."""
    cls = project.classes.get(class_name)
    if cls is None:
        return frozenset()
    ir = cls.methods.get("initial_state")
    if ir is None:
        return frozenset()
    return project.return_classes(ir)


def _root_attr(node):
    """``(root, attr)`` for a bare ``root.attr`` expression."""
    if isinstance(node, ast.Attribute) and isinstance(
        node.value, ast.Name
    ):
        return node.value.id, node.attr
    return None, None


def run_pass(model, config):
    """All pass-5 findings over the model."""
    if not config.enabled("DVS014"):
        return []
    project = build_project(model)
    index = _MutabilityIndex(model)
    findings = []

    for module in model.modules:
        for info in module.classes:
            if not model.is_automaton(info):
                continue
            state_mutable = frozenset().union(*(
                index.mutable_attrs(name)
                for name in _state_classes(project, info.name)
            )) if _state_classes(project, info.name) else frozenset()
            self_mutable = index.mutable_attrs(info.name)
            for name, handler in sorted(info.handlers.items()):
                if not name.startswith(_ESCAPE_PREFIXES):
                    continue
                findings.extend(_check_handler(
                    model, module, info, handler,
                    state_mutable, self_mutable,
                ))
    return findings


def _check_handler(model, module, info, handler, state_mutable,
                   self_mutable):
    params = [arg.arg for arg in handler.args.args]
    state_param = params[1] if len(params) > 1 else None
    foreign = {
        p for p in params[2:]
    }
    findings = []

    def mutable_alias(node):
        """``(root, attr)`` when ``node`` is a bare mutable state
        attribute, else ``(None, None)``."""
        root, attr = _root_attr(node)
        if root == "self" and attr in self_mutable:
            return root, attr
        if (
            root is not None and root == state_param
            and attr in state_mutable
        ):
            return root, attr
        return None, None

    def flag(node, root, attr, how):
        findings.append(Finding(
            rule="DVS014", path=module.path, line=node.lineno,
            col=node.col_offset,
            message=(
                "{0}.{1} leaks an alias of mutable state "
                "{2}.{3} {4}; hand over a copy "
                "(frozenset/list/dict) instead".format(
                    info.name, handler.name, root, attr, how
                )
            ),
        ))

    for node in ast.walk(handler):
        if isinstance(node, ast.Call):
            target = _describe_escape_callee(model, node, foreign)
            if target is None:
                continue
            for arg in list(node.args) + [
                kw.value for kw in node.keywords
            ]:
                root, attr = mutable_alias(arg)
                if root is not None:
                    flag(arg, root, attr, target)
        elif isinstance(node, ast.Assign):
            root, attr = mutable_alias(node.value)
            if root is None:
                continue
            for tgt in node.targets:
                tgt_root, tgt_attr = _root_attr(tgt)
                if tgt_root is not None and tgt_root in foreign:
                    flag(node.value, root, attr,
                         "into foreign attribute {0}.{1}".format(
                             tgt_root, tgt_attr))
    return findings


def _describe_escape_callee(model, call, foreign):
    """Why a call retains its arguments, or ``None`` if it does not.

    Three escape shapes: constructing a message/dataclass (the instance
    outlives the transition and is delivered elsewhere), constructing
    an action, and invoking a method on a foreign object.
    """
    func = call.func
    if isinstance(func, ast.Name):
        if func.id in model.class_index:
            return "into {0}(...)".format(func.id)
        if func.id in _ACTION_CTORS:
            return "into action {0}(...)".format(func.id)
        return None
    if isinstance(func, ast.Attribute) and isinstance(
        func.value, ast.Name
    ):
        if func.value.id in foreign:
            return "to foreign receiver {0}.{1}()".format(
                func.value.id, func.attr
            )
    return None
