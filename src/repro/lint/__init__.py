"""``repro lint``: static analysis for the simulation stack and the
live runtime, built on a per-function IR, a project-wide call graph
and a monotone dataflow framework.

Ten passes guard the properties the paper's formalism rests on:

1. *well-formedness* -- faithful precondition/effect automata
   (rules DVS001-DVS005);
2. *determinism* -- bit-reproducible simulation from a seed
   (rules DVS006-DVS009);
3. *aliasing* -- no hidden state shared across simulated processes
   (rules DVS010-DVS011);
4. *races* -- interprocedural thread-boundary analysis of the live
   runtime's sync-facade/event-loop split (rules DVS012-DVS013);
5. *escape* -- transition effects never leak aliases of mutable layer
   state across a layer boundary (rule DVS014);
6. *wire* -- the codec's registry and pinned schema cover every stack
   message dataclass, field for field (rule DVS015);
7. *asyncflow* -- async-hazard analysis of the event loop hosting the
   stack: blocking calls, dropped tasks, torn invariants at awaits,
   lock-order cycles (rules DVS016-DVS019);
8. *taint* -- wire-taint tracking from the codec's decode paths to
   automaton-state/key/delay sinks, plus unbounded receive-path
   containers (rules DVS020-DVS021);
9. *typestate* -- must-typestate protocols on the dataflow framework:
   fanout-port lifecycle, send-after-close, harness arm order,
   view-scoped clock state (rules DVS023-DVS026);
10. *specconf* -- spec conformance: downcalls guarded wherever the
    spec automaton's effect is a silent no-op, and no impl drift from
    the package's spec automaton (rules DVS022, DVS027).

Use from code or tests::

    from repro.lint import LintConfig, lint_paths
    report = lint_paths(["src/repro"])
    assert report.ok, report.to_text()

or from the command line: ``python -m repro lint src/repro``
(``--format sarif``, ``--baseline report.json``, ``--changed-only``
and ``--jobs N`` are supported; results are cached per file under
``.lint-cache/`` keyed by dependency cone).
"""

from repro.lint.cache import LintCache, cone_of, engine_fingerprint
from repro.lint.callgraph import ProjectModel, build_project
from repro.lint.config import (
    DEFAULT_CLOCK_MODULES,
    DEFAULT_CODEC_GLOBS,
    DEFAULT_EVENT_PATH_GLOBS,
    DEFAULT_RULE_EXCLUDES,
    DEFAULT_RUNTIME_GLOBS,
    DEFAULT_SPEC_GLOBS,
    DEFAULT_TAINT_VALIDATORS,
    DEFAULT_WIRE_MESSAGE_GLOBS,
    LintConfig,
)
from repro.lint.dataflow import (
    Analysis,
    SummaryTable,
    facts_at_statements,
    run_forward,
)
from repro.lint.engine import iter_python_files, lint_paths
from repro.lint.ir import CFG, FunctionIR, build_cfg
from repro.lint.report import (
    Finding,
    JSON_SCHEMA_VERSION,
    Report,
    prune_baseline,
)
from repro.lint.rules import PASSES, RULES, Rule, rules_for_pass

__all__ = [
    "Analysis",
    "CFG",
    "DEFAULT_CLOCK_MODULES",
    "DEFAULT_CODEC_GLOBS",
    "DEFAULT_EVENT_PATH_GLOBS",
    "DEFAULT_RULE_EXCLUDES",
    "DEFAULT_RUNTIME_GLOBS",
    "DEFAULT_SPEC_GLOBS",
    "DEFAULT_TAINT_VALIDATORS",
    "DEFAULT_WIRE_MESSAGE_GLOBS",
    "Finding",
    "FunctionIR",
    "JSON_SCHEMA_VERSION",
    "LintCache",
    "LintConfig",
    "PASSES",
    "ProjectModel",
    "RULES",
    "Report",
    "Rule",
    "SummaryTable",
    "build_cfg",
    "build_project",
    "cone_of",
    "engine_fingerprint",
    "facts_at_statements",
    "iter_python_files",
    "lint_paths",
    "prune_baseline",
    "rules_for_pass",
    "run_forward",
]
