"""``repro lint``: AST-based static analysis for the simulation stack.

Three passes guard the properties the paper's formalism rests on:

1. *well-formedness* -- faithful precondition/effect automata
   (rules DVS001-DVS005);
2. *determinism* -- bit-reproducible simulation from a seed
   (rules DVS006-DVS009);
3. *aliasing* -- no hidden state shared across simulated processes
   (rules DVS010-DVS011).

Use from code or tests::

    from repro.lint import LintConfig, lint_paths
    report = lint_paths(["src/repro"])
    assert report.ok, report.to_text()

or from the command line: ``python -m repro lint src/repro``.
"""

from repro.lint.config import (
    DEFAULT_EVENT_PATH_GLOBS,
    DEFAULT_RULE_EXCLUDES,
    LintConfig,
)
from repro.lint.engine import iter_python_files, lint_paths
from repro.lint.report import (
    Finding,
    JSON_SCHEMA_VERSION,
    Report,
)
from repro.lint.rules import PASSES, RULES, Rule, rules_for_pass

__all__ = [
    "DEFAULT_EVENT_PATH_GLOBS",
    "DEFAULT_RULE_EXCLUDES",
    "Finding",
    "JSON_SCHEMA_VERSION",
    "LintConfig",
    "PASSES",
    "RULES",
    "Report",
    "Rule",
    "iter_python_files",
    "lint_paths",
    "rules_for_pass",
]
