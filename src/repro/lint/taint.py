"""Pass 8: wire-taint analysis over the dataflow summaries.

Frames decoded by ``codec.py`` carry attacker-controlled bytes: any TCP
client can connect to a node and claim any sender id or field value.
This pass tracks those values from the decode entry points through
assignments, loops and interprocedural calls (including callback
bindings such as ``Listener(on_frame=self._on_frame)``), and reports:

DVS020  a wire-tainted value reaching a sink without passing a
        registered validator.  Sinks are (a) calls that carry the value
        out of the runtime into the hosted automaton stack, (b) dict or
        set keys, and (c) ``call_later``/``call_at`` delays.
DVS021  containers on the receive path that only ever grow: an
        ``append``/``add``/subscript-store reachable from a decode
        entry point with no prune, pop or bounded construction
        anywhere in the owning class (the PR 5 heartbeat-growth bug,
        generalized into a rule).

Validators are matched by name against ``LintConfig.taint_validators``
(prefix or exact); calling one over a tainted name cleanses that name
for the whole function, so a guard like ``if not
self._validate_inbound(src, msg): return`` silences both rules
downstream.  Soundness caveats (flow-insensitivity, silence on unknown
receivers, runtime-module scope) are documented in DESIGN.md
section 13.
"""

import ast

from repro.lint.callgraph import (
    LoopCall,
    Target,
    build_project,
)
from repro.lint.ir import receiver_chain
from repro.lint.report import Finding

#: Decode entry points: functions defined in a codec module with one of
#: these names produce wire-tainted values.
_SOURCE_NAMES = frozenset({"decode", "decode_frame", "feed"})

#: Loop scheduling methods whose delay argument must not be tainted.
_DELAY_SINKS = frozenset({"call_later", "call_at"})

#: Mutator methods that grow a container.
_GROWTH_METHODS = frozenset({
    "append", "appendleft", "add", "extend", "insert", "setdefault",
    "update",
})

#: Mutator methods that shrink a container (their presence anywhere in
#: the owning class counts as a bound).
_SHRINK_METHODS = frozenset({
    "pop", "popitem", "popleft", "remove", "discard", "clear",
})

#: Constructors that are bounded by keyword.
_BOUNDED_KWARGS = frozenset({"maxlen", "maxsize"})


def _walk_skip_nested(node):
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (
            ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda
        )):
            continue
        yield child
        for grandchild in _walk_skip_nested(child):
            yield grandchild


def _target_names(target):
    """Bound names of an assignment/loop target."""
    names = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store,)
        ):
            names.add(node.id)
    return names


class _TaintAnalysis:
    def __init__(self, model, config):
        self.model = model
        self.config = config
        self.project = build_project(model)
        self.findings = []
        #: id(ir) -> set of tainted local/param names.
        self.taint = {}
        #: id(ir) -> True when the function returns tainted data.
        self.returns_taint = {}
        self._functions = self._runtime_functions()

    # -- Function universe ---------------------------------------------

    def _runtime_functions(self):
        """``(klass, ir)`` for every function in a runtime, non-codec
        module (the codec itself is the source, not a consumer)."""
        out = []
        for (path, _name), ir in sorted(
            self.project.module_functions.items()
        ):
            if self._in_scope(path):
                out.append((None, ir))
        for name in sorted(self.project.classes):
            cls = self.project.classes[name]
            if not self._in_scope(cls.path):
                continue
            for method in sorted(cls.methods):
                out.append((name, cls.methods[method]))
        expanded = []
        stack = list(reversed(out))
        while stack:
            klass, ir = stack.pop()
            expanded.append((klass, ir))
            for inner in sorted(ir.nested):
                stack.append((klass, ir.nested[inner]))
        return expanded

    def _in_scope(self, path):
        return self.config.is_runtime_path(path) and not (
            self.config.is_codec_path(path)
        )

    # -- Source and validator classification ---------------------------

    def _is_source_call(self, site, ir):
        for res in self.project.resolve(site, ir):
            if isinstance(res, Target) and res.ir is not None:
                if self.config.is_codec_path(res.ir.path) and (
                    res.name in _SOURCE_NAMES
                ):
                    return True
            elif hasattr(res, "dotted"):
                mod, _, last = res.dotted.rpartition(".")
                if last in _SOURCE_NAMES and mod.endswith("codec"):
                    return True
        return False

    def _is_validator(self, site):
        callee = site.callee
        if callee is None:
            return False
        for pattern in self.config.taint_validators:
            if callee == pattern or callee.startswith(pattern):
                return True
        return False

    def _cleansed_names(self, ir):
        """Names passed to a registered validator anywhere in the
        function: cleansed for the whole function (flow-insensitive)."""
        cleansed = set()
        for site in ir.calls:
            if not self._is_validator(site):
                continue
            for arg in list(site.node.args) + [
                kw.value for kw in site.node.keywords
            ]:
                if isinstance(arg, ast.Name):
                    cleansed.add(arg.id)
        return cleansed

    # -- Propagation ---------------------------------------------------

    def run(self):
        for klass, ir in self._functions:
            self.taint.setdefault(id(ir), set())
        # Small global fixpoint: taint flows forward through calls and
        # backward through returns; the runtime call graph is shallow,
        # so a handful of rounds converges.
        for _round in range(6):
            changed = False
            for klass, ir in self._functions:
                if self._propagate(klass, ir):
                    changed = True
            if not changed:
                break
        for klass, ir in self._functions:
            self._check_sinks(klass, ir)
        self._check_unbounded_growth()
        self.findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return self.findings

    def _effective(self, ir):
        return self.taint[id(ir)] - self._cleansed_names(ir)

    def _expr_tainted(self, expr, ir, tainted):
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id in tainted:
                return True
            if isinstance(node, ast.Call):
                site = self._site_for(node, ir)
                if site is not None and self._call_tainted(site, ir):
                    return True
        return False

    def _site_for(self, call_node, ir):
        for site in ir.calls:
            if site.node is call_node:
                return site
        return None

    def _call_tainted(self, site, ir):
        if self._is_source_call(site, ir):
            return True
        for res in self.project.resolve(site, ir):
            if isinstance(res, Target) and res.ir is not None:
                if self.returns_taint.get(id(res.ir)):
                    return True
        return False

    def _propagate(self, klass, ir):
        tainted = self.taint[id(ir)]
        before = set(tainted)
        cleansed = self._cleansed_names(ir)
        # Local flow: assignments and loop targets.
        for _ in range(4):
            grew = False
            effective = tainted - cleansed
            for node in _walk_skip_nested(ir.node):
                value, targets = None, []
                if isinstance(node, ast.Assign):
                    value, targets = node.value, node.targets
                elif isinstance(node, ast.AnnAssign) and node.value:
                    value, targets = node.value, [node.target]
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    value, targets = node.iter, [node.target]
                elif isinstance(node, ast.NamedExpr):
                    value, targets = node.value, [node.target]
                if value is None:
                    continue
                if not self._expr_tainted(value, ir, effective):
                    continue
                for target in targets:
                    fresh = _target_names(target) - tainted
                    if fresh:
                        tainted |= fresh
                        grew = True
            if not grew:
                break
        # Interprocedural flow: tainted arguments taint callee params;
        # codec modules and non-runtime targets are sinks, not flows.
        changed = tainted != before
        effective = tainted - cleansed
        for site in ir.calls:
            args_tainted = self._tainted_args(site, ir, effective)
            if not args_tainted:
                continue
            for res in self.project.resolve(site, ir):
                if not isinstance(res, Target) or res.ir is None:
                    continue
                if not self._in_scope(res.ir.path):
                    continue
                if self._seed_params(res, site, ir, effective):
                    changed = True
        # Return taint.
        returns = False
        for node in _walk_skip_nested(ir.node):
            if isinstance(node, ast.Return) and node.value is not None:
                if self._expr_tainted(node.value, ir, effective):
                    returns = True
                    break
        if returns and not self.returns_taint.get(id(ir)):
            self.returns_taint[id(ir)] = True
            changed = True
        return changed

    def _tainted_args(self, site, ir, effective):
        tainted = []
        for arg in list(site.node.args) + [
            kw.value for kw in site.node.keywords
        ]:
            if self._expr_tainted(arg, ir, effective):
                tainted.append(arg)
        return tainted

    def _seed_params(self, res, site, ir, effective):
        params = list(res.ir.param_names)
        offset = 1 if res.klass is not None and params[:1] == ["self"] else 0
        callee_taint = self.taint.setdefault(id(res.ir), set())
        changed = False
        for index, arg in enumerate(site.node.args):
            slot = index + offset
            if slot >= len(params):
                break
            if self._expr_tainted(arg, ir, effective):
                if params[slot] not in callee_taint:
                    callee_taint.add(params[slot])
                    changed = True
        for keyword in site.node.keywords:
            if keyword.arg in params and self._expr_tainted(
                keyword.value, ir, effective
            ):
                if keyword.arg not in callee_taint:
                    callee_taint.add(keyword.arg)
                    changed = True
        return changed

    # -- Sinks (DVS020) ------------------------------------------------

    def _check_sinks(self, klass, ir):
        effective = self._effective(ir)
        if not effective:
            return
        for site in ir.calls:
            self._check_boundary_sink(site, ir, effective)
            self._check_delay_sink(site, ir, effective)
            self._check_key_mutator_sink(site, ir, effective)
        for node in _walk_skip_nested(ir.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._check_key_store_sink(target, ir, effective)

    def _check_boundary_sink(self, site, ir, effective):
        if self._is_validator(site):
            return
        args = self._tainted_args(site, ir, effective)
        if not args:
            return
        for res in self.project.resolve(site, ir):
            if not isinstance(res, Target) or res.ir is None:
                continue
            if self.config.is_runtime_path(res.ir.path):
                continue
            names = sorted(
                node.id
                for arg in args
                for node in ast.walk(arg)
                if isinstance(node, ast.Name) and node.id in effective
            )
            self._flag(
                "DVS020", site.node, ir,
                "wire-tainted value{0} {1} passed into the hosted "
                "automaton via {2}.{3}() without a registered "
                "validator; any TCP client controls these bytes".format(
                    "s" if len(names) != 1 else "",
                    "/".join(names) or "(expression)",
                    res.klass or "<module>", res.name,
                ),
            )
            return

    def _check_delay_sink(self, site, ir, effective):
        if site.callee not in _DELAY_SINKS:
            return
        resolutions = self.project.resolve(site, ir)
        if not any(
            isinstance(res, LoopCall) and res.method in _DELAY_SINKS
            for res in resolutions
        ):
            return
        if site.node.args and self._expr_tainted(
            site.node.args[0], ir, effective
        ):
            self._flag(
                "DVS020", site.node, ir,
                "wire-tainted delay passed to {0}(): a forged frame "
                "schedules work arbitrarily far in the future; clamp "
                "or validate the value first".format(site.callee),
            )

    def _check_key_mutator_sink(self, site, ir, effective):
        if site.callee not in ("add", "setdefault"):
            return
        if len(site.chain) < 2:
            return
        if site.node.args and self._expr_tainted(
            site.node.args[0], ir, effective
        ):
            self._flag(
                "DVS020", site.node, ir,
                "wire-tainted value used as a {0}() key on {1}: forged "
                "frames choose the key space; validate the value "
                "first".format(site.callee, site.chain[0]),
            )

    def _check_key_store_sink(self, target, ir, effective):
        if not isinstance(target, ast.Subscript):
            return
        if self._expr_tainted(target.slice, ir, effective):
            self._flag(
                "DVS020", target, ir,
                "wire-tainted value used as a subscript key: forged "
                "frames choose the key space; validate the value "
                "first",
            )

    # -- Unbounded growth (DVS021) -------------------------------------

    def _check_unbounded_growth(self):
        closure = self._recv_closure()
        flagged = set()
        growth = []
        for klass, ir in self._functions:
            if id(ir) not in closure:
                continue
            owner = klass
            for site in ir.calls:
                if (
                    site.root == "self"
                    and len(site.chain) == 2
                    and site.chain[1] in _GROWTH_METHODS
                    and owner is not None
                ):
                    growth.append(
                        (owner, site.chain[0], ir, site.node)
                    )
            for node in _walk_skip_nested(ir.node):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if not isinstance(target, ast.Subscript):
                        continue
                    root, chain = receiver_chain(target.value)
                    if root == "self" and len(chain) == 1 and (
                        owner is not None
                    ):
                        growth.append((owner, chain[0], ir, node))
        for owner, attr, ir, node in growth:
            if (owner, attr) in flagged:
                continue
            if self._is_bounded(owner, attr):
                continue
            flagged.add((owner, attr))
            self._flag(
                "DVS021", node, ir,
                "self.{0} grows on the receive path with no prune, "
                "pop or bounded construction anywhere in {1}: every "
                "received frame can enlarge it forever".format(
                    attr, owner
                ),
            )

    def _recv_closure(self):
        """ids of functions reachable from a decode entry point."""
        seeds = []
        for klass, ir in self._functions:
            if any(
                self._is_source_call(site, ir) for site in ir.calls
            ):
                seeds.append((klass, ir))
        visited = set()
        stack = list(seeds)
        while stack:
            klass, ir = stack.pop()
            if id(ir) in visited:
                continue
            visited.add(id(ir))
            for inner in ir.nested.values():
                stack.append((klass, inner))
            for site in ir.calls:
                for res in self.project.resolve(site, ir):
                    if isinstance(res, Target) and res.ir is not None:
                        if self._in_scope(res.ir.path):
                            stack.append((res.klass or klass, res.ir))
        return visited

    def _is_bounded(self, owner, attr):
        cls = self.project.classes.get(owner)
        if cls is None:
            return True
        for ir in cls.methods.values():
            irs = [ir] + list(ir.nested.values())
            for func in irs:
                for site in func.calls:
                    if (
                        site.root == "self"
                        and len(site.chain) == 2
                        and site.chain[0] == attr
                        and site.chain[1] in _SHRINK_METHODS
                    ):
                        return True
                for node in _walk_skip_nested(func.node):
                    if isinstance(node, ast.Delete):
                        for target in node.targets:
                            if self._deletes_attr(target, attr):
                                return True
                    if isinstance(node, ast.Assign):
                        if self._bounded_assign(node, func, attr):
                            return True
        return False

    @staticmethod
    def _deletes_attr(target, attr):
        if not isinstance(target, ast.Subscript):
            return False
        root, chain = receiver_chain(target.value)
        return root == "self" and chain == (attr,)

    def _bounded_assign(self, node, ir, attr):
        assigns_attr = False
        for target in node.targets:
            root, chain = receiver_chain(target)
            if root == "self" and chain == (attr,):
                assigns_attr = True
        if not assigns_attr:
            return False
        value = node.value
        if isinstance(value, ast.Call):
            for keyword in value.keywords:
                if keyword.arg in _BOUNDED_KWARGS:
                    return True
        # Self-truncation: ``self.x = self.x[-n:]``.
        for sub in ast.walk(value):
            if isinstance(sub, ast.Subscript) and isinstance(
                sub.slice, ast.Slice
            ):
                root, chain = receiver_chain(sub.value)
                if root == "self" and chain == (attr,):
                    return True
        return False

    # -- Findings ------------------------------------------------------

    def _flag(self, rule, node, ir, message):
        if not self.config.enabled(rule):
            return
        self.findings.append(Finding(
            rule=rule, path=ir.path, line=node.lineno,
            col=node.col_offset, message=message,
        ))


def run_pass(model, config):
    """All pass-8 findings over the model."""
    if not (config.enabled("DVS020") or config.enabled("DVS021")):
        return []
    if not any(
        config.is_runtime_path(module.path) for module in model.modules
    ):
        return []
    return _TaintAnalysis(model, config).run()
