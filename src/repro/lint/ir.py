"""The analysis IR: per-function control-flow graphs and summaries.

This is the first layer of the interprocedural engine (DESIGN.md
section 10).  Every function definition in the scanned tree is lowered
to a :class:`FunctionIR`:

- a :class:`CFG` of basic blocks over the statement list, so passes can
  reason about reachability (statements after an unconditional
  ``return``/``raise``/``continue``/``break`` are dead and produce no
  facts);
- an *access summary*: every attribute read, rebind and in-place
  mutation on a chain rooted at a parameter or local name
  (``self._nodes[pid] = node`` is a mutation of ``self._nodes``);
- a *call summary*: every call site with its receiver chain
  (``self._loop.call_soon_threadsafe`` -> root ``self``, chain
  ``('_loop', 'call_soon_threadsafe')``), resolved later against the
  project call graph;
- the flow-insensitive local environment (last assignment to each
  local name, including walrus targets), which the call graph uses to
  type locals like ``node = self._build_node(...)``.

The IR is deliberately syntactic: it extracts *facts* once per
function, and the call graph (:mod:`repro.lint.callgraph`) gives those
facts interprocedural meaning.
"""

import ast
from dataclasses import dataclass, field

from repro.lint.purity import MUTATOR_METHODS

#: Statement types that terminate a basic block unconditionally.
_TERMINATORS = (ast.Return, ast.Raise, ast.Break, ast.Continue)


@dataclass
class BasicBlock:
    """A maximal straight-line statement run with its successor edges."""

    index: int
    statements: list = field(default_factory=list)
    successors: list = field(default_factory=list)

    def add_edge(self, other):
        if other.index not in self.successors:
            self.successors.append(other.index)


class CFG:
    """The control-flow graph of one function body.

    Block 0 is the entry; ``exit_block`` is a distinguished empty block
    every completed path reaches.  The builder covers the structured
    statements the codebase uses (``if``/``while``/``for``/``try``/
    ``with``/``match``-free); anything unmodelled degrades safely to
    "falls through", never to a crash.
    """

    def __init__(self):
        self.blocks = []
        #: ``(src index, dst index) -> (test expr, sense)`` for edges
        #: taken only when a branch condition holds (``sense=True``) or
        #: fails (``sense=False``).  Dataflow analyses refine facts
        #: along these edges; unconditional edges are simply absent.
        self.edge_conditions = {}
        self.entry = self._new_block()
        self.exit_block = self._new_block()

    def _new_block(self):
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block

    def reachable(self):
        """Indices of blocks reachable from the entry."""
        seen = set()
        stack = [self.entry.index]
        while stack:
            index = stack.pop()
            if index in seen:
                continue
            seen.add(index)
            stack.extend(self.blocks[index].successors)
        return seen

    def reachable_statements(self):
        """Identity set of the statement nodes on live paths."""
        live = set()
        for index in self.reachable():
            for stmt in self.blocks[index].statements:
                live.add(id(stmt))
        return live


def build_cfg(func):
    """Lower ``func`` (a FunctionDef/AsyncFunctionDef) to a :class:`CFG`."""
    cfg = CFG()

    def lower(statements, current, loop_targets):
        """Lower a statement list starting in ``current``; return the
        block control falls out of, or ``None`` if no path falls
        through.  ``loop_targets`` is ``(head, after)`` of the nearest
        enclosing loop for break/continue edges."""
        for stmt in statements:
            if current is None:
                # Dead statements still get a block (unreachable from
                # the entry), so summaries can ignore them.
                current = cfg._new_block()
            current.statements.append(stmt)
            if isinstance(stmt, ast.If):
                then_block = cfg._new_block()
                current.add_edge(then_block)
                cfg.edge_conditions[
                    (current.index, then_block.index)
                ] = (stmt.test, True)
                then_out = lower(stmt.body, then_block, loop_targets)
                # The false path always gets its own (possibly empty)
                # block, so the condition can be attached to a distinct
                # edge even without an ``else``.
                else_block = cfg._new_block()
                current.add_edge(else_block)
                cfg.edge_conditions[
                    (current.index, else_block.index)
                ] = (stmt.test, False)
                if stmt.orelse:
                    else_out = lower(stmt.orelse, else_block, loop_targets)
                else:
                    else_out = else_block
                after = cfg._new_block()
                outs = [b for b in (then_out, else_out) if b is not None]
                if not outs:
                    current = None
                    continue
                for out in outs:
                    out.add_edge(after)
                current = after
            elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                head = cfg._new_block()
                current.add_edge(head)
                after = cfg._new_block()
                head.add_edge(after)  # zero-iteration / condition false
                body = cfg._new_block()
                head.add_edge(body)
                if isinstance(stmt, ast.While):
                    cfg.edge_conditions[
                        (head.index, body.index)
                    ] = (stmt.test, True)
                    cfg.edge_conditions[
                        (head.index, after.index)
                    ] = (stmt.test, False)
                body_out = lower(stmt.body, body, (head, after))
                if body_out is not None:
                    body_out.add_edge(head)
                if stmt.orelse:
                    else_out = lower(stmt.orelse, after, loop_targets)
                    current = else_out
                else:
                    current = after
            elif isinstance(stmt, ast.Try):
                body = cfg._new_block()
                entry = current
                current.add_edge(body)
                body_out = lower(stmt.body, body, loop_targets)
                after = cfg._new_block()
                outs = []
                if body_out is not None:
                    outs.append(body_out)
                for handler in stmt.handlers:
                    hblock = cfg._new_block()
                    # Any statement of the body may raise into the
                    # handler -- possibly before establishing anything
                    # -- so the edge leaves the pre-try block: facts
                    # proven inside the body never reach the handler.
                    entry.add_edge(hblock)
                    hout = lower(handler.body, hblock, loop_targets)
                    if hout is not None:
                        outs.append(hout)
                if stmt.orelse and body_out is not None:
                    outs.remove(body_out)
                    else_out = lower(stmt.orelse, body_out, loop_targets)
                    if else_out is not None:
                        outs.append(else_out)
                if stmt.finalbody:
                    final = cfg._new_block()
                    entry.add_edge(final)  # raising path runs finally too
                    for out in outs:
                        out.add_edge(final)
                    final_out = lower(stmt.finalbody, final, loop_targets)
                    current = final_out
                else:
                    if not outs:
                        current = None
                        continue
                    for out in outs:
                        out.add_edge(after)
                    current = after
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                body = cfg._new_block()
                current.add_edge(body)
                current = lower(stmt.body, body, loop_targets)
            elif isinstance(stmt, _TERMINATORS):
                if isinstance(stmt, ast.Break) and loop_targets:
                    current.add_edge(loop_targets[1])
                elif isinstance(stmt, ast.Continue) and loop_targets:
                    current.add_edge(loop_targets[0])
                else:
                    current.add_edge(cfg.exit_block)
                current = None
        return current

    out = lower(func.body, cfg.entry, None)
    if out is not None:
        out.add_edge(cfg.exit_block)
    return cfg


@dataclass(frozen=True)
class Access:
    """One attribute access on a chain rooted at a tracked name.

    ``kind`` is ``"read"`` (Load of ``root.attr``), ``"write"`` (rebind
    of ``root.attr``) or ``"mutate"`` (in-place change of the object
    held in ``root.attr``: subscript store, augmented assignment
    through it, a mutator method call, ``del``).
    """

    root: str
    attr: str
    kind: str
    line: int
    col: int


@dataclass(frozen=True)
class CallSite:
    """One call expression, described by its receiver chain.

    ``f(...)``                  -> root=None,  chain=("f",)
    ``self.m(...)``             -> root="self", chain=("m",)
    ``self._nodes[p].to.b(...)``-> root="self", chain=("_nodes","to","b")
    ``asyncio.run(...)``        -> root="asyncio", chain=("run",)

    Subscripts inside the chain are folded away (calling through a
    container element resolves against the container attribute's
    element classes).  ``node`` is kept for location and argument
    inspection.
    """

    root: str
    chain: tuple
    node: ast.Call

    @property
    def callee(self):
        return self.chain[-1] if self.chain else None


def receiver_chain(node):
    """``(root, chain)`` for an attribute/subscript chain, or
    ``(None, ())`` when the chain is rooted in a call or literal."""
    parts = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        else:
            break
    if isinstance(node, ast.Name):
        return node.id, tuple(reversed(parts))
    return None, ()


def _chain_base(node):
    """For a store/delete target chain, the ``(root, first_attr,
    depth)`` triple: ``self.x[k].y`` -> ("self", "x", 2)."""
    depth = 0
    first = None
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            first = node.attr
            depth += 1
        node = node.value
    if isinstance(node, ast.Name) and first is not None:
        return node.id, first, depth
    if isinstance(node, ast.Name):
        return node.id, None, 0
    return None, None, 0


class FunctionIR:
    """Facts about one function definition, extracted in a single walk."""

    def __init__(self, node, path, klass=None, qualname=None):
        self.node = node
        self.path = path
        self.klass = klass
        self.name = node.name
        self.qualname = qualname or node.name
        self.is_async = isinstance(node, ast.AsyncFunctionDef)
        self.lineno = node.lineno
        self.param_names = tuple(
            a.arg
            for a in (
                node.args.posonlyargs + node.args.args
                + node.args.kwonlyargs
            )
        )
        self.accesses = []
        self.calls = []
        #: Local name -> last assigned expression (flow-insensitive).
        self.local_values = {}
        #: Nested function name -> FunctionIR.
        self.nested = {}
        self._cfg = None
        self._extract()

    @property
    def cfg(self):
        if self._cfg is None:
            self._cfg = build_cfg(self.node)
        return self._cfg

    # -- Extraction ----------------------------------------------------

    def _extract(self):
        live = self.cfg.reachable_statements()

        def statement_live(stmt):
            # Expression-level nodes inherit liveness from statements;
            # only top-level dead statements are skipped, which is all
            # the precision the rules need.
            return not isinstance(stmt, ast.stmt) or id(stmt) in live

        def walk(node):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (
                    ast.FunctionDef, ast.AsyncFunctionDef
                )):
                    self.nested[child.name] = FunctionIR(
                        child, self.path, klass=self.klass,
                        qualname=self.qualname + "." + child.name,
                    )
                    continue
                if isinstance(child, ast.Lambda):
                    # A lambda body runs wherever the lambda is called,
                    # never here; its accesses are not this function's.
                    continue
                if not statement_live(child):
                    continue
                self._extract_node(child)
                walk(child)

        for stmt in self.node.body:
            if id(stmt) not in live:
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.nested[stmt.name] = FunctionIR(
                    stmt, self.path, klass=self.klass,
                    qualname=self.qualname + "." + stmt.name,
                )
                continue
            self._extract_node(stmt)
            walk(stmt)

    def _record(self, root, attr, kind, node):
        self.accesses.append(Access(
            root=root, attr=attr, kind=kind,
            line=node.lineno, col=node.col_offset,
        ))

    def _record_target(self, target, value_node):
        root, attr, depth = _chain_base(target)
        if root is None:
            return
        if attr is None:
            # Plain local rebinding: remember the value expression.
            if value_node is not None:
                self.local_values[root] = value_node
            return
        if depth == 1 and isinstance(target, ast.Attribute):
            self._record(root, attr, "write", target)
        else:
            # Store through a subscript or a deeper attribute mutates
            # the object held in the first hop.
            self._record(root, attr, "mutate", target)

    def _extract_node(self, node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, (ast.Tuple, ast.List)):
                    for elt in target.elts:
                        self._record_target(elt, None)
                else:
                    self._record_target(target, node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._record_target(node.target, node.value)
        elif isinstance(node, ast.AugAssign):
            self._record_target(node.target, None)
            # ``self.x += 1`` re-binds after reading; record the read
            # side too so a pure counter bump counts as read+write.
            root, attr, depth = _chain_base(node.target)
            if root is not None and attr is not None and depth == 1:
                self._record(root, attr, "read", node.target)
        elif isinstance(node, ast.NamedExpr):
            self._record_target(node.target, node.value)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                root, attr, depth = _chain_base(target)
                if root is not None and attr is not None:
                    kind = "write" if (
                        depth == 1 and isinstance(target, ast.Attribute)
                    ) else "mutate"
                    self._record(root, attr, kind, target)
        elif isinstance(node, ast.Attribute):
            if isinstance(node.ctx, ast.Load):
                root, attr, depth = _chain_base(node)
                # Only the innermost hop reads the tracked attribute;
                # outer hops read the object it yielded.
                if root is not None and isinstance(node.value, ast.Name):
                    self._record(root, node.attr, "read", node)
        elif isinstance(node, ast.Subscript):
            if isinstance(node.ctx, ast.Load) and isinstance(
                node.value, ast.Attribute
            ) and isinstance(node.value.value, ast.Name):
                # ``root.attr[k]`` reads attr (already recorded when the
                # Attribute node is visited); nothing extra.
                pass
        elif isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name):
                # Bare-name call: root None, single-hop chain, so the
                # resolver tries nested functions, module functions and
                # constructors before imports.
                self.calls.append(
                    CallSite(None, (node.func.id,), node)
                )
                return
            root, chain = receiver_chain(node.func)
            if root is not None:
                self.calls.append(CallSite(root, chain, node))
                if (
                    len(chain) >= 2
                    and chain[-1] in MUTATOR_METHODS
                    and isinstance(node.func, ast.Attribute)
                ):
                    # ``self.x.append(v)`` mutates the object in x.
                    self._record(root, chain[0], "mutate", node)

    # -- Queries -------------------------------------------------------

    def attr_accesses(self, root):
        """Accesses whose chain is rooted at ``root`` (e.g. "self")."""
        return [a for a in self.accesses if a.root == root]

    def assigned_attrs(self, root="self"):
        """Attr name -> list of assigned value expressions for direct
        ``root.attr = value`` statements (used for points-to)."""
        out = {}
        for stmt in ast.walk(self.node):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            value = stmt.value
            if value is None:
                continue
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == root
                ):
                    out.setdefault(target.attr, []).append(value)
                elif (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Attribute)
                    and isinstance(target.value.value, ast.Name)
                    and target.value.value.id == root
                ):
                    # ``self.attr[k] = value``: element assignment; the
                    # element class matters for calls through the
                    # container.
                    out.setdefault(target.value.attr, []).append(value)
        return out
