"""Configuration for ``repro lint``.

The defaults encode this repository's layout; tests override them to
point the linter at fixture trees.
"""

import fnmatch
from dataclasses import dataclass, field
from types import MappingProxyType

from repro.lint.rules import RULES

#: Module paths (posix, matched with fnmatch against the tail of the
#: scanned path) whose *entire* code is an ordering-sensitive event
#: path for DVS008 -- beyond the pre_/eff_/cand_ methods that are
#: always in scope.  These are the modules that drive the simulation:
#: the network, the event queue, the schedulers and the runtime stack.
DEFAULT_EVENT_PATH_GLOBS = (
    "*/net/*.py",
    "*/ioa/scheduler.py",
    "*/ioa/execution.py",
    "*/ioa/model_check.py",
    "*/gcs/*.py",
)

#: Per-package rule exclusions: rule id -> path globs where the rule is
#: configured off.  Unlike a ``# lint: ignore`` pragma, which grants a
#: single line an exception, an entry here states a *policy*: the rule's
#: premise does not apply to that package.  The deliverable default is
#: the determinism pair on the live runtime: DVS006 (wall clock) and
#: DVS007 (entropy) exist to protect seed-replay of the *simulated*
#: world, while :mod:`repro.runtime` is the real-transport edge whose
#: whole point is wall-clock time and whose backoff jitter is
#: legitimately unseeded (DESIGN.md §9).  Everything the runtime hosts
#: (the gcs/dvs/to layers) stays fully in scope.
DEFAULT_RULE_EXCLUDES = MappingProxyType({
    "DVS006": ("*/repro/runtime/*.py",),
    "DVS007": ("*/repro/runtime/*.py",),
})


def _match(path, pattern):
    posix = str(path).replace("\\", "/")
    return (
        fnmatch.fnmatch(posix, pattern)
        or fnmatch.fnmatch("/" + posix, pattern)
    )


@dataclass
class LintConfig:
    """What to check and where.

    ``select`` -- rule ids to enable (default: all registered rules).
    ``event_path_globs`` -- module patterns treated as ordering-
    sensitive event paths for DVS008.
    ``rule_excludes`` -- mapping of rule id to path globs where that
    rule is configured off (package-scoped policy, as opposed to the
    line-scoped ``# lint: ignore`` pragma).
    """

    select: frozenset = field(
        default_factory=lambda: frozenset(RULES)
    )
    event_path_globs: tuple = DEFAULT_EVENT_PATH_GLOBS
    rule_excludes: object = field(
        default_factory=lambda: DEFAULT_RULE_EXCLUDES
    )

    def __post_init__(self):
        self.select = frozenset(self.select)
        unknown = self.select - set(RULES)
        if unknown:
            raise ValueError(
                "unknown rule id(s): {0}".format(", ".join(sorted(unknown)))
            )
        self.rule_excludes = MappingProxyType({
            rule: tuple(globs)
            for rule, globs in dict(self.rule_excludes).items()
        })
        unknown = set(self.rule_excludes) - set(RULES)
        if unknown:
            raise ValueError(
                "rule_excludes names unknown rule id(s): {0}".format(
                    ", ".join(sorted(unknown))
                )
            )

    def enabled(self, rule_id):
        return rule_id in self.select

    def excluded(self, rule_id, path):
        """Whether ``rule_id`` is configured off for the module at
        ``path``."""
        return any(
            _match(path, pattern)
            for pattern in self.rule_excludes.get(rule_id, ())
        )

    def is_event_path(self, path):
        """Whether the whole module at ``path`` is an event path."""
        return any(
            _match(path, pattern) for pattern in self.event_path_globs
        )
