"""Configuration for ``repro lint``.

The defaults encode this repository's layout; tests override them to
point the linter at fixture trees.
"""

import fnmatch
from dataclasses import dataclass, field
from types import MappingProxyType

from repro.lint.rules import RULES

#: Module paths (posix, matched with fnmatch against the tail of the
#: scanned path) whose *entire* code is an ordering-sensitive event
#: path for DVS008 -- beyond the pre_/eff_/cand_ methods that are
#: always in scope.  These are the modules that drive the simulation:
#: the network, the event queue, the schedulers and the runtime stack.
DEFAULT_EVENT_PATH_GLOBS = (
    "*/net/*.py",
    "*/ioa/scheduler.py",
    "*/ioa/execution.py",
    "*/ioa/model_check.py",
    "*/gcs/*.py",
)

#: Per-package rule exclusions: rule id -> path globs where the rule is
#: configured off.  Unlike a ``# lint: ignore`` pragma, which grants a
#: single line an exception, an entry here states a *policy*: the rule's
#: premise does not apply to that package.  The default is now empty:
#: the former blanket exclusion of DVS006/DVS007 for ``repro/runtime``
#: was replaced by line-scoped pragmas at the handful of sites that
#: legitimately touch the wall clock or unseeded entropy, so every rule
#: applies everywhere unless a specific line argues otherwise.
DEFAULT_RULE_EXCLUDES = MappingProxyType({})

#: Modules subject to the thread-boundary race analysis (DVS012/013):
#: the live runtime package, where a synchronous facade and a
#: background event loop share one process.
DEFAULT_RUNTIME_GLOBS = (
    "*/repro/runtime/*.py",
)

#: The module defining the wire codec registry (``WIRE_TYPES`` /
#: ``WIRE_SCHEMA``) that DVS015 checks for drift.
DEFAULT_CODEC_GLOBS = (
    "*/repro/runtime/codec.py",
)

#: Modules whose frozen top-level dataclasses are stack messages that
#: must be covered by the codec registry (DVS015 coverage direction).
DEFAULT_WIRE_MESSAGE_GLOBS = (
    "*/repro/core/messages.py",
    "*/repro/core/views.py",
    "*/repro/core/viewids.py",
    "*/repro/gcs/messages.py",
    "*/repro/to/summaries.py",
    "*/repro/cb/messages.py",
)

#: Callable names the taint pass (DVS020) accepts as validators.  A
#: name matches by exact equality or prefix, so the defaults cover
#: ``validate_message``, ``_validate_inbound`` and the like.  Calling a
#: validator over a tainted name cleanses it for the whole function.
DEFAULT_TAINT_VALIDATORS = (
    "validate_",
    "_validate",
)

#: Modules hosting spec automata for the spec-conformance pass
#: (DVS022/DVS027).  An automaton also counts as a spec when its class
#: name ends in :attr:`LintConfig.spec_class_suffix`, so single-file
#: fixtures can pair a spec and an impl.
DEFAULT_SPEC_GLOBS = (
    "*/spec.py",
)

#: Fan-out demultiplexer classes whose ports follow the claim/bind
#: lifecycle checked by DVS023.
DEFAULT_FANOUT_CLASSES = (
    "DvsFanout",
)

#: Methods that *drive* a fanout port (DVS023): calling one on a port
#: that is not yet bound to a tower bypasses the registration gate.
DEFAULT_PORT_DRIVE_METHODS = (
    "gpsnd",
    "register",
)

#: Method names that close a handle (DVS024).  Methods whose
#: interprocedural summary shows they unconditionally call one of
#: these on ``self`` count as closers too.
DEFAULT_HANDLE_CLOSERS = (
    "close",
    "stop",
    "leave",
)

#: Method names that send on a handle (DVS024's sinks).
DEFAULT_HANDLE_SENDERS = (
    "send",
    "send_frame",
    "bcast",
    "gpsnd",
    "cbcast",
)

#: Method names that re-open a handle, returning it to unknown state
#: (DVS024 stops tracking after one of these).
DEFAULT_HANDLE_REOPENERS = (
    "start",
    "restart",
    "open",
    "connect",
    "reopen",
)

#: Observability attributes a harness must arm *before* ``start()``
#: (DVS025): assigning one of these on a started harness misses the
#: formation events.
DEFAULT_HARNESS_ARM_ATTRS = (
    "monitor",
    "nemesis",
    "recorder",
    "tracer",
    "record",
    "obs",
    "wiretap",
)

#: Workload methods that must run *after* ``start()`` (DVS025).
DEFAULT_HARNESS_DRIVE_METHODS = (
    "bcast",
    "cbcast",
    "run",
    "settle",
    "wait_formation",
    "wait_until",
    "call_app",
    "call_cb_app",
    "kill",
    "restart",
)

#: Dotted modules whose constructors produce view-scoped clock values
#: (DVS026): attributes fed from these must be reset by the class's
#: ``on_*newview`` handler.
DEFAULT_CLOCK_MODULES = (
    "repro.cb.clocks",
)


def _match(path, pattern):
    posix = str(path).replace("\\", "/")
    return (
        fnmatch.fnmatch(posix, pattern)
        or fnmatch.fnmatch("/" + posix, pattern)
    )


@dataclass
class LintConfig:
    """What to check and where.

    ``select`` -- rule ids to enable (default: all registered rules).
    ``event_path_globs`` -- module patterns treated as ordering-
    sensitive event paths for DVS008.
    ``rule_excludes`` -- mapping of rule id to path globs where that
    rule is configured off (package-scoped policy, as opposed to the
    line-scoped ``# lint: ignore`` pragma).
    ``runtime_globs`` -- modules analysed by the thread-boundary race
    pass (DVS012/013).
    ``codec_globs`` -- the module(s) holding the wire registry checked
    by DVS015.
    ``wire_message_globs`` -- modules whose frozen dataclasses must be
    covered by the wire registry.
    ``taint_validators`` -- callable name prefixes/exact names the
    taint pass accepts as wire-input validators (DVS020).
    ``spec_globs`` / ``spec_class_suffix`` -- which automata are spec
    automata for the spec-conformance pass (DVS022/DVS027).
    ``fanout_classes`` / ``port_drive_methods`` -- the fanout port
    lifecycle vocabulary for DVS023.
    ``handle_closers`` / ``handle_senders`` / ``handle_reopeners`` --
    the handle lifecycle vocabulary for DVS024.
    ``harness_arm_attrs`` / ``harness_drive_methods`` -- the harness
    lifecycle vocabulary for DVS025.
    ``clock_modules`` -- dotted modules producing view-scoped clock
    values for DVS026.
    """

    select: frozenset = field(
        default_factory=lambda: frozenset(RULES)
    )
    event_path_globs: tuple = DEFAULT_EVENT_PATH_GLOBS
    rule_excludes: object = field(
        default_factory=lambda: DEFAULT_RULE_EXCLUDES
    )
    runtime_globs: tuple = DEFAULT_RUNTIME_GLOBS
    codec_globs: tuple = DEFAULT_CODEC_GLOBS
    wire_message_globs: tuple = DEFAULT_WIRE_MESSAGE_GLOBS
    taint_validators: tuple = DEFAULT_TAINT_VALIDATORS
    spec_globs: tuple = DEFAULT_SPEC_GLOBS
    spec_class_suffix: str = "Spec"
    fanout_classes: tuple = DEFAULT_FANOUT_CLASSES
    port_drive_methods: tuple = DEFAULT_PORT_DRIVE_METHODS
    handle_closers: tuple = DEFAULT_HANDLE_CLOSERS
    handle_senders: tuple = DEFAULT_HANDLE_SENDERS
    handle_reopeners: tuple = DEFAULT_HANDLE_REOPENERS
    harness_arm_attrs: tuple = DEFAULT_HARNESS_ARM_ATTRS
    harness_drive_methods: tuple = DEFAULT_HARNESS_DRIVE_METHODS
    clock_modules: tuple = DEFAULT_CLOCK_MODULES

    def __post_init__(self):
        self.select = frozenset(self.select)
        self.runtime_globs = tuple(self.runtime_globs)
        self.codec_globs = tuple(self.codec_globs)
        self.wire_message_globs = tuple(self.wire_message_globs)
        self.taint_validators = tuple(self.taint_validators)
        self.spec_globs = tuple(self.spec_globs)
        self.fanout_classes = tuple(self.fanout_classes)
        self.port_drive_methods = tuple(self.port_drive_methods)
        self.handle_closers = tuple(self.handle_closers)
        self.handle_senders = tuple(self.handle_senders)
        self.handle_reopeners = tuple(self.handle_reopeners)
        self.harness_arm_attrs = tuple(self.harness_arm_attrs)
        self.harness_drive_methods = tuple(self.harness_drive_methods)
        self.clock_modules = tuple(self.clock_modules)
        unknown = self.select - set(RULES)
        if unknown:
            raise ValueError(
                "unknown rule id(s): {0}".format(", ".join(sorted(unknown)))
            )
        self.rule_excludes = MappingProxyType({
            rule: tuple(globs)
            for rule, globs in dict(self.rule_excludes).items()
        })
        unknown = set(self.rule_excludes) - set(RULES)
        if unknown:
            raise ValueError(
                "rule_excludes names unknown rule id(s): {0}".format(
                    ", ".join(sorted(unknown))
                )
            )

    def enabled(self, rule_id):
        return rule_id in self.select

    def excluded(self, rule_id, path):
        """Whether ``rule_id`` is configured off for the module at
        ``path``."""
        return any(
            _match(path, pattern)
            for pattern in self.rule_excludes.get(rule_id, ())
        )

    def is_event_path(self, path):
        """Whether the whole module at ``path`` is an event path."""
        return any(
            _match(path, pattern) for pattern in self.event_path_globs
        )

    def is_runtime_path(self, path):
        """Whether the module at ``path`` is in scope for the
        thread-boundary race analysis."""
        return any(
            _match(path, pattern) for pattern in self.runtime_globs
        )

    def is_codec_path(self, path):
        """Whether the module at ``path`` hosts the wire registry."""
        return any(
            _match(path, pattern) for pattern in self.codec_globs
        )

    def is_wire_message_path(self, path):
        """Whether the module at ``path`` defines stack messages that
        the wire registry must cover."""
        return any(
            _match(path, pattern)
            for pattern in self.wire_message_globs
        )

    def is_spec_path(self, path):
        """Whether the module at ``path`` hosts spec automata for the
        spec-conformance pass."""
        return any(
            _match(path, pattern) for pattern in self.spec_globs
        )
