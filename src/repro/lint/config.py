"""Configuration for ``repro lint``.

The defaults encode this repository's layout; tests override them to
point the linter at fixture trees.
"""

import fnmatch
from dataclasses import dataclass, field

from repro.lint.rules import RULES

#: Module paths (posix, matched with fnmatch against the tail of the
#: scanned path) whose *entire* code is an ordering-sensitive event
#: path for DVS008 -- beyond the pre_/eff_/cand_ methods that are
#: always in scope.  These are the modules that drive the simulation:
#: the network, the event queue, the schedulers and the runtime stack.
DEFAULT_EVENT_PATH_GLOBS = (
    "*/net/*.py",
    "*/ioa/scheduler.py",
    "*/ioa/execution.py",
    "*/ioa/model_check.py",
    "*/gcs/*.py",
)


@dataclass
class LintConfig:
    """What to check and where.

    ``select`` -- rule ids to enable (default: all registered rules).
    ``event_path_globs`` -- module patterns treated as ordering-
    sensitive event paths for DVS008.
    """

    select: frozenset = field(
        default_factory=lambda: frozenset(RULES)
    )
    event_path_globs: tuple = DEFAULT_EVENT_PATH_GLOBS

    def __post_init__(self):
        self.select = frozenset(self.select)
        unknown = self.select - set(RULES)
        if unknown:
            raise ValueError(
                "unknown rule id(s): {0}".format(", ".join(sorted(unknown)))
            )

    def enabled(self, rule_id):
        return rule_id in self.select

    def is_event_path(self, path):
        """Whether the whole module at ``path`` is an event path."""
        posix = str(path).replace("\\", "/")
        return any(
            fnmatch.fnmatch(posix, pattern) or
            fnmatch.fnmatch("/" + posix, pattern)
            for pattern in self.event_path_globs
        )
