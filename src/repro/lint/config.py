"""Configuration for ``repro lint``.

The defaults encode this repository's layout; tests override them to
point the linter at fixture trees.
"""

import fnmatch
from dataclasses import dataclass, field
from types import MappingProxyType

from repro.lint.rules import RULES

#: Module paths (posix, matched with fnmatch against the tail of the
#: scanned path) whose *entire* code is an ordering-sensitive event
#: path for DVS008 -- beyond the pre_/eff_/cand_ methods that are
#: always in scope.  These are the modules that drive the simulation:
#: the network, the event queue, the schedulers and the runtime stack.
DEFAULT_EVENT_PATH_GLOBS = (
    "*/net/*.py",
    "*/ioa/scheduler.py",
    "*/ioa/execution.py",
    "*/ioa/model_check.py",
    "*/gcs/*.py",
)

#: Per-package rule exclusions: rule id -> path globs where the rule is
#: configured off.  Unlike a ``# lint: ignore`` pragma, which grants a
#: single line an exception, an entry here states a *policy*: the rule's
#: premise does not apply to that package.  The default is now empty:
#: the former blanket exclusion of DVS006/DVS007 for ``repro/runtime``
#: was replaced by line-scoped pragmas at the handful of sites that
#: legitimately touch the wall clock or unseeded entropy, so every rule
#: applies everywhere unless a specific line argues otherwise.
DEFAULT_RULE_EXCLUDES = MappingProxyType({})

#: Modules subject to the thread-boundary race analysis (DVS012/013):
#: the live runtime package, where a synchronous facade and a
#: background event loop share one process.
DEFAULT_RUNTIME_GLOBS = (
    "*/repro/runtime/*.py",
)

#: The module defining the wire codec registry (``WIRE_TYPES`` /
#: ``WIRE_SCHEMA``) that DVS015 checks for drift.
DEFAULT_CODEC_GLOBS = (
    "*/repro/runtime/codec.py",
)

#: Modules whose frozen top-level dataclasses are stack messages that
#: must be covered by the codec registry (DVS015 coverage direction).
DEFAULT_WIRE_MESSAGE_GLOBS = (
    "*/repro/core/messages.py",
    "*/repro/core/views.py",
    "*/repro/core/viewids.py",
    "*/repro/gcs/messages.py",
    "*/repro/to/summaries.py",
    "*/repro/cb/messages.py",
)

#: Callable names the taint pass (DVS020) accepts as validators.  A
#: name matches by exact equality or prefix, so the defaults cover
#: ``validate_message``, ``_validate_inbound`` and the like.  Calling a
#: validator over a tainted name cleanses it for the whole function.
DEFAULT_TAINT_VALIDATORS = (
    "validate_",
    "_validate",
)


def _match(path, pattern):
    posix = str(path).replace("\\", "/")
    return (
        fnmatch.fnmatch(posix, pattern)
        or fnmatch.fnmatch("/" + posix, pattern)
    )


@dataclass
class LintConfig:
    """What to check and where.

    ``select`` -- rule ids to enable (default: all registered rules).
    ``event_path_globs`` -- module patterns treated as ordering-
    sensitive event paths for DVS008.
    ``rule_excludes`` -- mapping of rule id to path globs where that
    rule is configured off (package-scoped policy, as opposed to the
    line-scoped ``# lint: ignore`` pragma).
    ``runtime_globs`` -- modules analysed by the thread-boundary race
    pass (DVS012/013).
    ``codec_globs`` -- the module(s) holding the wire registry checked
    by DVS015.
    ``wire_message_globs`` -- modules whose frozen dataclasses must be
    covered by the wire registry.
    ``taint_validators`` -- callable name prefixes/exact names the
    taint pass accepts as wire-input validators (DVS020).
    """

    select: frozenset = field(
        default_factory=lambda: frozenset(RULES)
    )
    event_path_globs: tuple = DEFAULT_EVENT_PATH_GLOBS
    rule_excludes: object = field(
        default_factory=lambda: DEFAULT_RULE_EXCLUDES
    )
    runtime_globs: tuple = DEFAULT_RUNTIME_GLOBS
    codec_globs: tuple = DEFAULT_CODEC_GLOBS
    wire_message_globs: tuple = DEFAULT_WIRE_MESSAGE_GLOBS
    taint_validators: tuple = DEFAULT_TAINT_VALIDATORS

    def __post_init__(self):
        self.select = frozenset(self.select)
        self.runtime_globs = tuple(self.runtime_globs)
        self.codec_globs = tuple(self.codec_globs)
        self.wire_message_globs = tuple(self.wire_message_globs)
        self.taint_validators = tuple(self.taint_validators)
        unknown = self.select - set(RULES)
        if unknown:
            raise ValueError(
                "unknown rule id(s): {0}".format(", ".join(sorted(unknown)))
            )
        self.rule_excludes = MappingProxyType({
            rule: tuple(globs)
            for rule, globs in dict(self.rule_excludes).items()
        })
        unknown = set(self.rule_excludes) - set(RULES)
        if unknown:
            raise ValueError(
                "rule_excludes names unknown rule id(s): {0}".format(
                    ", ".join(sorted(unknown))
                )
            )

    def enabled(self, rule_id):
        return rule_id in self.select

    def excluded(self, rule_id, path):
        """Whether ``rule_id`` is configured off for the module at
        ``path``."""
        return any(
            _match(path, pattern)
            for pattern in self.rule_excludes.get(rule_id, ())
        )

    def is_event_path(self, path):
        """Whether the whole module at ``path`` is an event path."""
        return any(
            _match(path, pattern) for pattern in self.event_path_globs
        )

    def is_runtime_path(self, path):
        """Whether the module at ``path`` is in scope for the
        thread-boundary race analysis."""
        return any(
            _match(path, pattern) for pattern in self.runtime_globs
        )

    def is_codec_path(self, path):
        """Whether the module at ``path`` hosts the wire registry."""
        return any(
            _match(path, pattern) for pattern in self.codec_globs
        )

    def is_wire_message_path(self, path):
        """Whether the module at ``path`` defines stack messages that
        the wire registry must cover."""
        return any(
            _match(path, pattern)
            for pattern in self.wire_message_globs
        )
