"""Pass 7: async-hazard analysis over the interprocedural IR.

The live runtime multiplexes every layer automaton onto one asyncio
loop, so the paper's atomicity assumptions hold only between suspension
points.  This pass classifies which functions run on the event loop --
every coroutine, plus every sync function reachable from one through
the call graph and every callable handed to a loop scheduler -- and
checks four hazard classes on that closure:

DVS016  a blocking call (``time.sleep``, sync socket/file IO,
        ``subprocess``, ``Future.result()``) reachable from a
        coroutine; it stalls heartbeats and timers cluster-wide.
DVS017  ``create_task``/``ensure_future`` whose result is dropped:
        the task is garbage-collectable mid-flight and its exception
        is silently lost.
DVS018  an ``await`` between two writes to the same ``self`` attribute:
        a handler scheduled at the suspension point can observe
        half-applied layer state.
DVS019  lock/queue acquisition-order cycles across coroutines.

Soundness caveats are documented in DESIGN.md section 13: reachability
stops where the receiver is unknown (silence, never a guess), DVS018
orders writes lexically (loop back-edges are not straddled), and
``except``/``finally`` blocks are exempt from DVS018 (cleanup code
legitimately re-touches state).
"""

import ast

from repro.lint.callgraph import (
    External,
    LoopCall,
    Target,
    build_project,
)
from repro.lint.ir import receiver_chain
from repro.lint.model import dotted_name, resolve_dotted
from repro.lint.report import Finding

#: Synchronous calls that block the hosting thread.  Flagged when the
#: enclosing function is loop-reachable; the facade/caller thread may
#: use them freely (``RuntimeCluster.wait_until`` polls with
#: ``time.sleep`` by design).
_BLOCKING_EXTERNALS = frozenset({
    "time.sleep",
    "socket.create_connection",
    "socket.getaddrinfo",
    "socket.gethostbyname",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "os.system",
    "os.waitpid",
    "select.select",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
})

#: Blocking builtins called by bare name (the resolver returns nothing
#: for builtins, so they need their own table).
_BLOCKING_BUILTINS = frozenset({"open", "input"})

_TASK_FACTORIES = frozenset({"create_task", "ensure_future"})
_EXTERNAL_TASK_FACTORIES = frozenset({
    "asyncio.create_task", "asyncio.ensure_future",
})

#: Constructors whose instances participate in DVS019 ordering.
_LOCK_CTORS = frozenset({
    "asyncio.Lock", "asyncio.Semaphore", "asyncio.BoundedSemaphore",
    "asyncio.Condition",
    "threading.Lock", "threading.RLock", "threading.Semaphore",
    "threading.BoundedSemaphore", "threading.Condition",
})
_QUEUE_CTORS = frozenset({
    "asyncio.Queue", "asyncio.PriorityQueue", "asyncio.LifoQueue",
})

#: Blocking acquisition methods on locks/queues.
_ACQUIRE_METHODS = frozenset({"acquire", "get", "put"})

_HANDOFF_FACTORY = "run_coroutine_threadsafe"


def _walk_skip_nested(node):
    """Child nodes of ``node``, recursively, without descending into
    nested function definitions or lambdas (those have their own IR
    and run wherever they are called)."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (
            ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda
        )):
            continue
        yield child
        for grandchild in _walk_skip_nested(child):
            yield grandchild


def _cleanup_lines(func_node):
    """Line numbers inside ``except`` handlers and ``finally`` blocks."""
    lines = set()
    for node in ast.walk(func_node):
        if not isinstance(node, ast.Try):
            continue
        regions = list(node.handlers) + list(node.finalbody)
        for region in regions:
            end = getattr(region, "end_lineno", None) or region.lineno
            lines.update(range(region.lineno, end + 1))
    return lines


class _AsyncHazardAnalysis:
    def __init__(self, model, config):
        self.model = model
        self.config = config
        self.project = build_project(model)
        self.findings = []
        self._visited = set()
        self._modules = {m.path: m for m in model.modules}

    # -- Entry ---------------------------------------------------------

    def run(self):
        seeds = self._seeds()
        for qualname, klass, ir in seeds:
            self._walk(qualname, klass, ir)
        self._check_dropped_tasks()
        self._check_torn_writes()
        self._check_lock_cycles()
        self.findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return self.findings

    # -- Loop-side closure (DVS016) ------------------------------------

    def _runtime_irs(self):
        """``(klass, ir)`` for every function defined in a runtime
        module, including module functions and nested definitions."""
        out = []
        for (path, _name), ir in sorted(self.project.module_functions.items()):
            if self.config.is_runtime_path(path):
                out.append((None, ir))
        for name in sorted(self.project.classes):
            cls = self.project.classes[name]
            if not self.config.is_runtime_path(cls.path):
                continue
            for method in sorted(cls.methods):
                out.append((name, cls.methods[method]))
        expanded = []
        stack = list(reversed(out))
        while stack:
            klass, ir = stack.pop()
            expanded.append((klass, ir))
            for inner_name in sorted(ir.nested):
                stack.append((klass, ir.nested[inner_name]))
        return expanded

    def _seeds(self):
        """Every coroutine in a runtime module is a loop root; so is
        every callable handed to a loop scheduler from one."""
        seeds = []
        for klass, ir in self._runtime_irs():
            if ir.is_async:
                seeds.append((ir.qualname, klass, ir))
        return seeds

    def _walk(self, origin, klass, ir):
        if id(ir) in self._visited:
            return
        self._visited.add(id(ir))
        for inner in sorted(ir.nested):
            self._walk(origin, klass, ir.nested[inner])
        for site in ir.calls:
            resolutions = self.project.resolve(site, ir)
            self._check_blocking(origin, ir, site, resolutions)
            for res in resolutions:
                if isinstance(res, Target) and res.ir is not None:
                    self._walk(
                        origin, res.klass if res.klass else klass, res.ir
                    )

    def _check_blocking(self, origin, ir, site, resolutions):
        for res in resolutions:
            if isinstance(res, External) and (
                res.dotted in _BLOCKING_EXTERNALS
            ):
                self._flag(
                    "DVS016", site.node, ir,
                    "blocking call {0}() runs on the event loop "
                    "(reachable from coroutine {1}); it stalls every "
                    "timer and heartbeat hosted there".format(
                        res.dotted, origin
                    ),
                )
        if not resolutions and site.root is None and (
            site.callee in _BLOCKING_BUILTINS
        ):
            self._flag(
                "DVS016", site.node, ir,
                "blocking builtin {0}() runs on the event loop "
                "(reachable from coroutine {1}); use a thread "
                "executor for synchronous IO".format(
                    site.callee, origin
                ),
            )
        if (
            site.callee == "result"
            and site.root is not None
            and len(site.chain) == 1
            and self._is_threadsafe_future(site.root, ir)
        ):
            self._flag(
                "DVS016", site.node, ir,
                "{0}.result() blocks the loop thread waiting on the "
                "loop itself (reachable from coroutine {1}); await "
                "the coroutine instead".format(site.root, origin),
            )

    def _is_threadsafe_future(self, name, ir):
        value = ir.local_values.get(name)
        if not isinstance(value, ast.Call):
            return False
        dotted = dotted_name(value.func)
        if dotted is None:
            return False
        return dotted.rpartition(".")[2] == _HANDOFF_FACTORY

    # -- Dropped tasks (DVS017) ----------------------------------------

    def _check_dropped_tasks(self):
        for klass, ir in self._runtime_irs():
            module = self._modules.get(ir.path)
            if module is None:
                continue
            for site in ir.calls:
                if site.callee not in _TASK_FACTORIES:
                    continue
                if not self._is_task_factory(site, ir):
                    continue
                parent = module.parents.get(site.node)
                if isinstance(parent, ast.Expr):
                    self._flag(
                        "DVS017", site.node, ir,
                        "the task returned by {0}() is dropped: with "
                        "no reference it can be collected mid-flight "
                        "and its exception is silently lost; keep the "
                        "handle or add a done-callback".format(
                            site.callee
                        ),
                    )

    def _is_task_factory(self, site, ir):
        for res in self.project.resolve(site, ir):
            if isinstance(res, External) and (
                res.dotted in _EXTERNAL_TASK_FACTORIES
            ):
                return True
            if isinstance(res, LoopCall) and (
                res.method in _TASK_FACTORIES
            ):
                return True
        return False

    # -- Torn invariants (DVS018) --------------------------------------

    def _check_torn_writes(self):
        for klass, ir in self._runtime_irs():
            if ir.is_async:
                self._check_torn_in(ir)

    def _check_torn_in(self, ir):
        cleanup = _cleanup_lines(ir.node)
        awaits = sorted({
            node.lineno
            for node in _walk_skip_nested(ir.node)
            if isinstance(node, ast.Await)
            and node.lineno not in cleanup
        })
        if not awaits:
            return
        writes = {}
        for access in ir.attr_accesses("self"):
            if access.kind in ("write", "mutate") and (
                access.line not in cleanup
            ):
                writes.setdefault(access.attr, set()).add(access.line)
        flagged = set()
        for attr in sorted(writes):
            lines = sorted(writes[attr])
            if len(lines) < 2:
                continue
            for at in awaits:
                before = [l for l in lines if l < at]
                after = [l for l in lines if l > at]
                if before and after and (attr, at) not in flagged:
                    flagged.add((attr, at))
                    self.findings.append(Finding(
                        rule="DVS018", path=ir.path, line=at, col=0,
                        message="await between writes to self.{0} "
                        "(lines {1} and {2}): a handler scheduled at "
                        "this suspension point observes half-applied "
                        "state; apply the update atomically or "
                        "re-validate after the await".format(
                            attr, before[-1], after[0]
                        ),
                    ))

    # -- Acquisition-order cycles (DVS019) -----------------------------

    def _check_lock_cycles(self):
        locks = self._lock_attrs()
        if not locks:
            return
        edges = {}
        for klass, ir in self._runtime_irs():
            if klass is None or not ir.is_async:
                continue
            self._lock_edges(klass, ir, locks, edges)
        in_cycle = self._cyclic_edges(edges)
        for edge in sorted(in_cycle):
            path, line, col = edges[edge]
            held, acquired = edge
            self.findings.append(Finding(
                rule="DVS019", path=path, line=line, col=col,
                message="coroutines acquire {0}.{1} while holding "
                "{2}.{3} and elsewhere the reverse: the acquisition "
                "order cycle deadlocks the loop; order the locks "
                "consistently".format(
                    acquired[0], acquired[1], held[0], held[1]
                ),
            ))

    def _lock_attrs(self):
        """(class, attr) -> ctor dotted name for every lock/queue
        attribute assigned in a runtime class."""
        locks = {}
        for name in sorted(self.project.classes):
            cls = self.project.classes[name]
            if not self.config.is_runtime_path(cls.path):
                continue
            imports = cls.module.imports
            for ir in cls.methods.values():
                for node in _walk_skip_nested(ir.node):
                    if not isinstance(node, ast.Assign):
                        continue
                    if not isinstance(node.value, ast.Call):
                        continue
                    dotted = resolve_dotted(
                        dotted_name(node.value.func), imports
                    )
                    if dotted not in _LOCK_CTORS | _QUEUE_CTORS:
                        continue
                    for target in node.targets:
                        root, chain = receiver_chain(target)
                        if root == "self" and len(chain) == 1:
                            locks[(name, chain[0])] = dotted
        return locks

    def _lock_edges(self, klass, ir, locks, edges):
        def resource(expr):
            root, chain = receiver_chain(expr)
            if root == "self" and chain and (klass, chain[0]) in locks:
                return (klass, chain[0])
            return None

        def visit(node, held):
            if isinstance(node, (
                ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda
            )):
                return
            if isinstance(node, ast.AsyncWith):
                acquired = []
                for item in node.items:
                    res = resource(item.context_expr)
                    if res is not None:
                        record(held, res, item.context_expr)
                        acquired.append(res)
                inner = held + acquired
                for stmt in node.body:
                    visit(stmt, inner)
                return
            if isinstance(node, ast.Await) and isinstance(
                node.value, ast.Call
            ):
                call = node.value
                func = call.func
                if isinstance(func, ast.Attribute) and (
                    func.attr in _ACQUIRE_METHODS
                ):
                    res = resource(func.value)
                    if res is not None:
                        record(held, res, call)
                        if func.attr == "acquire":
                            # Held for the rest of the function
                            # (conservative: no release tracking).
                            held.append(res)
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        def record(held, res, node):
            for h in held:
                if h != res:
                    edges.setdefault(
                        (h, res),
                        (ir.path, node.lineno, node.col_offset),
                    )

        for stmt in ir.node.body:
            visit(stmt, [])

    @staticmethod
    def _cyclic_edges(edges):
        adjacency = {}
        for (src, dst) in edges:
            adjacency.setdefault(src, set()).add(dst)

        def reaches(start, goal):
            stack, seen = [start], set()
            while stack:
                node = stack.pop()
                if node == goal:
                    return True
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(adjacency.get(node, ()))
            return False

        return {
            (src, dst) for (src, dst) in edges if reaches(dst, src)
        }

    # -- Findings ------------------------------------------------------

    def _flag(self, rule, node, ir, message):
        if not self.config.enabled(rule):
            return
        self.findings.append(Finding(
            rule=rule, path=ir.path, line=node.lineno,
            col=node.col_offset, message=message,
        ))


def run_pass(model, config):
    """All pass-7 findings over the model."""
    wanted = ("DVS016", "DVS017", "DVS018", "DVS019")
    if not any(config.enabled(rule) for rule in wanted):
        return []
    if not any(
        config.is_runtime_path(module.path) for module in model.modules
    ):
        return []
    analysis = _AsyncHazardAnalysis(model, config)
    findings = analysis.run()
    return [f for f in findings if config.enabled(f.rule)]
