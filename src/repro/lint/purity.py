"""Side-effect-freedom checks for predicates.

A *predicate* here is any function that the I/O-automaton semantics
requires to be pure: a precondition (``pre_*``), a candidate enumerator
(``cand_*``) or an invariant function (``invariant_*`` / ``inv_*``).
The paper evaluates these arbitrarily often and in arbitrary order
(enabledness probing, candidate enumeration, invariant sweeps), so any
mutation of automaton state through them is a soundness bug.

The check is syntactic and deliberately conservative-but-shallow: it
flags writes and known-mutator calls on attribute/subscript chains
rooted at the receiver (``self``) or the state parameter.  Mutations
through a local alias (``q = state.queue; q.append(x)``) are not
caught statically -- the runtime cross-check
(:class:`repro.gcs.effect_check.EffectIsolationChecker`) covers that
side dynamically.
"""

import ast

from repro.lint.model import chain_root
from repro.lint.report import Finding

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear",
    "add", "discard", "update", "setdefault", "popitem",
    "sort", "reverse", "appendleft", "popleft", "extendleft",
    "write", "setdefault",
})

#: Function-name prefixes treated as invariant predicates.
INVARIANT_PREFIXES = ("invariant_", "inv_")


def predicate_roots(func, is_method):
    """The parameter names whose reachable state must not be mutated.

    For methods that is the receiver plus the state parameter (the
    ``pre_(self, state, *params)`` convention); for plain invariant
    functions it is every parameter (invariants only take state).
    """
    args = func.args
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    if is_method:
        return frozenset(names[:2])
    return frozenset(names)


def check_predicate(func, roots, relpath, kind):
    """Findings for impure statements in ``func``'s body.

    ``kind`` names the predicate flavour for the message
    ("precondition", "candidate generator", "invariant").
    """
    findings = []

    def flag(rule, node, what):
        findings.append(Finding(
            rule=rule,
            path=relpath,
            line=node.lineno,
            col=node.col_offset,
            message="{0} {1}() {2}".format(kind, func.name, what),
        ))

    def rooted(node):
        root = chain_root(node)
        return root is not None and root in roots

    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, (ast.Attribute, ast.Subscript)):
                        if rooted(leaf):
                            flag(
                                "DVS004", node,
                                "assigns to {0!r}".format(
                                    ast.unparse(leaf)
                                ),
                            )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    if rooted(target):
                        flag(
                            "DVS004", node,
                            "deletes {0!r}".format(ast.unparse(target)),
                        )
        elif isinstance(node, ast.Call):
            func_node = node.func
            if (
                isinstance(func_node, ast.Attribute)
                and func_node.attr in MUTATOR_METHODS
                and rooted(func_node.value)
            ):
                flag(
                    "DVS005", node,
                    "calls mutator {0!r}".format(ast.unparse(func_node)),
                )
    return findings
