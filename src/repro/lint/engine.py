"""The lint driver: file discovery, passes, suppressions.

Suppression: a finding is dropped when the *flagged line* carries a
``# lint: ignore`` comment -- bare (suppresses every rule on the line)
or targeted: ``# lint: ignore[DVS008]``, ``# lint: ignore[DVS004,
DVS005]``.  Suppressions are deliberately line-scoped; there is no
file- or project-wide escape hatch, so every accepted violation stays
visible at its site.
"""

import os
import re

from repro.lint import (
    aliasing,
    asyncflow,
    determinism,
    escape,
    races,
    taint,
    wellformed,
    wire,
)
from repro.lint.callgraph import Target, build_project
from repro.lint.config import LintConfig
from repro.lint.model import SourceModel
from repro.lint.report import Report

_PASSES = (
    wellformed, determinism, aliasing, races, asyncflow, escape, wire,
    taint,
)

_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*ignore(?:\[(?P<rules>[A-Z0-9,\s]+)\])?"
)


def iter_python_files(paths):
    """Expand files/directories into a sorted list of ``.py`` files."""
    files = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs.sort()
                dirs[:] = [d for d in dirs if d != "__pycache__"]
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        elif path.endswith(".py"):
            files.append(path)
    seen = set()
    unique = []
    for path in files:
        normalized = os.path.normpath(path)
        if normalized not in seen:
            seen.add(normalized)
            unique.append(normalized)
    return sorted(unique)


def suppressions_for(lines):
    """Line number (1-based) -> frozenset of suppressed rule ids
    (empty frozenset = suppress everything on that line)."""
    table = {}
    for number, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        spec = match.group("rules")
        if spec is None:
            table[number] = frozenset()
        else:
            table[number] = frozenset(
                rule.strip() for rule in spec.split(",") if rule.strip()
            )
    return table


def _apply_suppressions(findings, suppression_tables):
    kept, suppressed = [], 0
    for finding in findings:
        table = suppression_tables.get(finding.path, {})
        rules = table.get(finding.line)
        if rules is not None and (not rules or finding.rule in rules):
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


def _callgraph_neighbors(model, focus_files):
    """Files with a call-graph edge to or from any focus file."""
    project = build_project(model)
    neighbors = set()
    for ir in project._all_irs():
        irs = [ir]
        while irs:
            current = irs.pop()
            irs.extend(current.nested.values())
            for site in current.calls:
                for res in project.resolve(site, current):
                    if not isinstance(res, Target) or res.ir is None:
                        continue
                    src = os.path.abspath(current.path)
                    dst = os.path.abspath(res.ir.path)
                    if src == dst:
                        continue
                    if src in focus_files:
                        neighbors.add(dst)
                    elif dst in focus_files:
                        neighbors.add(src)
    return neighbors


def lint_paths(paths, config=None, focus=None):
    """Lint ``paths`` (files and/or directories); return a
    :class:`~repro.lint.report.Report`.

    This is the pytest-importable API: the clean-tree gate is just
    ``assert lint_paths(["src/repro"]).ok``.

    ``focus`` (``repro lint --changed``) restricts the *reported*
    findings to the given files plus their call-graph neighbors.  The
    whole tree is still parsed -- the interprocedural passes need the
    full model to resolve receivers -- but pre-commit output stays
    scoped to what the diff could have affected.
    """
    config = config or LintConfig()
    model = SourceModel()
    suppression_tables = {}
    files = iter_python_files(paths)
    for path in files:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        module = model.add_module(path, source)
        if module is not None:
            suppression_tables[module.path] = suppressions_for(
                module.lines
            )

    findings = []
    for lint_pass in _PASSES:
        findings.extend(lint_pass.run_pass(model, config))

    # Dedupe: inheritance-aware pass 1 can reach the same definition
    # through several subclasses.
    unique = {}
    for finding in findings:
        unique.setdefault(
            (finding.rule, finding.path, finding.line, finding.message),
            finding,
        )
    findings, suppressed = _apply_suppressions(
        list(unique.values()), suppression_tables
    )
    kept = [
        finding for finding in findings
        if not config.excluded(finding.rule, finding.path)
    ]
    excluded_count = len(findings) - len(kept)
    focus_info = None
    if focus is not None:
        # Absolute paths on both sides: git hands the CLI repo-relative
        # names while lint paths may be absolute (or vice versa).
        focus_files = {os.path.abspath(p) for p in focus}
        scope = focus_files | _callgraph_neighbors(model, focus_files)
        kept = [
            finding for finding in kept
            if os.path.abspath(finding.path) in scope
        ]
        focus_info = {
            "files": sorted(focus_files),
            "neighbors": sorted(scope - focus_files),
        }
    # The interprocedural passes build (and cache) the project model on
    # the shared SourceModel; surface its size so reports identify the
    # analysis backend that produced them.
    project = build_project(model)
    engine = {
        "name": "ir-dataflow",
        "passes": [lint_pass.__name__.rpartition(".")[2]
                   for lint_pass in _PASSES],
        "ir_functions": project.function_count(),
        "callgraph_edges": project.edges,
    }
    if focus_info is not None:
        engine["focus"] = focus_info
    return Report(
        kept,
        files_scanned=len(files),
        suppressed=suppressed,
        excluded=excluded_count,
        engine=engine,
    )
