"""The lint driver: file discovery, passes, caching, suppressions.

Suppression: a finding is dropped when the *flagged line* carries a
``# lint: ignore`` comment -- bare (suppresses every rule on the line)
or targeted: ``# lint: ignore[DVS008]``, ``# lint: ignore[DVS004,
DVS005]``.  Suppressions are deliberately line-scoped; there is no
file- or project-wide escape hatch, so every accepted violation stays
visible at its site.

Incrementality (``cache_dir``): raw findings are cached per file under
a dependency-cone key (:mod:`repro.lint.cache`); a fully-warm run does
no parsing at all, and ``changed_only`` narrows analysis to the dirty
files' dependency cones.  Suppressions and package excludes are always
re-applied from the current sources, so a cached finding still honours
a freshly added pragma.

Parallelism (``jobs``): passes fork into a process pool (the parsed
model is inherited copy-on-write), falling back to serial execution
where ``fork`` is unavailable.  Pass order -- and therefore finding
order -- is preserved either way.
"""

import os
import re

from repro.lint import (
    aliasing,
    asyncflow,
    determinism,
    escape,
    races,
    specconf,
    taint,
    typestate,
    wellformed,
    wire,
)
from repro.lint.cache import (
    LintCache,
    augmented_graph,
    cone_key,
    cone_of,
    config_fingerprint,
    file_sha,
)
from repro.lint.callgraph import Target, build_project
from repro.lint.config import LintConfig
from repro.lint.model import SourceModel
from repro.lint.report import Report

_PASSES = (
    wellformed, determinism, aliasing, races, asyncflow, escape, wire,
    taint, typestate, specconf,
)

_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*ignore(?:\[(?P<rules>[A-Z0-9,\s]+)\])?"
)

#: Fork-inherited state for the process pool (set just before the pool
#: is created, cleared right after; children read it at task time).
#: Linter infrastructure, never imported by simulated processes.
_WORKER_STATE = {}  # lint: ignore[DVS010]


def iter_python_files(paths):
    """Expand files/directories into a sorted list of ``.py`` files."""
    files = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs.sort()
                dirs[:] = [d for d in dirs if d != "__pycache__"]
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        elif path.endswith(".py"):
            files.append(path)
    seen = set()
    unique = []
    for path in files:
        normalized = os.path.normpath(path)
        if normalized not in seen:
            seen.add(normalized)
            unique.append(normalized)
    return sorted(unique)


def suppressions_for(lines):
    """Line number (1-based) -> frozenset of suppressed rule ids
    (empty frozenset = suppress everything on that line)."""
    table = {}
    for number, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        spec = match.group("rules")
        if spec is None:
            table[number] = frozenset()
        else:
            table[number] = frozenset(
                rule.strip() for rule in spec.split(",") if rule.strip()
            )
    return table


def _apply_suppressions(findings, suppression_tables):
    kept, suppressed = [], 0
    for finding in findings:
        table = suppression_tables.get(finding.path, {})
        rules = table.get(finding.line)
        if rules is not None and (not rules or finding.rule in rules):
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


def _callgraph_neighbors(model, focus_files):
    """Files with a call-graph edge to or from any focus file."""
    project = build_project(model)
    neighbors = set()
    for ir in project._all_irs():
        irs = [ir]
        while irs:
            current = irs.pop()
            irs.extend(current.nested.values())
            for site in current.calls:
                for res in project.resolve(site, current):
                    if not isinstance(res, Target) or res.ir is None:
                        continue
                    src = os.path.abspath(current.path)
                    dst = os.path.abspath(res.ir.path)
                    if src == dst:
                        continue
                    if src in focus_files:
                        neighbors.add(dst)
                    elif dst in focus_files:
                        neighbors.add(src)
    return neighbors


def _run_pass_index(index):
    return _PASSES[index].run_pass(
        _WORKER_STATE["model"], _WORKER_STATE["config"]
    )


def _run_passes(model, config, jobs):
    """All passes over ``model``, forked across ``jobs`` processes when
    possible, in registry order either way."""
    if jobs and jobs > 1:
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = None
        if context is not None:
            from concurrent.futures import ProcessPoolExecutor

            # Materialize the shared interprocedural state before the
            # fork so children inherit it copy-on-write instead of
            # each rebuilding it.
            build_project(model)
            _WORKER_STATE["model"] = model
            _WORKER_STATE["config"] = config
            try:
                with ProcessPoolExecutor(
                    max_workers=min(jobs, len(_PASSES)),
                    mp_context=context,
                ) as pool:
                    results = list(
                        pool.map(_run_pass_index, range(len(_PASSES)))
                    )
            finally:
                _WORKER_STATE.clear()
            return [f for result in results for f in result]
    findings = []
    for lint_pass in _PASSES:
        findings.extend(lint_pass.run_pass(model, config))
    return findings


def _dedupe(findings):
    # Inheritance-aware passes can reach the same definition through
    # several subclasses.
    unique = {}
    for finding in findings:
        unique.setdefault(
            (finding.rule, finding.path, finding.line, finding.message),
            finding,
        )
    return list(unique.values())


def _build_model(files, sources):
    model = SourceModel()
    for path in files:
        model.add_module(path, sources[path])
    return model


def lint_paths(paths, config=None, focus=None, cache_dir=None,
               jobs=1, changed_only=False):
    """Lint ``paths`` (files and/or directories); return a
    :class:`~repro.lint.report.Report`.

    This is the pytest-importable API: the clean-tree gate is just
    ``assert lint_paths(["src/repro"]).ok``.

    ``focus`` (``repro lint --changed``) restricts the *reported*
    findings to the given files plus their call-graph neighbors.  The
    whole tree is still parsed -- the interprocedural passes need the
    full model to resolve receivers -- but pre-commit output stays
    scoped to what the diff could have affected.

    ``cache_dir`` enables the per-file result cache; ``changed_only``
    (requires ``cache_dir``) analyzes only the dependency cones of
    files whose cone key missed the cache.  ``jobs`` > 1 forks the
    passes across a process pool.
    """
    config = config or LintConfig()
    if changed_only and cache_dir is None:
        raise ValueError("changed_only requires cache_dir")
    files = iter_python_files(paths)
    sources = {}
    for path in files:
        with open(path, "r", encoding="utf-8") as handle:
            sources[path] = handle.read()

    cache_info = None
    if cache_dir is not None and focus is None:
        raw, cache_info, model = _lint_cached(
            files, sources, config, cache_dir, jobs, changed_only
        )
    else:
        model = _build_model(files, sources)
        raw = _run_passes(model, config, jobs)

    suppression_tables = {}
    for path in files:
        suppression_tables[path] = suppressions_for(
            sources[path].splitlines()
        )

    findings, suppressed = _apply_suppressions(
        _dedupe(raw), suppression_tables
    )
    kept = [
        finding for finding in findings
        if not config.excluded(finding.rule, finding.path)
    ]
    excluded_count = len(findings) - len(kept)
    focus_info = None
    if focus is not None:
        if model is None:
            model = _build_model(files, sources)
        # Absolute paths on both sides: git hands the CLI repo-relative
        # names while lint paths may be absolute (or vice versa).
        focus_files = {os.path.abspath(p) for p in focus}
        scope = focus_files | _callgraph_neighbors(model, focus_files)
        kept = [
            finding for finding in kept
            if os.path.abspath(finding.path) in scope
        ]
        focus_info = {
            "files": sorted(focus_files),
            "neighbors": sorted(scope - focus_files),
        }
    engine = {
        "name": "ir-dataflow",
        "passes": [lint_pass.__name__.rpartition(".")[2]
                   for lint_pass in _PASSES],
    }
    if model is not None:
        # The interprocedural passes build (and cache) the project
        # model on the shared SourceModel; surface its size so reports
        # identify the analysis backend that produced them.
        project = build_project(model)
        engine["ir_functions"] = project.function_count()
        engine["callgraph_edges"] = project.edges
    if jobs and jobs > 1:
        engine["jobs"] = jobs
    if cache_info is not None:
        engine["cache"] = cache_info
    if focus_info is not None:
        engine["focus"] = focus_info
    return Report(
        kept,
        files_scanned=len(files),
        suppressed=suppressed,
        excluded=excluded_count,
        engine=engine,
    )


def _lint_cached(files, sources, config, cache_dir, jobs, changed_only):
    """The cached analysis: returns ``(raw findings, cache stats,
    model or None)`` -- the model is ``None`` on a fully-warm run,
    which never parses anything."""
    cache = LintCache(cache_dir)
    config_fp = config_fingerprint(config)
    shas = {path: file_sha(sources[path]) for path in files}
    deps_by_path = {
        path: cache.deps_for(path, shas[path], sources[path], files)
        for path in files
    }
    graph = augmented_graph(deps_by_path, config)
    keys = {
        path: cone_key(path, graph, shas, config_fp, cache.engine_fp)
        for path in files
    }
    cached = {
        path: cache.findings_for(path, keys[path]) for path in files
    }
    dirty = [path for path in files if cached[path] is None]

    if not dirty:
        raw = [f for path in files for f in cached[path]]
        info = {
            "dir": cache_dir, "hits": len(files), "misses": 0,
            "analyzed": 0, "changed_only": bool(changed_only),
        }
        cache.prune(files)
        cache.save()
        return raw, info, None

    if changed_only:
        analyze = set()
        for path in dirty:
            analyze |= cone_of(path, graph)
        analyze = sorted(analyze)
    else:
        analyze = files
    model = _build_model(analyze, sources)
    fresh = _dedupe(_run_passes(model, config, jobs))
    fresh_by_path = {path: [] for path in analyze}
    for finding in fresh:
        fresh_by_path.setdefault(finding.path, []).append(finding)

    if changed_only:
        # Cached results stay authoritative for clean files; only the
        # dirty files take this (cone-scoped) run's findings.
        store_for = dirty
        dirty_set = set(dirty)
        raw = []
        for path in files:
            if path in dirty_set:
                raw.extend(fresh_by_path.get(path, ()))
            else:
                raw.extend(cached[path])
    else:
        # A full run is exactly what a cacheless run computes; it
        # refreshes every entry.
        store_for = analyze
        raw = fresh
    for path in store_for:
        cache.store(
            path, shas[path], deps_by_path[path], keys[path],
            fresh_by_path.get(path, []),
        )
    cache.prune(files)
    cache.save()
    info = {
        "dir": cache_dir,
        "hits": len(files) - len(dirty),
        "misses": len(dirty),
        "analyzed": len(analyze),
        "changed_only": bool(changed_only),
    }
    return raw, info, model
