"""Pass 2: determinism sanitizer (rules DVS006-DVS009).

The simulator must replay bit-for-bit from a seed (PR 1's counterexample
shrinking and log digests depend on it), so simulation code may not:

- read the wall clock (DVS006) -- simulated time is ``net.queue.now``;
- draw from global or unseeded entropy (DVS007) -- all randomness flows
  from ``random.Random(seed)`` instances plumbed from the run seed;
- iterate sets (or ``.keys()`` views) without ``sorted`` in
  ordering-sensitive paths: ``pre_``/``eff_``/``cand_`` bodies and the
  event-path modules from the config (DVS008) -- set order depends on
  ``PYTHONHASHSEED``;
- order anything by ``id()`` (DVS009) -- addresses vary per run.
"""

import ast

from repro.lint.model import dotted_name, resolve_dotted
from repro.lint.report import Finding

#: Fully dotted callables that read the wall clock.
WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.clock_gettime", "time.localtime", "time.gmtime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Fully dotted callables that are unconditional entropy escapes.
ENTROPY = frozenset({
    "os.urandom", "uuid.uuid1", "uuid.uuid4", "random.SystemRandom",
})

#: Aggregators whose result does not depend on iteration order, so a
#: generator over a set fed straight into them is safe.
ORDER_INSENSITIVE_CONSUMERS = frozenset({
    "any", "all", "sum", "len", "min", "max",
    "sorted", "set", "frozenset",
})

_SET_CALLS = frozenset({"set", "frozenset"})


def _is_setish(node):
    """Syntactically certain to produce a set (or a dict key view)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _SET_CALLS:
            return True
        if isinstance(func, ast.Attribute) and func.attr == "keys" and (
            not node.args and not node.keywords
        ):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_setish(node.left) or _is_setish(node.right)
    return False


def _describe_iter(node):
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "a set expression"
    if len(text) > 40:
        text = text[:37] + "..."
    return repr(text)


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, module, config, whole_module_event_path):
        self.module = module
        self.config = config
        self.whole_module = whole_module_event_path
        self.findings = []
        #: Depth of enclosing ordering-sensitive function bodies.
        self._sensitive_depth = 0

    def _flag(self, rule, node, message):
        if self.config.enabled(rule):
            self.findings.append(Finding(
                rule=rule, path=self.module.path, line=node.lineno,
                col=node.col_offset, message=message,
            ))

    # -- Wall clock / entropy (whole file) ----------------------------

    def visit_Call(self, node):
        dotted = resolve_dotted(
            dotted_name(node.func), self.module.imports
        )
        if dotted in WALL_CLOCK:
            self._flag(
                "DVS006", node,
                "call to {0}() reads the wall clock".format(dotted),
            )
        elif dotted in ENTROPY:
            self._flag(
                "DVS007", node,
                "call to {0}() is an entropy escape".format(dotted),
            )
        elif dotted is not None and dotted.startswith("random."):
            # The one blessed pattern is constructing a *seeded* RNG:
            # random.Random(seed).  Everything else on the module --
            # random.random(), random.choice(), random.seed() -- hits
            # the process-global generator.
            if dotted == "random.Random":
                if not node.args and not node.keywords:
                    self._flag(
                        "DVS007", node,
                        "random.Random() without a seed draws from OS "
                        "entropy",
                    )
            elif dotted.count(".") == 1:
                self._flag(
                    "DVS007", node,
                    "call to {0}() uses the process-global RNG".format(
                        dotted
                    ),
                )
        elif dotted is not None and dotted.startswith("secrets."):
            self._flag(
                "DVS007", node,
                "call to {0}() is an entropy escape".format(dotted),
            )

        self._check_id_ordering(node)
        self.generic_visit(node)

    # -- id() ordering ------------------------------------------------

    def _check_id_ordering(self, call):
        dotted = dotted_name(call.func)
        is_orderer = dotted in ("sorted", "min", "max") or (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "sort"
        )
        if not is_orderer:
            return
        for kw in call.keywords:
            if kw.arg == "key" and isinstance(kw.value, ast.Name) and (
                kw.value.id == "id"
            ):
                self._flag(
                    "DVS009", call,
                    "{0}(key=id) orders by object address".format(
                        dotted or "sort"
                    ),
                )
        for arg in call.args:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Call) and isinstance(
                    sub.func, ast.Name
                ) and sub.func.id == "id":
                    self._flag(
                        "DVS009", call,
                        "{0}(...) over id() values orders by object "
                        "address".format(dotted or "sort"),
                    )

    def visit_Compare(self, node):
        if any(
            isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
            for op in node.ops
        ):
            for sub in [node.left] + node.comparators:
                if isinstance(sub, ast.Call) and isinstance(
                    sub.func, ast.Name
                ) and sub.func.id == "id":
                    self._flag(
                        "DVS009", node,
                        "comparison of id() values orders by object "
                        "address",
                    )
                    break
        self.generic_visit(node)

    # -- Unsorted set iteration (scoped) ------------------------------

    def _in_sensitive_scope(self):
        return self.whole_module or self._sensitive_depth > 0

    def visit_FunctionDef(self, node):
        sensitive = node.name.startswith(("pre_", "eff_", "cand_"))
        if sensitive:
            self._sensitive_depth += 1
        self.generic_visit(node)
        if sensitive:
            self._sensitive_depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef

    def _check_iter(self, iter_node, consumer_exempt=False):
        if consumer_exempt or not self._in_sensitive_scope():
            return
        if _is_setish(iter_node):
            self._flag(
                "DVS008", iter_node,
                "iteration over {0} has hash-dependent order; wrap in "
                "sorted(...)".format(_describe_iter(iter_node)),
            )

    def visit_For(self, node):
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node):
        # Building a set is itself order-insensitive; any later
        # iteration over the result is checked at that later site.
        exempt = isinstance(node, ast.SetComp)
        if isinstance(node, ast.GeneratorExp):
            parent = self.module.parents.get(node)
            if isinstance(parent, ast.Call):
                consumer = dotted_name(parent.func)
                exempt = consumer in ORDER_INSENSITIVE_CONSUMERS
        for index, gen in enumerate(node.generators):
            # Only the outermost generator feeds the consumer directly.
            self._check_iter(
                gen.iter, consumer_exempt=(exempt and index == 0)
            )
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


def run_pass(model, config):
    """All pass-2 findings over the model."""
    findings = []
    for module in model.modules:
        visitor = _DeterminismVisitor(
            module, config, config.is_event_path(module.path)
        )
        visitor.visit(module.tree)
        findings.extend(visitor.findings)
    return findings
