"""A generic monotone-dataflow fixpoint framework over the lint IR.

The typestate and spec-conformance passes (DVS022-DVS027) all reduce to
the same question: *at this statement, what is known for certain about
an object's protocol state?*  This module answers it with a forward
worklist fixpoint over the per-function :class:`~repro.lint.ir.CFG`:

- a *fact* is a dict mapping tracked keys (an attribute or local name)
  to an abstract value from a finite lattice (``"nonnull"``,
  ``"closed"``, ``"started"``, ...);
- an :class:`Analysis` supplies the transfer function (how one
  statement changes the fact), an optional edge refinement (what a
  branch condition proves on its true/false edge) and a value join;
- the join over facts is the *must* join: a key survives a control-flow
  merge only when every incoming edge agrees on its value (disagreeing
  keys are dropped to "unknown"), so every reported protocol violation
  holds on **all** paths reaching it -- the analyses never flag a
  state that merely may occur.

Termination: the lattices are finite and transfer functions monotone
(keys only get dropped or re-proven at merges), so the fixpoint is
reached in a bounded number of visits; a generous iteration valve
(:data:`MAX_VISITS_PER_BLOCK`) guards against pathological CFGs by
abandoning the function (returning ``None``), which rules treat as
"no facts" rather than crashing or over-reporting.

Interprocedural summaries ride on :class:`SummaryTable`: a memoised
``FunctionIR -> summary`` map with a cycle guard, so a typestate
analysis can ask "does calling this method close its receiver?" and
recursive call chains degrade to the bottom summary instead of
looping.
"""

import ast
from collections import deque

#: Fixpoint safety valve: abandon a function once any block has been
#: visited this many times (far above what the finite lattices need).
MAX_VISITS_PER_BLOCK = 64


class Analysis:
    """Base class (and default behaviour) for forward must-analyses.

    Subclasses override :meth:`transfer` (mandatory in practice) and
    optionally :meth:`refine` and :meth:`join_values`.  Facts are
    plain dicts; transfer functions must treat the incoming fact as
    immutable and return a new dict when anything changes.
    """

    def initial(self, ir):
        """The entry fact (nothing is known by default)."""
        return {}

    def transfer(self, fact, stmt, ir):
        """The fact after executing ``stmt`` given ``fact`` before it."""
        return fact

    def refine(self, fact, test, sense, ir):
        """The fact after a branch on ``test`` took the ``sense`` edge."""
        return fact

    def join_values(self, a, b):
        """Join two abstract values; ``None`` drops the key (the must
        join keeps only agreed-on knowledge)."""
        return a if a == b else None


def join_facts(a, b, analysis):
    """The must join of two facts: keys known in both, with agreeing
    (joined) values."""
    out = {}
    for key in a.keys() & b.keys():
        value = analysis.join_values(a[key], b[key])
        if value is not None:
            out[key] = value
    return out


def statement_parts(stmt):
    """The AST nodes a basic block *owns* for a compound statement.

    Compound statements appear in the block where their header runs,
    while their bodies live in successor blocks; transferring over the
    whole node would double-count the body.  This returns just the
    header parts (tests, iterables, with-items), and the statement
    itself for simple statements.
    """
    if isinstance(
        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        # A nested definition's body does not execute here; facts about
        # its free variables belong to whoever calls it.
        return ()
    if isinstance(stmt, ast.If):
        return (stmt.test,)
    if isinstance(stmt, ast.While):
        return (stmt.test,)
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return (stmt.target, stmt.iter)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return tuple(stmt.items)
    if isinstance(stmt, ast.Try):
        return ()
    return (stmt,)


def run_forward(analysis, ir):
    """Run ``analysis`` to fixpoint over ``ir``'s CFG.

    Returns ``{block index: fact at block entry}`` for reachable
    blocks, or ``None`` if the iteration valve fired.
    """
    cfg = ir.cfg
    entry_facts = {cfg.entry.index: analysis.initial(ir)}
    worklist = deque([cfg.entry.index])
    queued = {cfg.entry.index}
    visits = {}
    while worklist:
        index = worklist.popleft()
        queued.discard(index)
        visits[index] = visits.get(index, 0) + 1
        if visits[index] > MAX_VISITS_PER_BLOCK:
            return None
        block = cfg.blocks[index]
        fact = entry_facts[index]
        for stmt in block.statements:
            fact = analysis.transfer(fact, stmt, ir)
        for successor in block.successors:
            outgoing = fact
            condition = cfg.edge_conditions.get((index, successor))
            if condition is not None:
                outgoing = analysis.refine(
                    outgoing, condition[0], condition[1], ir
                )
            if successor not in entry_facts:
                entry_facts[successor] = dict(outgoing)
                changed = True
            else:
                merged = join_facts(
                    entry_facts[successor], outgoing, analysis
                )
                changed = merged != entry_facts[successor]
                entry_facts[successor] = merged
            if changed and successor not in queued:
                worklist.append(successor)
                queued.add(successor)
    return entry_facts


def facts_at_statements(analysis, ir):
    """``id(stmt) -> fact before stmt`` for every statement on a
    reachable path, or ``None`` if the fixpoint was abandoned.

    This is the query interface the rules use: run the fixpoint once,
    then replay each block from its entry fact, recording the fact in
    force just before each owned statement.
    """
    entry_facts = run_forward(analysis, ir)
    if entry_facts is None:
        return None
    at = {}
    for index, fact in entry_facts.items():
        block = ir.cfg.blocks[index]
        for stmt in block.statements:
            at[id(stmt)] = fact
            fact = analysis.transfer(fact, stmt, ir)
    return at


class SummaryTable:
    """Memoised per-function summaries with a cycle guard.

    ``compute(ir, table)`` may recursively ask the table for callee
    summaries; a cycle returns ``bottom`` (the sound "don't know")
    instead of recursing forever.
    """

    def __init__(self, compute, bottom=None):
        self.compute = compute
        self.bottom = bottom
        self._memo = {}
        self._stack = set()

    def get(self, ir):
        key = id(ir)
        if key in self._memo:
            return self._memo[key]
        if key in self._stack:
            return self.bottom
        self._stack.add(key)
        try:
            result = self.compute(ir, self)
        finally:
            self._stack.discard(key)
        self._memo[key] = result
        return result


# -- Shared condition helpers ------------------------------------------------


def none_comparisons(test):
    """Decompose ``test`` into ``(operand expr, is_none)`` pairs it
    proves when *true*.

    ``x is None`` yields ``(x, True)``; ``x is not None`` yields
    ``(x, False)``; ``a and b`` yields the union of its conjuncts'
    proofs (all hold when the conjunction is true).  Disjunctions and
    other tests prove nothing.
    """
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        pairs = []
        for value in test.values:
            pairs.extend(none_comparisons(value))
        return pairs
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], (ast.Is, ast.IsNot))
    ):
        left, right = test.left, test.comparators[0]
        operand = None
        if isinstance(right, ast.Constant) and right.value is None:
            operand = left
        elif isinstance(left, ast.Constant) and left.value is None:
            operand = right
        if operand is not None:
            return [(operand, isinstance(test.ops[0], ast.Is))]
    return []


def negated_none_comparisons(test):
    """The ``(operand, is_none)`` pairs proven when ``test`` is
    *false*: only a bare (non-compound) comparison flips -- the
    negation of a conjunction proves nothing about its conjuncts."""
    if isinstance(test, ast.BoolOp):
        return []
    return [
        (operand, not is_none)
        for operand, is_none in none_comparisons(test)
    ]


def self_attr_of(node):
    """``attr`` when ``node`` is exactly ``self.attr``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None
