"""A concrete view-synchronous service (the VS interface, implemented).

Membership: coordinator-based.  On every connectivity change the minimum
process id of the component runs a two-phase round: it collects every
member's highest known epoch, picks ``max + 1``, forms the view
``<(epoch, leader), component>`` and installs it at every member.  View
identifiers ``(epoch, origin)`` are unique system-wide (concurrent
components have distinct leaders) and installs are accepted only in
increasing identifier order, so each process's view sequence is monotone.

Ordering: per-view sequencer.  A member forwards its payloads to the
view's leader (minimum id), which assigns consecutive sequence numbers and
broadcasts them; members deliver in sequence order -- hence all members of
a view deliver prefixes of one common sequence.  Members acknowledge
deliveries; once the leader holds acknowledgements from *every* member for
a position it broadcasts a stability note, and members report the message
safe, in order.

Safety relative to the VS specification (checked by the test suite through
the shared trace-property checkers):

- deliveries carry the view identifier and are accepted only in the
  matching current view (sending-view delivery);
- the sequencer gives every member the same per-view order, delivered
  gap-free (common order, prefix delivery);
- a safe report means every view member acknowledged, i.e. delivered,
  the message (the VS-SAFE precondition).

Liveness depends on the connectivity oracle and on component stability; a
round interrupted by another connectivity change is simply superseded.
"""

from repro.core.viewids import ViewId
from repro.core.views import View
from repro.gcs.messages import (
    Ack,
    Collect,
    Data,
    Install,
    Ordered,
    SafeNote,
    StateReply,
)
from repro.net.simulator import Node


class VsListener:
    """Upcall interface for users of the VS stack."""

    def on_vs_newview(self, view):
        """A new view was installed."""

    def on_vs_gprcv(self, payload, sender):
        """A payload from ``sender`` was delivered in the current view."""

    def on_vs_safe(self, payload, sender):
        """The payload is now known delivered at every view member."""


class _ViewOrderingState:
    """Per-view sequencing state, discarded on every view change."""

    def __init__(self, view):
        self.view = view
        # Sequencer side.
        self.next_assign = 1
        self.acks = {}
        self.next_safe_broadcast = 1
        # Member side.
        self.buffer = {}
        self.next_deliver = 1
        self.safe_notes = set()
        self.next_safe_report = 1


class VsStackNode(Node):
    """One process of the concrete view-synchronous stack.

    ``member`` overrides the default membership test (``pid in
    initial_view.set``): pass ``False`` to construct the process as a
    fresh joiner that starts with no current view and learns views only
    through installs -- the amnesiac-restart path of the live runtime
    (:mod:`repro.runtime`).
    """

    def __init__(self, pid, initial_view=None, listener=None, recorder=None,
                 member=None):
        super().__init__(pid)
        self.listener = listener or VsListener()
        self.recorder = recorder
        self.round_counter = 0
        self.active_round = None  # (round_id, members, replies) at leader
        if member is None:
            member = initial_view is not None and pid in initial_view.set
        if member:
            self.view = initial_view
            self.max_epoch = initial_view.id.epoch
            self.ordering = _ViewOrderingState(initial_view)
        else:
            self.view = None
            self.max_epoch = initial_view.id.epoch if initial_view else 0
            self.ordering = None

    # -- VS downcall ----------------------------------------------------------------

    def gpsnd(self, payload):
        """Multicast ``payload`` to the current view (VS-GPSND)."""
        if self.view is None:
            return
        self._record("vs_gpsnd", payload, self.pid)
        self.send(self._leader(), Data(self.view.id, payload, self.pid))

    def _leader(self):
        return min(self.view.set)

    # -- Failure detection / membership ------------------------------------------------

    def on_connectivity(self, component):
        if self.pid != min(component):
            return
        self.round_counter += 1
        round_id = (self.pid, self.round_counter)
        self.active_round = (round_id, frozenset(component), {})
        self._probe("vs_round", round_id, self.pid)
        self.broadcast(
            sorted(component), Collect(round_id, frozenset(component))
        )

    def on_message(self, src, msg):
        handler = {
            Collect: self._on_collect,
            StateReply: self._on_state_reply,
            Install: self._on_install,
            Data: self._on_data,
            Ordered: self._on_ordered,
            Ack: self._on_ack,
            SafeNote: self._on_safe_note,
        }[type(msg)]
        handler(src, msg)

    def _on_collect(self, src, msg):
        if self.pid not in msg.members:
            return
        self.send(src, StateReply(msg.round_id, self.max_epoch))

    def _on_state_reply(self, src, msg):
        if self.active_round is None:
            return
        round_id, members, replies = self.active_round
        if msg.round_id != round_id or src not in members:
            return
        replies[src] = msg.max_epoch
        if set(replies) != set(members):
            return
        epoch = max(max(replies.values()), self.max_epoch) + 1
        view = View(ViewId(epoch, self.pid), members)
        self.active_round = None
        self._probe("vs_form", round_id, view.id, self.pid)
        self.broadcast(sorted(members), Install(round_id, view))

    def _on_install(self, src, msg):
        view = msg.view
        if self.pid not in view.set:
            return
        if self.view is not None and not view.id > self.view.id:
            return
        self.max_epoch = max(self.max_epoch, view.id.epoch)
        self.view = view
        self.ordering = _ViewOrderingState(view)
        self._record("vs_newview", view, self.pid)
        self.listener.on_vs_newview(view)

    # -- In-view ordering ----------------------------------------------------------------------

    def _in_current_view(self, vid):
        return self.view is not None and self.view.id == vid

    def _on_data(self, src, msg):
        """Sequencer: assign the next slot and broadcast it."""
        if not self._in_current_view(msg.vid) or self.pid != self._leader():
            return
        ordering = self.ordering
        seq = ordering.next_assign
        ordering.next_assign += 1
        self._probe("vs_seq", msg.payload, self.pid)
        broadcast = Ordered(msg.vid, seq, msg.payload, msg.sender)
        self.broadcast(sorted(self.view.set), broadcast)

    def _on_ordered(self, src, msg):
        if not self._in_current_view(msg.vid):
            return
        ordering = self.ordering
        ordering.buffer[msg.seq] = (msg.payload, msg.sender)
        while ordering.next_deliver in ordering.buffer:
            seq = ordering.next_deliver
            payload, sender = ordering.buffer[seq]
            ordering.next_deliver += 1
            self._record("vs_gprcv", payload, sender, self.pid)
            self.listener.on_vs_gprcv(payload, sender)
            self.send(self._leader(), Ack(msg.vid, seq))
            self._report_safe()

    def _on_ack(self, src, msg):
        if not self._in_current_view(msg.vid) or self.pid != self._leader():
            return
        ordering = self.ordering
        ordering.acks.setdefault(msg.seq, set()).add(src)
        while ordering.acks.get(
            ordering.next_safe_broadcast, set()
        ) >= self.view.set:
            note = SafeNote(msg.vid, ordering.next_safe_broadcast)
            ordering.next_safe_broadcast += 1
            self.broadcast(sorted(self.view.set), note)

    def _on_safe_note(self, src, msg):
        if not self._in_current_view(msg.vid):
            return
        self.ordering.safe_notes.add(msg.seq)
        self._report_safe()

    def _report_safe(self):
        """Report safe messages in order, as far as notes and deliveries go."""
        ordering = self.ordering
        while (
            ordering.next_safe_report in ordering.safe_notes
            and ordering.next_safe_report < ordering.next_deliver
        ):
            seq = ordering.next_safe_report
            ordering.next_safe_report += 1
            payload, sender = ordering.buffer[seq]
            self._record("vs_safe", payload, sender, self.pid)
            self.listener.on_vs_safe(payload, sender)

    def _record(self, name, *params):
        if self.recorder is not None:
            self.recorder.record(name, *params)

    def _probe(self, name, *params):
        """Tracer-only span event (never enters the action log)."""
        if self.recorder is not None:
            probe = getattr(self.recorder, "probe", None)
            if probe is not None:
                probe(name, *params)
