"""Wire messages of the concrete view-synchronous stack."""

from dataclasses import dataclass
from typing import Tuple

from repro.core.views import View
from repro.core.viewids import ViewId


# -- Membership ----------------------------------------------------------------


@dataclass(frozen=True)
class Collect:
    """Coordinator asks members of its component for their max epoch."""

    round_id: Tuple[str, int]
    members: frozenset


@dataclass(frozen=True)
class StateReply:
    """Member's reply to :class:`Collect`: the highest epoch it has seen."""

    round_id: Tuple[str, int]
    max_epoch: int


@dataclass(frozen=True)
class Install:
    """Coordinator announces the agreed next view."""

    round_id: Tuple[str, int]
    view: View


# -- In-view ordering ----------------------------------------------------------------


@dataclass(frozen=True)
class Data:
    """Client payload forwarded to the view's sequencer."""

    vid: ViewId
    payload: object
    sender: str


@dataclass(frozen=True)
class Ordered:
    """Sequencer's broadcast: position ``seq`` of view ``vid`` is this
    payload from ``sender``."""

    vid: ViewId
    seq: int
    payload: object
    sender: str


@dataclass(frozen=True)
class Ack:
    """Member acknowledges having delivered position ``seq``."""

    vid: ViewId
    seq: int


@dataclass(frozen=True)
class SafeNote:
    """Sequencer's announcement that position ``seq`` is stable (delivered
    at every member of the view)."""

    vid: ViewId
    seq: int
