"""Runtime cross-process effect isolation (``Cluster(check_effects=True)``).

The static purity pass (``repro lint``, rules DVS004/DVS005/DVS010/
DVS011) proves syntactically that predicates do not mutate state and
that no mutable state is shared between simulated processes.  Static
analysis cannot see mutation through aliases, so this module provides
the dynamic half of the argument: with ``check_effects`` enabled, every
event dispatched to a process -- message delivery, timer, connectivity
report -- is bracketed by fingerprints of every *other* process's layer
state (VS stack, DVS filter, TO layer).  If handling an event at ``p``
changes anything observable at ``q != p``, the run stops with an
:class:`EffectIsolationError` naming the event and the foreign
attribute that moved.

This is the runtime analogue of the paper's locality discipline: an
``eff_`` may mutate only the state of the automaton it belongs to.

Fingerprints are ``repr``-based.  Within one dispatch the simulation is
single-threaded and unchanged objects produce identical reprs, so the
comparison is exact for the debugging purpose at hand; shared
infrastructure (the network, the shared action log, listeners wired to
other layers) is excluded by object identity.
"""


class EffectIsolationError(AssertionError):
    """Handling an event at one process mutated another process's state."""

    def __init__(self, pid, event, foreign_pid, details):
        self.pid = pid
        self.event = event
        self.foreign_pid = foreign_pid
        self.details = details
        super().__init__(
            "handling {0} at {1!r} mutated state of {2!r}: {3}".format(
                event, pid, foreign_pid, "; ".join(details)
            )
        )


#: The node upcalls bracketed by the checker.
_WRAPPED_UPCALLS = ("on_message", "on_timer", "on_connectivity")


class EffectIsolationChecker:
    """Snapshot-compares foreign layer state around every dispatch."""

    def __init__(self, cluster):
        self.cluster = cluster
        #: Dispatches checked so far (for tests to assert coverage).
        self.checks = 0
        #: pid -> [(layer_name, layer_object), ...]
        self._layers = {}
        for pid in cluster.processes:
            layers = [("stack", cluster.stacks[pid]),
                      ("dvs", cluster.dvs[pid])]
            if pid in cluster.to:
                layers.append(("to", cluster.to[pid]))
            if pid in getattr(cluster, "cb", {}):
                layers.append(("cb", cluster.cb[pid]))
            self._layers[pid] = layers
        # Objects excluded from fingerprints by identity: shared
        # infrastructure plus every layer object (cross-references like
        # dvs.stack or to.dvs are fingerprinted at their own process).
        self._skip_ids = {id(cluster.net), id(cluster.log)}
        for obj in (cluster.monitor, cluster.nemesis):
            if obj is not None:
                self._skip_ids.add(id(obj))
        for layers in self._layers.values():
            for _, layer in layers:
                self._skip_ids.add(id(layer))
                listener = getattr(layer, "listener", None)
                if listener is not None:
                    self._skip_ids.add(id(listener))

    def install(self):
        """Wrap every node's upcalls; returns self (fluent)."""
        for pid in self.cluster.processes:
            node = self.cluster.stacks[pid]
            for name in _WRAPPED_UPCALLS:
                self._wrap(node, name)
        return self

    def _wrap(self, node, name):
        original = getattr(node, name)

        def checked(*args, _original=original, _name=name, **kwargs):
            return self._dispatch(node.pid, _name, _original, args, kwargs)

        setattr(node, name, checked)

    # -- Fingerprinting ------------------------------------------------

    def _render(self, value, depth=0):
        """A structural repr that sees inside plain helper objects.

        The default ``repr`` of an object without ``__repr__`` is just
        its address, which hides in-place mutation (e.g. of the VS
        stack's ``_ViewOrderingState``); so objects carrying a
        ``__dict__`` are rendered from their attributes, recursively,
        and containers element-wise.  Depth is bounded defensively; the
        interesting state is shallow.
        """
        if depth > 6 or id(value) in self._skip_ids or callable(value):
            return "<skipped>"
        if isinstance(value, dict):
            return "{%s}" % ", ".join(
                "{0!r}: {1}".format(k, self._render(v, depth + 1))
                for k, v in value.items()
            )
        if isinstance(value, (list, tuple)):
            return "[%s]" % ", ".join(
                self._render(v, depth + 1) for v in value
            )
        if isinstance(value, (set, frozenset)):
            return "{%s}" % ", ".join(
                self._render(v, depth + 1) for v in value
            )
        attrs = getattr(value, "__dict__", None)
        if attrs is not None and type(value).__repr__ is object.__repr__:
            return "{0}({1})".format(
                type(value).__name__,
                ", ".join(
                    "{0}={1}".format(k, self._render(v, depth + 1))
                    for k, v in sorted(attrs.items())
                ),
            )
        return repr(value)

    def _fingerprint(self, pid):
        parts = []
        for layer_name, layer in self._layers[pid]:
            for attr, value in sorted(vars(layer).items()):
                if id(value) in self._skip_ids or callable(value):
                    continue
                parts.append(
                    ("{0}.{1}".format(layer_name, attr),
                     self._render(value))
                )
        return parts

    def _foreign_snapshot(self, pid):
        return {
            q: self._fingerprint(q)
            for q in self.cluster.processes
            if q != pid
        }

    @staticmethod
    def _diff(before, after):
        changed = []
        old = dict(before)
        new = dict(after)
        for key in sorted(set(old) | set(new)):
            if old.get(key) != new.get(key):
                changed.append(key)
        return changed

    # -- The bracketed dispatch ---------------------------------------

    def _dispatch(self, pid, name, original, args, kwargs):
        before = self._foreign_snapshot(pid)
        try:
            return original(*args, **kwargs)
        finally:
            self.checks += 1
            after = self._foreign_snapshot(pid)
            for q in sorted(before):
                changed = self._diff(before[q], after[q])
                if changed:
                    event = "{0}{1!r}".format(name, tuple(args))
                    raise EffectIsolationError(pid, event, q, changed)
