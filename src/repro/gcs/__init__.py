"""A runnable group-communication stack on the network simulator.

The paper's algorithms are specified as I/O automata over an abstract VS
service.  This package is the *system* coding of the same stack: concrete
protocol nodes exchanging messages over :class:`repro.net.Network`:

- :mod:`repro.gcs.vs_stack` -- a view-synchronous service implementation:
  coordinator-based membership (epoch collection + install) and per-view
  sequencer total order with all-ack stability, providing the VS interface
  (``gpsnd`` down; ``newview`` / ``gprcv`` / ``safe`` up);
- :mod:`repro.gcs.dvs_layer` -- the runtime coding of ``VS-TO-DVS_p``
  (dynamic primary filtering with info exchange, majority checks,
  registration and garbage collection);
- :mod:`repro.gcs.to_layer` -- the runtime coding of ``DVS-TO-TO_p``
  (labelling, tentative order, confirmation, state-exchange recovery);
- :mod:`repro.gcs.cb_layer` -- the runtime coding of ``DVS-TO-CB_p``
  (view-scoped vector clocks, hold-back release at delivery time) plus
  the fanout that lets the TO and CB towers share one DVS layer;
- :mod:`repro.gcs.recorder` -- converts the stack's events into the same
  action vocabulary as the automata, so the trace-property checkers apply
  verbatim to stack runs.

The stack's view changes are triggered by the simulator's connectivity
oracle (a perfect failure detector); this substitutes for timeout-based
detection and affects liveness/timing only, never the safety properties
checked by the test suite.
"""

from repro.gcs.cb_layer import CbLayer, CbListener, DvsFanout
from repro.gcs.dvs_layer import DvsLayer, DvsListener
from repro.gcs.effect_check import (
    EffectIsolationChecker,
    EffectIsolationError,
)
from repro.gcs.recorder import ActionLog
from repro.gcs.to_layer import ToLayer, ToListener
from repro.gcs.vs_stack import VsListener, VsStackNode

__all__ = [
    "ActionLog",
    "CbLayer",
    "CbListener",
    "DvsFanout",
    "DvsLayer",
    "DvsListener",
    "EffectIsolationChecker",
    "EffectIsolationError",
    "ToLayer",
    "ToListener",
    "VsListener",
    "VsStackNode",
]
