"""The runtime coding of ``DVS-TO-TO_p`` (totally ordered broadcast).

The same algorithm as :class:`repro.to.dvs_to_to.DvsToTo`, recast as an
event-driven layer over :class:`repro.gcs.dvs_layer.DvsLayer`.  Payloads
are labelled and multicast during normal activity; recovery exchanges
summaries, adopts ``fullorder`` and registers the view with DVS.  Labels
are confirmed when safe and released to the application in the confirmed
order.
"""

from repro.core.viewids import G0
from repro.gcs.dvs_layer import DvsListener
from repro.to.summaries import Label, Summary, fullorder, maxnextconfirm

NORMAL = "normal"
SEND = "send"
COLLECT = "collect"


class ToListener:
    """Upcall interface for users of the TO layer."""

    def on_brcv(self, payload, origin):
        """The next payload in the system-wide total order."""


class ToLayer(DvsListener):
    """One process's totally-ordered-broadcast engine, over a DVS layer."""

    def __init__(self, dvs, initial_view, listener=None, recorder=None,
                 member=None):
        self.dvs = dvs
        self.pid = dvs.pid
        self.listener = listener or ToListener()
        self.recorder = recorder
        dvs.listener = self

        # ``member=False`` builds a fresh joiner (amnesiac restart): it
        # has no current view until recovery establishes one.
        is_member = (
            self.pid in initial_view.set if member is None else member
        )
        self.current = initial_view if is_member else None
        self.status = NORMAL
        self.content = {}
        self.nextseqno = 1
        self.safe_labels = set()
        self.order = []
        self.nextconfirm = 1
        self.nextreport = 1
        self.highprimary = G0
        self.gotstate = {}
        self.safe_exch = set()
        self.delay = []
        self.established = set()

    # -- TO downcall ----------------------------------------------------------------

    def bcast(self, payload):
        """Broadcast ``payload``; it will be delivered in total order."""
        self._record("bcast", payload, self.pid)
        self.delay.append(payload)
        self._drain_delay()

    def _drain_delay(self):
        """Label and multicast delayed payloads when possible.

        The automaton's LABEL action needs only a current view; sending the
        labelled payload additionally needs status = normal.  The runtime
        layer labels lazily -- it keeps payloads in ``delay`` until they can
        be both labelled and immediately sent, which avoids the duplicate-
        ordering subtlety without changing what peers observe.
        """
        while self.delay and self.current is not None and self.status == NORMAL:
            payload = self.delay.pop(0)
            label = Label(self.current.id, self.nextseqno, self.pid)
            self.nextseqno += 1
            self.content[label] = payload
            self._probe("to_label", label, self.pid)
            self.dvs.gpsnd((label, payload))

    # -- DVS upcalls ------------------------------------------------------------------

    def on_dvs_newview(self, view):
        self.current = view
        self.nextseqno = 1
        self.gotstate = {}
        self.safe_exch = set()
        self.safe_labels = set()
        self.status = SEND
        summary = Summary(
            con=frozenset(self.content.items()),
            ord=tuple(self.order),
            next=self.nextconfirm,
            high=self.highprimary,
        )
        self.dvs.gpsnd(summary)
        self.status = COLLECT

    def on_dvs_gprcv(self, payload, sender):
        if isinstance(payload, Summary):
            self._on_summary(payload, sender)
        else:
            label, value = payload
            self.content[label] = value
            if label not in self.order:
                self.order.append(label)
            self._confirm_and_deliver()

    def on_dvs_safe(self, payload, sender):
        if isinstance(payload, Summary):
            self.safe_exch.add(sender)
            if (
                self.current is not None
                and self.safe_exch >= self.current.set
                and set(self.gotstate) >= set(self.current.set)
            ):
                self.safe_labels |= set(fullorder(self._gotstate_summaries()))
        else:
            label, _ = payload
            self.safe_labels.add(label)
        self._confirm_and_deliver()

    # -- Recovery ----------------------------------------------------------------------

    def _gotstate_summaries(self):
        return dict(self.gotstate)

    def _on_summary(self, summary, sender):
        for label, value in summary.con:
            self.content[label] = value
        self.gotstate[sender] = summary
        if (
            self.current is not None
            and set(self.gotstate) == set(self.current.set)
            and self.status == COLLECT
        ):
            self.nextconfirm = maxnextconfirm(self.gotstate)
            self.order = list(fullorder(self.gotstate))
            self.highprimary = self.current.id
            self.status = NORMAL
            self.established.add(self.current.id)
            self._probe("to_established", self.current.id, self.pid)
            self.dvs.register()
            self._drain_delay()
            self._confirm_and_deliver()

    # -- Confirmation -----------------------------------------------------------------------

    def _confirm_and_deliver(self):
        while (
            self.nextconfirm <= len(self.order)
            and self.order[self.nextconfirm - 1] in self.safe_labels
        ):
            self.nextconfirm += 1
        while self.nextreport < self.nextconfirm:
            label = self.order[self.nextreport - 1]
            payload = self.content[label]
            self.nextreport += 1
            self._probe("to_deliver", label, self.pid)
            self._record("brcv", payload, label.origin, self.pid)
            self.listener.on_brcv(payload, label.origin)

    def _record(self, name, *params):
        if self.recorder is not None:
            self.recorder.record(name, *params)

    def _probe(self, name, *params):
        """Tracer-only span event (never enters the action log)."""
        if self.recorder is not None:
            probe = getattr(self.recorder, "probe", None)
            if probe is not None:
                probe(name, *params)
