"""Recording stack events as I/O-automaton actions.

The runtime stack and the IOA coding must satisfy the same externally
visible guarantees.  An :class:`ActionLog` collects the stack's interface
events as :class:`~repro.ioa.action.Action` values using exactly the
vocabulary of the automata (``vs_newview``, ``dvs_gprcv``, ``bcast``,
``brcv``, ...), so :mod:`repro.checking.trace_props` runs unchanged on
stack executions.
"""

from repro.ioa.action import act


class ActionLog:
    """An append-only log of actions, shared across a simulation.

    With a ``clock`` callable (e.g. the network's simulated-time reader)
    each action also gets a timestamp in ``times``, enabling latency
    analysis (:mod:`repro.analysis.execution_stats`).

    A ``tracer`` (anything with ``on_action(time, name, params)``, e.g.
    :class:`repro.obs.Observability`) additionally sees every recorded
    action *and* every :meth:`probe` -- tracer-only events that never
    enter ``actions``, so the trace-property checkers keep consuming
    exactly the automaton vocabulary.
    """

    def __init__(self, clock=None, tracer=None):
        self.actions = []
        self.times = []
        self.clock = clock
        self.tracer = tracer
        #: Callables invoked as ``observer(time, action)`` on every record;
        #: online monitors (:mod:`repro.faults.monitor`) attach here and may
        #: raise to fail a run fast.
        self.observers = []

    def record(self, name, *params):
        action = act(name, *params)
        time = self.clock() if self.clock is not None else None
        self.actions.append(action)
        self.times.append(time)
        if self.tracer is not None:
            self.tracer.on_action(time, name, params)
        for observer in self.observers:
            observer(time, action)

    def probe(self, name, *params):
        """Emit a tracer-only event: timestamped like an action but kept
        out of ``actions``/``times`` (checkers never see probes)."""
        if self.tracer is None:
            return
        time = self.clock() if self.clock is not None else None
        self.tracer.on_action(time, name, params)

    def timed_actions(self):
        return list(zip(self.times, self.actions))

    def __len__(self):
        return len(self.actions)

    def __iter__(self):
        return iter(self.actions)

    def by_name(self, *names):
        wanted = set(names)
        return [a for a in self.actions if a.name in wanted]

    def clear(self):
        self.actions = []
        self.times = []
