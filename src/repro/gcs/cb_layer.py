"""The runtime coding of ``DVS-TO-CB_p`` (causally ordered broadcast),
plus the fanout that lets the TO and CB towers share one DVS layer.

The same algorithm as :class:`repro.cb.dvs_to_cb.DvsToCb`, recast as an
event-driven layer over :class:`repro.gcs.dvs_layer.DvsLayer`.  Payloads
are timestamped with a view-scoped vector clock and multicast; received
casts wait in a hold-back queue and are released the moment the BSS
condition holds -- at *delivery* time, never waiting for a DVS safe
indication, which is exactly the sequencer round-trip the TO tier pays
and CB does not.
"""

from repro.cb.clocks import drain, put
from repro.cb.messages import CbCast
from repro.gcs.dvs_layer import DvsListener


class CbListener:
    """Upcall interface for users of the CB layer."""

    def on_cb_brcv(self, payload, origin):
        """The next payload in some causally-consistent order."""


class CbLayer(DvsListener):
    """One process's causal-broadcast engine, over a DVS layer."""

    def __init__(self, dvs, initial_view, listener=None, recorder=None,
                 member=None):
        self.dvs = dvs
        self.pid = dvs.pid
        self.listener = listener or CbListener()
        self.recorder = recorder
        dvs.listener = self

        # ``member=False`` builds a fresh joiner (amnesiac restart): it
        # has no current view until DVS installs one.
        is_member = (
            self.pid in initial_view.set if member is None else member
        )
        self.current = initial_view if is_member else None
        self.delivered = ()
        self.sent = 0
        self.delay = []
        self.holdback = []
        self.deliveries = 0

    # -- CB downcall ----------------------------------------------------------

    def cbcast(self, payload):
        """Broadcast ``payload``; it will be delivered in causal order."""
        self._record("cbcast", payload, self.pid)
        self.delay.append(payload)
        self._drain_delay()

    def _drain_delay(self):
        while self.delay and self.current is not None:
            payload = self.delay.pop(0)
            self.sent += 1
            clock = put(self.delivered, self.pid, self.sent)
            msg = CbCast(self.current.id, clock, payload, self.pid)
            self._probe("cb_label", msg, self.pid)
            self.dvs.gpsnd(msg)

    # -- DVS upcalls ----------------------------------------------------------

    def on_dvs_newview(self, view):
        self.current = view
        self.delivered = ()
        self.sent = 0
        self.holdback = []
        # No state to exchange: causal order needs no recovery, so the
        # view is ready for CB the moment it is installed.
        self.dvs.register()
        self._drain_delay()

    def on_dvs_gprcv(self, payload, sender):
        if not isinstance(payload, CbCast):
            return
        if self.current is None or payload.vid != self.current.id:
            # Cross-view delivery is best-effort: the clock on this cast
            # is scoped to a view this process is no longer (or not yet)
            # in, so it can never satisfy the local delivery condition.
            return
        self.holdback.append(payload)
        self._drain_holdback()

    def on_dvs_safe(self, payload, sender):
        """CB delivers at gprcv time; stability indications are unused."""

    # -- Hold-back release ------------------------------------------------------

    def _drain_holdback(self):
        released, remaining, self.delivered = drain(
            [(m.origin, m.clock) for m in self.holdback], self.delivered
        )
        ready = [self.holdback[i] for i in released]
        self.holdback = [self.holdback[i] for i in remaining]
        for msg in ready:
            self.deliveries += 1
            self._probe("cb_deliver", msg, self.pid)
            self._record("cb_brcv", msg, msg.origin, self.pid)
            self.listener.on_cb_brcv(msg.payload, msg.origin)

    def _record(self, name, *params):
        if self.recorder is not None:
            self.recorder.record(name, *params)

    def _probe(self, name, *params):
        """Tracer-only span event (never enters the action log)."""
        if self.recorder is not None:
            probe = getattr(self.recorder, "probe", None)
            if probe is not None:
                probe(name, *params)


class _FanoutPort:
    """What one tower sees as its DVS layer.

    Mimics the :class:`~repro.gcs.dvs_layer.DvsLayer` client surface
    (``pid`` / ``listener`` / ``gpsnd`` / ``register``), delegating to
    the shared layer through the fanout.
    """

    def __init__(self, fanout, claims):
        self._fanout = fanout
        self.claims = claims
        self.listener = None
        self.registered = False

    @property
    def pid(self):
        return self._fanout.pid

    def gpsnd(self, payload):
        self._fanout.dvs.gpsnd(payload)

    def register(self):
        self.registered = True
        self._fanout._maybe_register()


class DvsFanout(DvsListener):
    """Share one DVS layer between several towers (TO and CB).

    ``DvsLayer`` has a single listener slot and stays unchanged; the
    fanout takes that slot and exposes one :meth:`port` per tower.
    Received payloads are routed by type -- each port claims its tier's
    message types, one default port takes the rest -- and view
    installations go to every port in creation order.

    Registration is coordinated: the view is registered with DVS only
    once *every* port has registered it.  The TO tower registers only
    after its state exchange establishes the view; CB registers
    immediately.  Requiring all ports keeps the slower tower's recovery
    guarantee intact -- registering early would let DVS advance its
    garbage-collection frontier past views whose TO state has not
    propagated yet.
    """

    def __init__(self, dvs):
        self.dvs = dvs
        self.pid = dvs.pid
        self._ports = []
        dvs.listener = self

    def port(self, claims=None):
        """A new tower port; ``claims`` is a type (tuple) it routes."""
        port = _FanoutPort(self, claims)
        self._ports.append(port)
        return port

    def _maybe_register(self):
        if self._ports and all(p.registered for p in self._ports):
            self.dvs.register()

    def _route(self, payload):
        default = None
        for port in self._ports:
            if port.claims is None:
                if default is None:
                    default = port
            elif isinstance(payload, port.claims):
                return port
        return default

    # -- DVS upcalls, multiplexed ----------------------------------------------

    def on_dvs_newview(self, view):
        for port in self._ports:
            port.registered = False
        for port in self._ports:
            if port.listener is not None:
                port.listener.on_dvs_newview(view)

    def on_dvs_gprcv(self, payload, sender):
        port = self._route(payload)
        if port is not None and port.listener is not None:
            port.listener.on_dvs_gprcv(payload, sender)

    def on_dvs_safe(self, payload, sender):
        port = self._route(payload)
        if port is not None and port.listener is not None:
            port.listener.on_dvs_safe(payload, sender)
