"""One-call wiring of a full simulated cluster.

A :class:`Cluster` builds, per process: a network node running the
view-synchronous stack, the dynamic-primary (DVS) layer on top of it
and, optionally, the two ordering towers over it -- totally-ordered
broadcast (TO) and causal broadcast (CB), side by side behind a
:class:`~repro.gcs.cb_layer.DvsFanout` -- with a single shared
:class:`~repro.gcs.recorder.ActionLog` so the whole run can be checked
with the trace-property suite and analysed afterwards.  Clients pick
the ordering strength per send: ``bcast(pid, payload, ordering="to")``
or ``ordering="cb"``.
"""

from repro.cb.messages import CbCast
from repro.core.viewids import ViewId
from repro.core.views import View
from repro.gcs.cb_layer import CbLayer, DvsFanout
from repro.gcs.dvs_layer import DvsLayer
from repro.gcs.recorder import ActionLog
from repro.gcs.to_layer import ToLayer
from repro.gcs.vs_stack import VsStackNode
from repro.net.events import NonQuiescentError
from repro.net.simulator import Network


class Cluster:
    """A simulated deployment of the full stack.

    Chaos-testing hooks (see :mod:`repro.faults`):

    - ``nemesis`` -- a :class:`repro.faults.nemesis.Nemesis` (or plain
      plan) armed on the network at :meth:`start`;
    - ``monitor`` -- ``True`` for a default online
      :class:`repro.faults.monitor.SafetyMonitor`, or a prebuilt monitor;
      an armed monitor forces full network logging regardless of
      ``log_limit``;
    - ``dvs_factory`` -- substitute dynamic-primary layer constructor
      (e.g. :class:`repro.dvs.ablation.NoMajorityDvsLayer`), signature
      ``factory(stack, initial_view, recorder=...)``;
    - ``log_limit`` -- bound the network event log's memory (entries
      kept), for long monitored-elsewhere runs;
    - ``check_effects`` -- debug mode: bracket every event dispatch
      with snapshots of every *other* process's layer state and raise
      :class:`~repro.gcs.effect_check.EffectIsolationError` if handling
      an event at one process mutates another's state (the runtime
      cross-check of the ``repro lint`` purity/aliasing passes);
    - ``obs`` -- ``True`` for a fresh :class:`repro.obs.Observability`
      (or a prebuilt one): causal spans + metrics collected from the
      action log and the simulated wire, with no change to what the
      trace-property checkers see.
    """

    def __init__(
        self,
        processes,
        seed=0,
        with_to_layer=True,
        initial_view=None,
        min_latency=1.0,
        max_latency=2.0,
        nemesis=None,
        monitor=None,
        dvs_factory=None,
        log_limit=None,
        check_effects=False,
        obs=None,
    ):
        self.processes = sorted(processes)
        if initial_view is None:
            initial_view = View(ViewId(0, ""), frozenset(self.processes))
        self.initial_view = initial_view
        if monitor:
            log_limit = None  # a monitor's diagnostics need the full log
        if obs is True:
            from repro.obs import Observability

            obs = Observability()
        self.obs = obs
        self.net = Network(
            seed=seed, min_latency=min_latency, max_latency=max_latency,
            log_limit=log_limit, tracer=obs,
        )
        self.log = ActionLog(clock=lambda: self.net.queue.now, tracer=obs)
        self.monitor = self._build_monitor(monitor)
        self.nemesis = self._build_nemesis(nemesis)
        self.last_settle = None
        self.stacks = {}
        self.dvs = {}
        self.fanouts = {}
        self.to = {}
        self.cb = {}
        dvs_factory = dvs_factory or DvsLayer
        for pid in self.processes:
            stack = VsStackNode(
                pid, initial_view=initial_view, recorder=self.log
            )
            self.net.add_node(stack)
            dvs = dvs_factory(stack, initial_view, recorder=self.log)
            self.stacks[pid] = stack
            self.dvs[pid] = dvs
            if with_to_layer:
                fanout = DvsFanout(dvs)
                self.fanouts[pid] = fanout
                self.to[pid] = ToLayer(
                    fanout.port(), initial_view, recorder=self.log
                )
                self.cb[pid] = CbLayer(
                    fanout.port(claims=CbCast), initial_view,
                    recorder=self.log,
                )
        self.effect_checker = None
        if check_effects:
            from repro.gcs.effect_check import EffectIsolationChecker

            self.effect_checker = EffectIsolationChecker(self).install()

    def _build_monitor(self, monitor):
        if not monitor:
            return None
        if monitor is True:
            from repro.faults.monitor import SafetyMonitor

            monitor = SafetyMonitor(self.initial_view, net=self.net)
        if getattr(monitor, "net", None) is None:
            monitor.net = self.net
        return monitor.attach(self.log)

    def _build_nemesis(self, nemesis):
        if nemesis is None:
            return None
        from repro.faults.nemesis import Nemesis

        if not isinstance(nemesis, Nemesis):
            nemesis = Nemesis(nemesis)
        return nemesis

    # -- Convenience passthroughs ---------------------------------------------------

    def start(self):
        if self.nemesis is not None:
            self.nemesis.arm(self.net)
        self.net.start()
        return self

    def run(self, duration):
        self.net.run_until(self.net.queue.now + duration)
        return self

    def settle(self, max_time=None, max_events=1000000, strict=True):
        """Run until no events remain (bounded by ``max_time`` from now).

        Stopping at ``max_time`` is the caller's explicit bound and is
        fine; exhausting ``max_events`` without quiescing means the run
        was truncated mid-flight, which ``strict`` surfaces as a
        :class:`~repro.net.events.NonQuiescentError` instead of silently
        returning a half-finished simulation.  The last status is kept in
        ``last_settle``.
        """
        bound = float("inf") if max_time is None else (
            self.net.queue.now + max_time
        )
        status = self.net.run_to_quiescence(
            max_time=bound, max_events=max_events
        )
        self.last_settle = status
        if strict and status.reason == "max_events":
            raise NonQuiescentError(status)
        return self

    def partition(self, *groups):
        self.net.partition([set(g) for g in groups])
        return self

    def heal(self):
        self.net.heal()
        return self

    def crash(self, pid):
        self.net.crash(pid)
        return self

    def recover(self, pid):
        self.net.recover(pid)
        return self

    def bcast(self, pid, payload, ordering="to"):
        """Broadcast at ``pid`` with the chosen ordering strength."""
        if ordering == "to":
            self.to[pid].bcast(payload)
        elif ordering == "cb":
            self.cb[pid].cbcast(payload)
        else:
            raise ValueError(
                "unknown ordering {0!r} (expected 'to' or 'cb')".format(
                    ordering
                )
            )
        return self

    # -- Observation ---------------------------------------------------------------------

    def delivered(self, pid):
        """The totally ordered deliveries observed at ``pid`` so far."""
        return [
            (a.params[0], a.params[1])
            for a in self.log.actions
            if a.name == "brcv" and a.params[2] == pid
        ]

    def cb_delivered(self, pid):
        """The causally ordered deliveries observed at ``pid`` so far."""
        return [
            (a.params[0].payload, a.params[1])
            for a in self.log.actions
            if a.name == "cb_brcv" and a.params[2] == pid
        ]

    def primary_views(self, pid):
        """The primary views attempted at ``pid``, in order."""
        return [
            a.params[0]
            for a in self.log.actions
            if a.name == "dvs_newview" and a.params[1] == pid
        ]

    def current_primary(self, pid):
        views = self.primary_views(pid)
        if views:
            return views[-1]
        return self.initial_view if pid in self.initial_view.set else None
