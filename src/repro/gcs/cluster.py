"""One-call wiring of a full simulated cluster.

A :class:`Cluster` builds, per process: a network node running the
view-synchronous stack, the dynamic-primary (DVS) layer on top of it and,
optionally, the totally-ordered-broadcast (TO) layer on top of that --
with a single shared :class:`~repro.gcs.recorder.ActionLog` so the whole
run can be checked with the trace-property suite and analysed afterwards.
"""

from repro.core.viewids import ViewId
from repro.core.views import View
from repro.gcs.dvs_layer import DvsLayer
from repro.gcs.recorder import ActionLog
from repro.gcs.to_layer import ToLayer
from repro.gcs.vs_stack import VsStackNode
from repro.net.simulator import Network


class Cluster:
    """A simulated deployment of the full stack."""

    def __init__(
        self,
        processes,
        seed=0,
        with_to_layer=True,
        initial_view=None,
        min_latency=1.0,
        max_latency=2.0,
    ):
        self.processes = sorted(processes)
        if initial_view is None:
            initial_view = View(ViewId(0, ""), frozenset(self.processes))
        self.initial_view = initial_view
        self.net = Network(
            seed=seed, min_latency=min_latency, max_latency=max_latency
        )
        self.log = ActionLog(clock=lambda: self.net.queue.now)
        self.stacks = {}
        self.dvs = {}
        self.to = {}
        for pid in self.processes:
            stack = VsStackNode(
                pid, initial_view=initial_view, recorder=self.log
            )
            self.net.add_node(stack)
            dvs = DvsLayer(stack, initial_view, recorder=self.log)
            self.stacks[pid] = stack
            self.dvs[pid] = dvs
            if with_to_layer:
                self.to[pid] = ToLayer(dvs, initial_view, recorder=self.log)

    # -- Convenience passthroughs ---------------------------------------------------

    def start(self):
        self.net.start()
        return self

    def run(self, duration):
        self.net.run_until(self.net.queue.now + duration)
        return self

    def settle(self, max_time=None):
        """Run until no events remain (bounded by ``max_time`` from now)."""
        bound = float("inf") if max_time is None else (
            self.net.queue.now + max_time
        )
        self.net.run_to_quiescence(max_time=bound)
        return self

    def partition(self, *groups):
        self.net.partition([set(g) for g in groups])
        return self

    def heal(self):
        self.net.heal()
        return self

    def crash(self, pid):
        self.net.crash(pid)
        return self

    def recover(self, pid):
        self.net.recover(pid)
        return self

    def bcast(self, pid, payload):
        """Broadcast through the TO layer at ``pid``."""
        self.to[pid].bcast(payload)
        return self

    # -- Observation ---------------------------------------------------------------------

    def delivered(self, pid):
        """The totally ordered deliveries observed at ``pid`` so far."""
        return [
            (a.params[0], a.params[1])
            for a in self.log.actions
            if a.name == "brcv" and a.params[2] == pid
        ]

    def primary_views(self, pid):
        """The primary views attempted at ``pid``, in order."""
        return [
            a.params[0]
            for a in self.log.actions
            if a.name == "dvs_newview" and a.params[1] == pid
        ]

    def current_primary(self, pid):
        views = self.primary_views(pid)
        if views:
            return views[-1]
        return self.initial_view if pid in self.initial_view.set else None
