"""The runtime coding of ``VS-TO-DVS_p`` (dynamic primary filtering).

Functionally the same algorithm as :class:`repro.dvs.vs_to_dvs.VsToDvs`,
recast from an I/O automaton into an event-driven layer over
:class:`repro.gcs.vs_stack.VsStackNode`:

- on every VS view, exchange "info" messages carrying ``(act, amb)``;
- attempt the view (report it to the application as a *primary*) only
  after hearing from every other member and only if it majority-intersects
  every view in ``use = {act} ∪ amb``;
- on application registration, multicast "registered"; once every member
  of a view has registered it, advance ``act`` to it and prune ``amb``
  (garbage collection).

Buffering differences from the automaton are only about *when* queued work
happens (the automaton defers via explicit queues and scheduler choice;
the layer acts at message-arrival time); the externally visible behaviour
is checked against the same DVS trace properties.
"""

from repro.core.messages import InfoMsg, RegisteredMsg
from repro.core.viewids import vid_gt
from repro.dvs.vs_to_dvs import AckMsg
from repro.gcs.vs_stack import VsListener


class DvsListener:
    """Upcall interface for users of the DVS layer."""

    def on_dvs_newview(self, view):
        """A new *primary* view was attempted at this process."""

    def on_dvs_gprcv(self, payload, sender):
        """A client payload was delivered in the current primary view."""

    def on_dvs_safe(self, payload, sender):
        """The payload is delivered at every member of the primary view."""


class DvsLayer(VsListener):
    """One process's dynamic-primary filter, over a VS stack node."""

    def __init__(self, stack, initial_view, listener=None, recorder=None,
                 member=None):
        self.stack = stack
        self.pid = stack.pid
        self.listener = listener or DvsListener()
        self.recorder = recorder
        stack.listener = self

        # ``member=False`` builds a fresh joiner: no current primary even
        # if the pid appears in ``initial_view`` (amnesiac restart).
        is_member = (
            self.pid in initial_view.set if member is None else member
        )
        self.cur = initial_view if is_member else None
        self.client_cur = initial_view if is_member else None
        self.act = initial_view
        self.amb = set()
        self.registered_ids = {initial_view.id} if is_member else set()
        # Per current view bookkeeping (reset on every VS view).
        self.info_rcvd = {}
        self.rcvd_rgst = set()
        self.pending_deliveries = []
        self.attempted_current = is_member
        # Repaired safe rule (see repro.dvs.vs_to_dvs): acknowledgment
        # evidence of client-level delivery at every member.
        self.client_history = []
        self.acked = {}
        self.safe_ptr = 0

    # -- DVS downcalls ---------------------------------------------------------------

    def gpsnd(self, payload):
        """Multicast a client payload within the current primary view."""
        if self.client_cur is None:
            return
        self._record("dvs_gpsnd", payload, self.pid)
        if self.cur is not None and self.client_cur.id == self.cur.id:
            self.stack.gpsnd(payload)
        # Otherwise the payload is addressed to a view VS has already
        # abandoned; like the automaton's stranded msgs-to-vs queue, it is
        # never delivered.

    def register(self):
        """The application has gathered all state it needs in this view."""
        if self.client_cur is None:
            return
        if self.client_cur.id in self.registered_ids:
            return
        self.registered_ids.add(self.client_cur.id)
        self._record("dvs_register", self.pid)
        self._probe("dvs_register_view", self.client_cur.id, self.pid)
        if self.cur is not None and self.client_cur.id == self.cur.id:
            self.stack.gpsnd(RegisteredMsg())

    # -- The derived variable ``use`` ----------------------------------------------------

    @property
    def use(self):
        return {self.act} | set(self.amb)

    # -- VS upcalls ----------------------------------------------------------------------

    def on_vs_newview(self, view):
        self.cur = view
        self.info_rcvd = {}
        self.rcvd_rgst = set()
        self.pending_deliveries = []
        self.attempted_current = False
        self.client_history = []
        self.acked = {}
        self.safe_ptr = 0
        self.stack.gpsnd(InfoMsg(self.act, frozenset(self.amb)))
        # A VS view can already be attemptable when it needs no peers'
        # info (the info check only covers *other* members, and our own
        # info is reflected back through VS anyway).
        self._maybe_attempt()

    def on_vs_gprcv(self, payload, sender):
        if isinstance(payload, InfoMsg):
            self._on_info(payload, sender)
        elif isinstance(payload, RegisteredMsg):
            self._on_registered(sender)
        elif isinstance(payload, AckMsg):
            self._on_ack(payload, sender)
        else:
            self._on_client_payload(payload, sender)

    def on_vs_safe(self, payload, sender):
        """VS-level stability: ignored.

        VS-SAFE only proves delivery to every member's *filter*; the DVS
        safe indication promises delivery to every member's *client*, so
        this layer derives it from acknowledgments instead (the repaired
        rule of :mod:`repro.dvs.vs_to_dvs`).
        """

    # -- Internals ----------------------------------------------------------------------------

    def _on_info(self, info, sender):
        self.info_rcvd[sender] = info
        if vid_gt(info.act.id, self.act.id):
            self.act = info.act
        self.amb = {
            w
            for w in self.amb | set(info.amb)
            if vid_gt(w.id, self.act.id)
        }
        self._maybe_attempt()

    def _view_acceptable(self, view):
        """The quorum clause of the DVS-NEWVIEW precondition: the view must
        majority-intersect every possibly-active earlier primary.  Ablated
        variants (:mod:`repro.dvs.ablation`) override this."""
        return all(view.majority_of(w) for w in self.use)

    def _maybe_attempt(self):
        """The DVS-NEWVIEW precondition of Figure 3, applied eagerly."""
        view = self.cur
        if view is None or self.attempted_current:
            return
        client_id = None if self.client_cur is None else self.client_cur.id
        if not vid_gt(view.id, client_id):
            return
        for q in view.set:
            if q != self.pid and q not in self.info_rcvd:
                return
        if not self._view_acceptable(view):
            return
        self.amb.add(view)
        self.client_cur = view
        self.attempted_current = True
        self._record("dvs_newview", view, self.pid)
        self.listener.on_dvs_newview(view)
        buffered = self.pending_deliveries
        self.pending_deliveries = []
        for payload, sender in buffered:
            self._deliver_to_client(payload, sender)

    def _on_registered(self, sender):
        self.rcvd_rgst.add(sender)
        view = self.cur
        if view is None:
            return
        if self.rcvd_rgst >= view.set and vid_gt(view.id, self.act.id):
            # Garbage collection: the view is known totally registered.
            self.act = view
            self.amb = {w for w in self.amb if vid_gt(w.id, self.act.id)}

    def _on_client_payload(self, payload, sender):
        if self.attempted_current:
            self._deliver_to_client(payload, sender)
        else:
            self.pending_deliveries.append((payload, sender))

    def _deliver_to_client(self, payload, sender):
        self._record("dvs_gprcv", payload, sender, self.pid)
        self.listener.on_dvs_gprcv(payload, sender)
        self.client_history.append((payload, sender))
        if self.cur is not None and self.client_cur is not None and (
            self.client_cur.id == self.cur.id
        ):
            self.stack.gpsnd(AckMsg(len(self.client_history)))

    def _on_ack(self, ack, sender):
        if ack.count > self.acked.get(sender, 0):
            self.acked[sender] = ack.count
        self._release_safe()

    def _release_safe(self):
        view = self.client_cur
        if view is None or self.cur is None or view.id != self.cur.id:
            return
        while self.safe_ptr < len(self.client_history) and all(
            self.acked.get(r, 0) > self.safe_ptr for r in view.set
        ):
            payload, sender = self.client_history[self.safe_ptr]
            self.safe_ptr += 1
            self._record("dvs_safe", payload, sender, self.pid)
            self.listener.on_dvs_safe(payload, sender)

    def _record(self, name, *params):
        if self.recorder is not None:
            self.recorder.record(name, *params)

    def _probe(self, name, *params):
        """Tracer-only span event (never enters the action log)."""
        if self.recorder is not None:
            probe = getattr(self.recorder, "probe", None)
            if probe is not None:
                probe(name, *params)
