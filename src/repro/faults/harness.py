"""One-call chaos runs: workload + nemesis + online monitor + digest.

:func:`run_chaos` deploys a full :class:`~repro.gcs.cluster.Cluster`,
arms a nemesis plan and a :class:`~repro.faults.monitor.SafetyMonitor`,
drives a deterministic broadcast workload while the faults play out, and
returns a :class:`ChaosResult` with the (possible) violation, run
statistics and a digest of the network event log -- two runs with the
same ``(seed, plan)`` produce byte-identical logs, so equal digests.

:func:`find_and_shrink` wraps a failing run with the delta-debugging
shrinker and returns a replayable :class:`~repro.faults.shrink.ReproCase`.
"""

import dataclasses
import hashlib
from dataclasses import dataclass, field

from repro.faults.monitor import SafetyMonitor, SafetyViolation
from repro.faults.nemesis import Nemesis, NemesisPlan
from repro.faults.shrink import ReproCase, shrink_plan
from repro.gcs.cluster import Cluster


def _canon(value):
    """A canonical string for a logged value.

    ``repr`` alone is not replay-stable: frozensets inside message
    dataclasses iterate in hash order, which varies across interpreter
    invocations (PYTHONHASHSEED).  Sets are rendered sorted and
    dataclasses field-by-field so equal logs always hash equally.
    """
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(_canon(v) for v in value)) + "}"
    if isinstance(value, tuple):
        return "(" + ",".join(_canon(v) for v in value) + ")"
    if isinstance(value, list):
        return "[" + ",".join(_canon(v) for v in value) + "]"
    if isinstance(value, dict):
        return "{" + ",".join(
            sorted(_canon(k) + ":" + _canon(v) for k, v in value.items())
        ) + "}"
    if isinstance(value, float):
        return "{0:.9g}".format(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return type(value).__name__ + "(" + ",".join(
            f.name + "=" + _canon(getattr(value, f.name))
            for f in dataclasses.fields(value)
        ) + ")"
    return repr(value)


def log_digest(net_log):
    """A replay-stable digest of the network event log."""
    h = hashlib.sha256()
    for time, kind, details in net_log:
        h.update(_canon((round(time, 9), kind, details)).encode())
    return h.hexdigest()


@dataclass
class ChaosResult:
    """Outcome of one chaos run."""

    seed: int
    processes: tuple
    plan: NemesisPlan
    violation: SafetyViolation = None
    digest: str = ""
    stats: dict = field(default_factory=dict)
    cluster: Cluster = None

    @property
    def ok(self):
        return self.violation is None


def run_chaos(
    processes,
    seed=0,
    plan=None,
    duration=None,
    broadcast_interval=8.0,
    settle_time=400.0,
    dvs_factory=None,
    monitor=True,
    log_limit=None,
    keep_cluster=False,
    min_latency=1.0,
    max_latency=2.0,
):
    """Run the full stack under a nemesis plan with an armed monitor.

    The workload broadcasts one payload every ``broadcast_interval`` time
    units from the processes in rotation (skipping crashed senders),
    alternating the ordering tier -- even ticks go through TO, odd ticks
    through CB -- so every chaos schedule exercises both towers over the
    same faults, for ``duration`` simulated time units (default: the
    plan's horizon plus one settle margin), then lets the network quiesce
    for up to ``settle_time``.  A monitor violation aborts the run
    immediately and is returned in the result rather than raised.
    """
    processes = tuple(sorted(processes))
    plan = plan if isinstance(plan, NemesisPlan) else NemesisPlan(plan or ())
    if duration is None:
        duration = plan.horizon + 50.0
    cluster = Cluster(
        processes,
        seed=seed,
        nemesis=Nemesis(plan),
        monitor=monitor,
        dvs_factory=dvs_factory,
        log_limit=log_limit,
        min_latency=min_latency,
        max_latency=max_latency,
    )
    net = cluster.net

    counter = [0]

    def broadcast_tick():
        if net.queue.now >= duration:
            return
        pid = processes[counter[0] % len(processes)]
        if net.alive(pid):
            ordering = "to" if counter[0] % 2 == 0 else "cb"
            payload = ("w", pid, counter[0])
            net.record("workload", (ordering, payload))
            cluster.bcast(pid, payload, ordering=ordering)
        counter[0] += 1
        net.queue.schedule(broadcast_interval, broadcast_tick)

    net.queue.schedule(broadcast_interval, broadcast_tick)

    violation = None
    try:
        cluster.start()
        cluster.run(duration)
        cluster.settle(max_time=settle_time, strict=False)
    except SafetyViolation as caught:
        violation = caught

    stats = dict(cluster.monitor.stats()) if cluster.monitor else {}
    stats.update(
        {
            "sim_time": net.queue.now,
            "net_events": len(net.log) + net.log.dropped,
            "wire_sends": sum(1 for _, k, _ in net.log if k == "send"),
            "drops": sum(
                1 for _, k, _ in net.log if k in ("drop", "fault_drop")
            ),
            "plan_ops": len(plan),
        }
    )
    result = ChaosResult(
        seed=seed,
        processes=processes,
        plan=plan,
        violation=violation,
        digest=log_digest(net.log),
        stats=stats,
        cluster=cluster if keep_cluster else None,
    )
    return result


def find_and_shrink(result, max_probes=200, **run_kwargs):
    """Shrink a failing :class:`ChaosResult` to a minimal repro.

    Re-runs the deterministic simulation with candidate sub-plans as the
    ddmin oracle; a candidate "fails" when it still trips a monitor.
    """
    if result.ok:
        raise ValueError("run did not violate safety: nothing to shrink")

    def fails(candidate):
        rerun = run_chaos(
            result.processes, seed=result.seed, plan=candidate, **run_kwargs
        )
        return rerun.violation is not None

    minimal, probes = shrink_plan(result.plan, fails, max_probes=max_probes)
    final = run_chaos(
        result.processes, seed=result.seed, plan=minimal, **run_kwargs
    )
    return ReproCase(
        seed=result.seed,
        processes=result.processes,
        plan=minimal,
        violation=final.violation or result.violation,
        probes=probes,
    )
