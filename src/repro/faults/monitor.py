"""Online safety monitoring of chaos runs.

A :class:`SafetyMonitor` attaches to the cluster's shared
:class:`~repro.gcs.recorder.ActionLog` as an observer and re-checks, on
*every* recorded event, the two end-to-end safety properties the paper
proves:

- **DVS dynamic intersection (Invariant 4.1)** -- whenever a new primary
  view is attempted, it must intersect every earlier attempted view not
  separated from it by a totally registered view (and views must arrive
  at each process in increasing identifier order, members only);
- **TO prefix consistency (Theorem 6.4)** -- every ``brcv`` must extend
  the process's delivery sequence consistently with one system-wide
  total order, with integrity (delivered payloads were broadcast) and no
  duplication;
- **CB causal order** -- every ``cb_brcv`` must satisfy, at its
  receiver, the vector-clock delivery condition the cast carries on the
  wire: it is the *next* cast from its sender in the receiver's current
  view (no gaps, no duplicates) and every cast in its causal past has
  already been delivered here, with integrity and per-view-slot content
  consistency.

Unlike the post-hoc trace checkers in :mod:`repro.checking.trace_props`
(which the monitor agrees with by construction), the monitor fails *fast*:
the raised :class:`SafetyViolation` carries the full action log and the
network event log up to the violating event, so a nemesis run stops at
the first bad state instead of thrashing for the rest of the schedule.
"""

from collections import defaultdict

from repro.core.viewids import vid_gt, vid_lt


class SafetyViolation(AssertionError):
    """A monitored safety property failed during a run.

    Attributes: ``prop`` (short property name), ``detail`` (diagnostic),
    ``time`` (simulated time), ``actions`` (timed action log up to and
    including the violating event) and ``net_log`` (the network's event
    log, when the monitor was given access to it).
    """

    def __init__(self, prop, detail, time=None, actions=(), net_log=()):
        self.prop = prop
        self.detail = detail
        self.time = time
        self.actions = list(actions)
        self.net_log = list(net_log)
        super().__init__(
            "[{0}] at t={1}: {2}".format(prop, time, detail)
        )

    def summary(self):
        return "{0}: {1}".format(self.prop, self.detail)


class SafetyMonitor:
    """Incremental checker of DVS Invariant 4.1 and TO prefix consistency.

    ``fail_fast=True`` (the default) raises :class:`SafetyViolation` from
    inside the event callback, aborting the run at the first violation;
    with ``fail_fast=False`` violations accumulate in ``violations`` and
    the run continues (useful for surveying how badly an ablated stack
    misbehaves).
    """

    def __init__(self, initial_view, fail_fast=True, net=None):
        self.fail_fast = fail_fast
        self.net = net
        self.violations = []
        self.checked_events = 0
        # DVS state: attempted (created) views, per-view registrations.
        self.initial_view = initial_view
        self.created = {initial_view.id: initial_view}
        self.current = {p: initial_view for p in initial_view.set}
        self.registered = defaultdict(set)
        self.registered[initial_view.id] = set(initial_view.set)
        self.totally_registered = {initial_view.id: initial_view}
        # TO state: broadcast set, per-process sequences, common order.
        self.broadcast = set()
        self.deliveries = defaultdict(list)
        self.common_order = []
        # CB state: broadcast set, per-process per-view delivered counts
        # (sender -> count), per-(view, sender, seqno) payload slots.
        self.cb_broadcast = set()
        self.cb_counts = defaultdict(dict)
        self.cb_slots = {}
        self._log = None  # ActionLog, set on attach

    # -- Wiring ------------------------------------------------------------

    def attach(self, action_log):
        """Observe ``action_log`` (see :class:`repro.gcs.recorder.ActionLog`)."""
        self._log = action_log
        action_log.observers.append(self.on_action)
        return self

    def restart_process(self, pid):
        """Forget ``pid``'s per-incarnation state after an amnesiac restart.

        The live runtime (:mod:`repro.runtime`) models a killed-and-
        restarted node as a *fresh process that reuses the id*: it rejoins
        with empty state and replays the confirmed total order from the
        beginning.  System-wide facts (created views, broadcasts, the
        common order, witnessed registrations) survive; the per-process
        delivery sequence and current-view pointer reset, so the new
        incarnation is checked as a fresh prefix of the same common order
        instead of tripping the no-duplication rule against its previous
        life.
        """
        self.deliveries.pop(pid, None)
        self.current.pop(pid, None)
        self.cb_counts.pop(pid, None)

    # -- Event dispatch ----------------------------------------------------

    def on_action(self, time, action):
        self.checked_events += 1
        name = action.name
        if name == "dvs_newview":
            view, pid = action.params
            self._on_newview(time, view, pid)
        elif name == "dvs_register":
            (pid,) = action.params
            self._on_register(time, pid)
        elif name == "bcast":
            payload, pid = action.params
            self.broadcast.add((payload, pid))
        elif name == "brcv":
            payload, origin, pid = action.params
            self._on_brcv(time, payload, origin, pid)
        elif name == "cbcast":
            payload, pid = action.params
            self.cb_broadcast.add((payload, pid))
        elif name == "cb_brcv":
            msg, origin, pid = action.params
            self._on_cb_brcv(time, msg, origin, pid)

    # -- DVS: view order + Invariant 4.1 -----------------------------------

    def _on_newview(self, time, view, pid):
        if pid not in view.set:
            self._fail("dvs-membership", time,
                       "{0} attempted view {1} it is not a member of"
                       .format(pid, view))
        previous = self.current.get(pid)
        if previous is not None and not vid_gt(view.id, previous.id):
            self._fail("dvs-view-order", time,
                       "{0} attempted {1} after {2} (ids not increasing)"
                       .format(pid, view, previous))
        self.current[pid] = view
        if view.id in self.created:
            if self.created[view.id].set != view.set:
                self._fail("dvs-view-identity", time,
                           "two views share id {0}: {1} vs {2}".format(
                               view.id, self.created[view.id], view))
            return
        # Invariant 4.1, incrementally: the new view only adds pairs that
        # include itself (it is not yet totally registered, so it cannot
        # separate an existing pair).
        for other in self.created.values():
            low, high = ((other, view) if vid_lt(other.id, view.id)
                         else (view, other))
            separated = any(
                vid_lt(low.id, x.id) and vid_lt(x.id, high.id)
                for x in self.totally_registered.values()
            )
            if not separated and not (low.set & high.set):
                self._fail(
                    "dvs-4.1-intersection", time,
                    "attempted views {0} and {1} are disjoint with no "
                    "totally registered view between them".format(low, high))
        self.created[view.id] = view

    def _on_register(self, time, pid):
        view = self.current.get(pid)
        if view is None:
            self._fail("dvs-register", time,
                       "{0} registered with no attempted view".format(pid))
        self.registered[view.id].add(pid)
        if self.registered[view.id] >= view.set:
            self.totally_registered[view.id] = view

    # -- TO: integrity, no duplication, prefix consistency -----------------

    def _on_brcv(self, time, payload, origin, pid):
        entry = (payload, origin)
        if entry not in self.broadcast:
            self._fail("to-integrity", time,
                       "{0} delivered {1!r} attributed to {2} before/without "
                       "its broadcast".format(pid, payload, origin))
        seq = self.deliveries[pid]
        position = len(seq)
        if position < len(self.common_order):
            expected = self.common_order[position]
            if entry != expected:
                self._fail(
                    "to-prefix-consistency", time,
                    "{0}'s delivery #{1} is {2!r} but the common order has "
                    "{3!r}".format(pid, position + 1, entry, expected))
        else:
            self.common_order.append(entry)
        if entry in seq:
            self._fail("to-no-duplication", time,
                       "{0} delivered {1!r} twice".format(pid, entry))
        seq.append(entry)

    # -- CB: integrity, gap-freedom, causal precedence ----------------------

    def _on_cb_brcv(self, time, msg, origin, pid):
        """Re-check the BSS delivery condition from the on-wire clock.

        ``msg.clock[origin]`` is the per-view per-sender sequence
        number; requiring it to be *exactly* one past the receiver's
        delivered count rules out gaps and duplicates at once, and the
        remaining clock entries -- the sender's causal past at send time
        -- must already be delivered here (causal precedence).
        """
        if (msg.payload, origin) not in self.cb_broadcast:
            self._fail("cb-integrity", time,
                       "{0} delivered {1!r} attributed to {2} before/"
                       "without its broadcast".format(pid, msg.payload,
                                                      origin))
        if msg.origin != origin:
            self._fail("cb-integrity", time,
                       "{0} delivered a cast stamped by {1} but attributed "
                       "to {2}".format(pid, msg.origin, origin))
        counts = self.cb_counts[pid].setdefault(msg.vid, {})
        clock = dict(msg.clock)
        seqno = clock.get(origin, 0)
        expected = counts.get(origin, 0) + 1
        if seqno != expected:
            self._fail(
                "cb-gap-free", time,
                "{0}'s delivery from {1} in view {2} carries seqno {3} "
                "but {4} is next (gap or duplicate)".format(
                    pid, origin, msg.vid, seqno, expected))
        for sender, count in sorted(clock.items()):
            if sender != origin and count > counts.get(sender, 0):
                self._fail(
                    "cb-causal-order", time,
                    "{0} delivered {1!r} from {2} whose clock requires "
                    "{3} cast(s) from {4} in view {5}, but only {6} "
                    "delivered".format(
                        pid, msg.payload, origin, count, sender, msg.vid,
                        counts.get(sender, 0)))
        slot = (msg.vid, origin, seqno)
        known = self.cb_slots.get(slot)
        if known is None:
            self.cb_slots[slot] = msg.payload
        elif known != msg.payload:
            self._fail(
                "cb-content-consistency", time,
                "view {0} slot {1}#{2} delivered as {3!r} at {4} but "
                "{5!r} elsewhere".format(
                    msg.vid, origin, seqno, msg.payload, pid, known))
        counts[origin] = seqno

    # -- Reporting ---------------------------------------------------------

    def _fail(self, prop, time, detail):
        violation = SafetyViolation(
            prop,
            detail,
            time=time,
            actions=self._log.timed_actions() if self._log is not None else (),
            net_log=self.net.log if self.net is not None else (),
        )
        self.violations.append(violation)
        if self.fail_fast:
            raise violation

    @property
    def ok(self):
        return not self.violations

    def stats(self):
        return {
            "events": self.checked_events,
            "attempted_views": len(self.created),
            "totally_registered": len(self.totally_registered),
            "broadcasts": len(self.broadcast),
            "deliveries": sum(len(s) for s in self.deliveries.values()),
            "cb_broadcasts": len(self.cb_broadcast),
            "cb_deliveries": sum(
                sum(counts.values())
                for by_view in self.cb_counts.values()
                for counts in by_view.values()
            ),
            "violations": len(self.violations),
        }
