"""Link-level fault models pluggable into the network simulator.

A fault object is installed with :meth:`Network.install_fault` and removed
with :meth:`Network.remove_fault`.  At every ``send`` the network runs the
message's *copy list* through each installed fault that matches the link
(a copy is an extra delay on top of the drawn latency; the fault-free case
is the single copy ``[0.0]``):

- dropping a copy models message loss below the partition layer;
- appending a copy models duplication (the per-channel FIFO clock keeps
  both copies in order);
- inflating a copy's delay models jitter and latency spikes.

Faults may also veto *delivery* (:meth:`LinkFault.blocks_delivery`), which
is how asymmetric one-way partitions work: like crashes and partitions,
the block is evaluated at delivery time, so in-flight messages crossing a
freshly blocked link are lost.

Every probabilistic choice draws from the **network's** seeded RNG, never
a private one, so a run with a given ``(seed, fault schedule)`` replays
bit-for-bit.
"""


def _normalize_links(links):
    """``None`` means every directed link; else a frozenset of (src, dst)."""
    if links is None:
        return None
    return frozenset((src, dst) for src, dst in links)


def _fmt_links(links):
    if links is None:
        return "*"
    return ",".join(
        "{0}->{1}".format(src, dst) for src, dst in sorted(links)
    )


class LinkFault:
    """Base class: matches a set of directed links, transforms copies."""

    def __init__(self, links=None):
        self.links = _normalize_links(links)

    def applies(self, src, dst):
        return self.links is None or (src, dst) in self.links

    def transform(self, net, src, dst, copies):
        """Return the new copy list (extra delays); ``[]`` drops the send."""
        return copies

    def blocks_delivery(self, src, dst):
        """Veto delivery on this link (checked at delivery time)."""
        return False

    def __str__(self):
        return "{0}({1})".format(type(self).__name__, _fmt_links(self.links))


class DropFault(LinkFault):
    """Drop each copy independently with probability ``prob``."""

    def __init__(self, prob, links=None):
        super().__init__(links)
        self.prob = prob

    def transform(self, net, src, dst, copies):
        return [c for c in copies if net.rng.random() >= self.prob]

    def __str__(self):
        return "drop(p={0}, links={1})".format(
            self.prob, _fmt_links(self.links)
        )


class DuplicateFault(LinkFault):
    """With probability ``prob``, deliver an extra copy ``spread`` later.

    The duplicate's extra delay is drawn uniformly from (0, ``spread``];
    per-channel FIFO still holds (the channel clock serializes copies), so
    duplication stresses the layers' idempotence, not their ordering.
    """

    def __init__(self, prob, spread=5.0, links=None):
        super().__init__(links)
        self.prob = prob
        self.spread = spread

    def transform(self, net, src, dst, copies):
        out = []
        for c in copies:
            out.append(c)
            if net.rng.random() < self.prob:
                out.append(c + net.rng.uniform(0.0, self.spread))
        return out

    def __str__(self):
        return "duplicate(p={0}, spread={1}, links={2})".format(
            self.prob, self.spread, _fmt_links(self.links)
        )


class DelayFault(LinkFault):
    """Add jitter to every copy, plus occasional latency spikes.

    Each copy gets uniform extra delay in [0, ``jitter``]; with
    probability ``spike_prob`` it additionally gets a spike drawn from
    (0, ``spike``].
    """

    def __init__(self, jitter=0.0, spike_prob=0.0, spike=0.0, links=None):
        super().__init__(links)
        self.jitter = jitter
        self.spike_prob = spike_prob
        self.spike = spike

    def transform(self, net, src, dst, copies):
        out = []
        for c in copies:
            extra = net.rng.uniform(0.0, self.jitter) if self.jitter else 0.0
            if self.spike_prob and net.rng.random() < self.spike_prob:
                extra += net.rng.uniform(0.0, self.spike)
            out.append(c + extra)
        return out

    def __str__(self):
        return "delay(jitter={0}, spike_prob={1}, spike={2}, links={3})".format(
            self.jitter, self.spike_prob, self.spike, _fmt_links(self.links)
        )


class OneWayBlock(LinkFault):
    """Block the given directed links entirely (asymmetric partition).

    Unlike :meth:`Network.partition` this need not be symmetric or
    transitive: ``a`` may reach ``b`` while ``b`` cannot reach ``a``, and
    a "bridge" process may keep links into two groups that cannot talk to
    each other directly.
    """

    def __init__(self, pairs):
        super().__init__(links=pairs)
        if self.links is None:
            raise ValueError("OneWayBlock needs an explicit set of links")

    def blocks_delivery(self, src, dst):
        return (src, dst) in self.links

    def __str__(self):
        return "oneway({0})".format(_fmt_links(self.links))
