"""Fault injection, online safety monitoring and counterexample shrinking.

The paper's guarantees are safety properties that must hold under an
*arbitrary* fair-lossy adversary, not just the clean symmetric partitions
the original simulator scripts produced.  This package supplies that
adversary and the machinery to check the stack against it:

- :mod:`repro.faults.models` -- link-level fault models pluggable into
  :class:`repro.net.simulator.Network`: probabilistic drop, duplication,
  delay jitter/spikes, asymmetric one-way link blocks.  All randomness
  comes from the network's seeded RNG, so every faulty run replays
  deterministically.
- :mod:`repro.faults.nemesis` -- composable, timed fault *plans*
  (crash-recovery storms, partition churn, flaky-link windows, bridge
  topologies) executed as discrete events by a :class:`Nemesis`
  scheduler.
- :mod:`repro.faults.monitor` -- an online safety monitor checking the
  DVS view-intersection property (Invariant 4.1) and TO
  prefix-consistency on every view/delivery event, failing fast with the
  full event log.
- :mod:`repro.faults.shrink` -- delta-debugging of nemesis plans: when a
  monitor trips, reduce the fault schedule to a minimal failing one and
  emit a replayable ``(seed, plan)`` repro.
- :mod:`repro.faults.harness` -- one-call chaos runs over
  :class:`repro.gcs.cluster.Cluster` (workload + nemesis + monitor),
  used by the ``repro chaos`` CLI and the chaos benchmark.
"""

from repro.faults.harness import ChaosResult, run_chaos
from repro.faults.models import (
    DelayFault,
    DropFault,
    DuplicateFault,
    LinkFault,
    OneWayBlock,
)
from repro.faults.monitor import SafetyMonitor, SafetyViolation
from repro.faults.nemesis import (
    FaultOp,
    Nemesis,
    NemesisPlan,
    bridge_topology,
    compose,
    crash_recovery_storm,
    flaky_link_windows,
    partition_churn,
    plan_from_scenario,
)
from repro.faults.shrink import ReproCase, shrink_plan

__all__ = [
    "ChaosResult",
    "DelayFault",
    "DropFault",
    "DuplicateFault",
    "FaultOp",
    "LinkFault",
    "Nemesis",
    "NemesisPlan",
    "OneWayBlock",
    "ReproCase",
    "SafetyMonitor",
    "SafetyViolation",
    "bridge_topology",
    "compose",
    "crash_recovery_storm",
    "flaky_link_windows",
    "partition_churn",
    "plan_from_scenario",
    "run_chaos",
    "shrink_plan",
]
