"""Composable, timed fault plans and the nemesis scheduler.

A :class:`NemesisPlan` is an immutable, serializable schedule of
:class:`FaultOp` values -- (time, kind, args) -- and a :class:`Nemesis`
executes one against a :class:`~repro.net.simulator.Network` as ordinary
discrete events.  Because plans are plain data, they can be generated
from a seed, merged (:func:`compose`), minimized by delta-debugging
(:mod:`repro.faults.shrink`) and replayed exactly from ``(seed, plan)``.

Op kinds and their args:

=============  =========================================================
``crash``      ``(pid,)``
``recover``    ``(pid,)``
``partition``  ``(groups,)`` -- tuple of tuples of pids
``heal``       ``()``
``drop``       ``(links, prob, duration)``
``duplicate``  ``(links, prob, spread, duration)``
``delay``      ``(links, jitter, spike_prob, spike, duration)``
``oneway``     ``(pairs, duration)``
=============  =========================================================

``links``/``pairs`` are tuples of ``(src, dst)`` pairs, or ``None`` for
every link.  Windowed kinds install a fault model at ``at`` and remove it
``duration`` later.
"""

import json
import random
from dataclasses import dataclass

from repro.faults.models import (
    DelayFault,
    DropFault,
    DuplicateFault,
    OneWayBlock,
)

WINDOW_KINDS = ("drop", "duplicate", "delay", "oneway")
KINDS = ("crash", "recover", "partition", "heal") + WINDOW_KINDS


def _freeze(value):
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value) if isinstance(value, (set, frozenset)) else value
        return tuple(_freeze(v) for v in items)
    return value


@dataclass(frozen=True, order=True)
class FaultOp:
    """One scheduled fault action."""

    at: float
    kind: str
    args: tuple = ()

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError("unknown fault kind {0!r}".format(self.kind))
        object.__setattr__(self, "args", _freeze(self.args))

    @property
    def end(self):
        """When the op's effect is fully applied (window end for windows)."""
        if self.kind in WINDOW_KINDS:
            return self.at + self.args[-1]
        return self.at

    def describe(self):
        return "t={0:g} {1}{2!r}".format(self.at, self.kind, self.args)


class NemesisPlan:
    """An immutable, time-sorted schedule of fault ops."""

    def __init__(self, ops=()):
        ops = [op if isinstance(op, FaultOp) else FaultOp(*op) for op in ops]
        # Stable sort on (time, kind) only: args may mix None and tuples,
        # which do not compare.
        self.ops = tuple(sorted(ops, key=lambda op: (op.at, op.kind)))

    def __len__(self):
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def __eq__(self, other):
        return isinstance(other, NemesisPlan) and self.ops == other.ops

    def __hash__(self):
        return hash(self.ops)

    def __repr__(self):
        return "NemesisPlan({0} ops, horizon={1:g})".format(
            len(self.ops), self.horizon
        )

    @property
    def horizon(self):
        """Simulated time by which every op has fully played out."""
        return max((op.end for op in self.ops), default=0.0)

    def subset(self, indices):
        keep = set(indices)
        return NemesisPlan(
            op for i, op in enumerate(self.ops) if i in keep
        )

    def without(self, indices):
        drop = set(indices)
        return NemesisPlan(
            op for i, op in enumerate(self.ops) if i not in drop
        )

    def describe(self):
        return "\n".join(op.describe() for op in self.ops)

    def scaled(self, factor):
        """Uniformly rescale the schedule's time axis.

        Both op times and window durations are multiplied by ``factor``,
        so a plan authored in simulator time units (tens of units) can be
        replayed against the live runtime in wall-clock seconds (e.g.
        ``plan.scaled(0.1)``) without changing its shape.
        """
        ops = []
        for op in self.ops:
            args = op.args
            if op.kind in WINDOW_KINDS:
                args = args[:-1] + (args[-1] * factor,)
            ops.append(FaultOp(op.at * factor, op.kind, args))
        return NemesisPlan(ops)

    # -- Serialization (replayable repros) ---------------------------------

    def to_jsonable(self):
        return [[op.at, op.kind, _to_lists(op.args)] for op in self.ops]

    @classmethod
    def from_jsonable(cls, data):
        return cls(FaultOp(at, kind, _freeze(args)) for at, kind, args in data)

    def to_json(self):
        return json.dumps(self.to_jsonable())

    @classmethod
    def from_json(cls, text):
        return cls.from_jsonable(json.loads(text))


def _to_lists(value):
    if isinstance(value, tuple):
        return [_to_lists(v) for v in value]
    return value


def compose(*plans):
    """Merge several plans (or op iterables) into one schedule."""
    ops = []
    for plan in plans:
        ops.extend(plan)
    return NemesisPlan(ops)


class Nemesis:
    """Executes a :class:`NemesisPlan` against a network as timed events."""

    def __init__(self, plan):
        self.plan = plan if isinstance(plan, NemesisPlan) else NemesisPlan(plan)
        self.applied = []

    def arm(self, net):
        """Schedule every op on the network's event queue."""
        for op in self.plan:
            delay = max(0.0, op.at - net.queue.now)
            net.queue.schedule(delay, self._apply_thunk(net, op))
        return self

    def _apply_thunk(self, net, op):
        def apply():
            net.record("nemesis", op.describe())
            self.applied.append(op)
            self._apply(net, op)

        return apply

    def _apply(self, net, op):
        kind, args = op.kind, op.args
        if kind == "crash":
            net.crash(args[0])
        elif kind == "recover":
            net.recover(args[0])
        elif kind == "partition":
            net.partition([set(g) for g in args[0]])
        elif kind == "heal":
            net.heal()
        else:
            fault, duration = self._build_fault(kind, args)
            net.install_fault(fault)
            net.queue.schedule(duration, lambda: net.remove_fault(fault))

    @staticmethod
    def _build_fault(kind, args):
        if kind == "drop":
            links, prob, duration = args
            return DropFault(prob, links=links), duration
        if kind == "duplicate":
            links, prob, spread, duration = args
            return DuplicateFault(prob, spread=spread, links=links), duration
        if kind == "delay":
            links, jitter, spike_prob, spike, duration = args
            return (
                DelayFault(jitter=jitter, spike_prob=spike_prob, spike=spike,
                           links=links),
                duration,
            )
        if kind == "oneway":
            pairs, duration = args
            return OneWayBlock(pairs), duration
        raise ValueError("unknown window kind {0!r}".format(kind))


# -- Plan generators (all deterministic in their seed) -------------------------


def _random_groups(rng, procs, max_groups):
    """Partition ``procs`` into 1..max_groups nonempty random groups."""
    procs = sorted(procs)
    count = rng.randint(1, min(max_groups, len(procs)))
    shuffled = procs[:]
    rng.shuffle(shuffled)
    groups = [[] for _ in range(count)]
    for index in range(count):
        groups[index].append(shuffled[index])
    for pid in shuffled[count:]:
        groups[rng.randrange(count)].append(pid)
    return tuple(tuple(sorted(g)) for g in groups)


def crash_recovery_storm(procs, seed=0, start=10.0, duration=120.0,
                         crashes=6, min_down=5.0, max_down=30.0,
                         spare=1):
    """Random crash/recover pairs inside the window.

    At most ``len(procs) - spare`` processes are ever down at once, so a
    workload can keep making progress between shots.
    """
    rng = random.Random(seed)
    procs = sorted(procs)
    ops = []
    down = []  # (recover_time, pid)
    for _ in range(crashes):
        at = rng.uniform(start, start + duration)
        down = [(t, p) for t, p in down if t > at]
        if len(down) >= len(procs) - spare:
            continue
        pid = rng.choice([p for p in procs if p not in {q for _, q in down}])
        back = at + rng.uniform(min_down, max_down)
        ops.append(FaultOp(at, "crash", (pid,)))
        ops.append(FaultOp(back, "recover", (pid,)))
        down.append((back, pid))
    return NemesisPlan(ops)


def partition_churn(procs, seed=0, start=10.0, duration=120.0, period=15.0,
                    max_groups=3, heal_at_end=True):
    """Repartition the whole network every ~``period`` time units."""
    rng = random.Random(seed)
    procs = sorted(procs)
    ops = []
    at = start
    while at < start + duration:
        groups = _random_groups(rng, procs, max_groups)
        ops.append(FaultOp(at, "partition", (groups,)))
        at += rng.uniform(0.5 * period, 1.5 * period)
    if heal_at_end:
        ops.append(FaultOp(start + duration, "heal"))
    return NemesisPlan(ops)


def flaky_link_windows(procs, seed=0, start=10.0, duration=120.0, windows=4,
                       prob=0.4, min_len=5.0, max_len=20.0, links_per=2):
    """Windows during which a few random directed links drop messages."""
    rng = random.Random(seed)
    procs = sorted(procs)
    ops = []
    for _ in range(windows):
        at = rng.uniform(start, start + duration)
        length = rng.uniform(min_len, max_len)
        links = []
        for _ in range(links_per):
            src = rng.choice(procs)
            dst = rng.choice([p for p in procs if p != src])
            links.append((src, dst))
        ops.append(FaultOp(at, "drop", (tuple(links), prob, length)))
    return NemesisPlan(ops)


def bridge_topology(group_a, group_b, bridge, at=10.0, duration=60.0):
    """Split two groups that can each still reach a bridge process.

    Symmetric component partitions cannot express this topology; it is
    built from one-way blocks severing every direct link between the two
    groups while the bridge keeps links into both.  The classic stress
    for view agreement: connectivity is not transitive.
    """
    a = sorted(set(group_a) - {bridge})
    b = sorted(set(group_b) - {bridge})
    pairs = []
    for x in a:
        for y in b:
            pairs.append((x, y))
            pairs.append((y, x))
    return NemesisPlan([FaultOp(at, "oneway", (tuple(pairs), duration))])


def plan_from_scenario(scenario, period=15.0, start=0.0):
    """Convert an :mod:`repro.analysis.scenarios` connectivity history
    (a list of configurations, each a list of disjoint process sets) into
    a timed nemesis plan, one configuration every ``period`` units.

    This replaces the ad-hoc scripting that previously replayed scenario
    lists against the simulator by hand.
    """
    ops = []
    alive_union = set()
    for config in scenario:
        for group in config:
            alive_union |= set(group)
    at = start
    for config in scenario:
        groups = tuple(tuple(sorted(g)) for g in config)
        if len(groups) == 1 and set(groups[0]) == alive_union:
            ops.append(FaultOp(at, "heal"))
        else:
            ops.append(FaultOp(at, "partition", (groups,)))
        at += period
    return NemesisPlan(ops)
