"""Counterexample shrinking for nemesis plans (delta debugging).

When a safety monitor trips during a chaos run, the raw nemesis plan is
usually far larger than what is needed to reproduce the bug.  This module
implements the classic ddmin algorithm of Zeller/Hildebrandt over the
plan's op list: it searches for a *1-minimal* failing schedule -- removing
any single remaining op makes the violation disappear -- re-running the
(deterministic) simulation as its oracle.

The result is packaged as a :class:`ReproCase`: a ``(seed, plan)`` pair
plus the command line that replays it.
"""

from dataclasses import dataclass, field


def shrink_plan(plan, fails, max_probes=500):
    """Minimize ``plan`` while ``fails(plan)`` stays true.

    ``fails`` is a deterministic oracle: True iff running the candidate
    plan still reproduces the violation.  ``fails(plan)`` must hold for
    the input plan.  Returns ``(minimal_plan, probes)`` where ``probes``
    is the number of oracle calls spent.

    The op *list* is minimized (ddmin to 1-minimality); op parameters are
    left untouched -- a time or probability is data the replay needs, not
    schedule structure.
    """
    probes = [0]
    cache = {}

    def oracle(candidate):
        key = candidate.ops
        if key not in cache:
            if probes[0] >= max_probes:
                return False
            probes[0] += 1
            cache[key] = fails(candidate)
        return cache[key]

    if not oracle(plan):
        raise ValueError("the initial plan does not fail: nothing to shrink")

    current = plan
    granularity = 2
    while len(current) >= 2:
        indices = list(range(len(current)))
        chunk = max(1, len(indices) // granularity)
        subsets = [
            indices[i:i + chunk] for i in range(0, len(indices), chunk)
        ]
        reduced = False
        # Try each chunk alone, then each complement.
        for subset in subsets:
            candidate = current.subset(subset)
            if len(candidate) < len(current) and oracle(candidate):
                current, granularity, reduced = candidate, 2, True
                break
        if not reduced:
            for subset in subsets:
                candidate = current.without(subset)
                if len(candidate) < len(current) and oracle(candidate):
                    current = candidate
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), 2 * granularity)
    return current, probes[0]


@dataclass
class ReproCase:
    """A replayable counterexample: seed + minimal plan + how to rerun it."""

    seed: int
    processes: tuple
    plan: object
    violation: object = None
    probes: int = 0
    extra_args: dict = field(default_factory=dict)

    def command(self):
        """The ``repro chaos`` invocation replaying this counterexample."""
        parts = [
            "python -m repro chaos",
            "--seed {0}".format(self.seed),
            "--processes {0}".format(len(self.processes)),
            "--plan-json '{0}'".format(self.plan.to_json()),
        ]
        for flag, value in sorted(self.extra_args.items()):
            if value is True:
                parts.append("--{0}".format(flag))
            elif value not in (None, False):
                parts.append("--{0} {1}".format(flag, value))
        return " ".join(parts)

    def describe(self):
        lines = [
            "seed: {0}".format(self.seed),
            "processes: {0}".format(", ".join(map(str, self.processes))),
            "minimal plan ({0} ops, {1} probes):".format(
                len(self.plan), self.probes
            ),
        ]
        lines.extend("  " + op.describe() for op in self.plan)
        if self.violation is not None:
            lines.append("violation: {0}".format(self.violation.summary()))
        lines.append("replay: {0}".format(self.command()))
        return "\n".join(lines)
