"""Invariants of DVS (Section 4) and DVS-IMPL (Section 5.2).

The spec-level suite (:func:`dvs_spec_invariants`) checks Invariants 4.1
and 4.2 on states of :class:`repro.dvs.spec.DVSSpec`.

The implementation-level suite (:func:`dvs_impl_invariants`) checks
Invariants 5.1-5.6 on composition states of DVS-IMPL.  One statement is
adjusted relative to the paper's text: Invariant 5.3 part 1 is restricted
to views ``w`` with ``w.id < g``.  The unrestricted statement is falsified
by the algorithm itself (after ``info-sent[g]_p`` is recorded, p goes on to
attempt the view with identifier ``g``, which appears in neither ``{x} ∪ X``
nor below ``x.id``); the paper's proofs of Invariants 5.4 and 5.5 only ever
apply part 1 to views with ``w.id < g``, so the restricted form is the one
actually used.
"""

from repro.core.viewids import vid_ge, vid_gt, vid_le, vid_lt
from repro.dvs.impl import DvsImplState
from repro.dvs.spec import tot_att as spec_tot_att
from repro.dvs.spec import tot_reg as spec_tot_reg
from repro.dvs.vs_to_dvs import use_views
from repro.ioa.invariants import InvariantSuite


# -- Specification invariants (Section 4) -------------------------------------


def invariant_4_1(state):
    """Invariant 4.1 (DVS): the dynamic intersection property.

    If ``v, w ∈ created``, ``v.id < w.id``, and no ``x ∈ TotReg`` has
    ``v.id < x.id < w.id``, then ``v.set ∩ w.set ≠ {}``.
    """
    created = sorted(state.created, key=lambda v: v.id)
    registered = spec_tot_reg(state)
    for i, v in enumerate(created):
        for w in created[i + 1:]:
            separated = any(
                vid_lt(v.id, x.id) and vid_lt(x.id, w.id)
                for x in registered
            )
            if separated:
                continue
            assert v.set & w.set, (
                "views {0} and {1} are disjoint with no totally registered "
                "view between them".format(v, w)
            )
    return True


def invariant_4_2(state):
    """Invariant 4.2 (DVS): a totally attempted view deactivates older ones.

    If ``v ∈ created``, ``w ∈ TotAtt`` and ``v.id < w.id``, then some
    ``p ∈ v.set`` has ``current-viewid[p] > v.id``.
    """
    totally_attempted = spec_tot_att(state)
    for w in totally_attempted:
        for v in state.created:
            if not vid_lt(v.id, w.id):
                continue
            assert any(
                vid_gt(state.current_viewid[p], v.id) for p in v.set
            ), (
                "{0} is totally attempted but every member of older view "
                "{1} still has current-viewid <= {2}".format(w, v, v.id)
            )
    return True


def dvs_spec_invariants():
    """The suite for DVS specification states (Invariants 4.1-4.2)."""
    return InvariantSuite(
        {
            "DVS 4.1 dynamic intersection": invariant_4_1,
            "DVS 4.2 total attempt deactivates": invariant_4_2,
        }
    )


# -- Implementation invariants (Section 5.2) --------------------------------------


def _wrap(processes, predicate):
    """Lift a predicate on :class:`DvsImplState` to composition states."""

    def check(composition_state):
        return predicate(DvsImplState(composition_state, processes))

    check.__doc__ = predicate.__doc__
    check.__name__ = predicate.__name__
    return check


def invariant_5_1(impl):
    """Invariant 5.1: attempted views bound members' VS views from below.

    If ``v ∈ attempted_p`` and ``q ∈ v.set`` then ``cur.id_q >= v.id``.
    """
    for p in impl.processes:
        for v in impl.attempted_at(p):
            for q in v.set:
                cur = impl.proc(q).cur
                cur_id = None if cur is None else cur.id
                assert vid_ge(cur_id, v.id), (
                    "{0} attempted at {1} but member {2} has cur = "
                    "{3}".format(v, p, q, cur)
                )
    return True


def invariant_5_2(impl):
    """Invariant 5.2: sanity of ``act``, ``amb`` and ``info-sent``.

    1. ``act_p ∈ TotReg``;
    2. ``w ∈ amb_p  =>  act.id_p < w.id``;
    3. ``cur_p != ⊥ ∧ w ∈ use_p  =>  w.id <= cur.id_p``
       (and ``use_p = {v0}`` while ``cur_p = ⊥``);
    4. ``info-sent[g]_p = <x, X>  =>  x ∈ TotReg``;
    5. ``info-sent[g]_p = <x, X> ∧ w ∈ X  =>  x.id < w.id``;
    6. ``info-sent[g]_p = <x, X> ∧ w ∈ {x} ∪ X  =>  w.id < g``.

    Part 3 adjusts the paper's statement (``w.id <= client-cur.id_p``):
    merging a peer's "info" during the exchange for a view p has not yet
    attempted legitimately raises ``use_p`` above ``client-cur_p`` (we
    found reachable counterexamples), but never above ``cur_p`` -- every
    view mentioned in an "info" for view g has id < g (part 6), and
    garbage collection stops at ``cur``.  The bound by ``cur`` is the
    fact the proofs of Invariants 5.4/5.5 actually consume (they need
    ``use_p`` ids below the view being attempted, which equals ``cur_p``).
    """
    registered = impl.tot_reg
    for p in impl.processes:
        proc = impl.proc(p)
        assert proc.act in registered, (
            "act_{0} = {1} is not totally registered".format(p, proc.act)
        )
        for w in proc.amb:
            assert vid_lt(proc.act.id, w.id), (
                "amb_{0} holds {1} at or below act {2}".format(
                    p, w, proc.act
                )
            )
        if proc.cur is not None:
            for w in use_views(proc):
                assert vid_le(w.id, proc.cur.id), (
                    "use_{0} holds {1} above cur {2}".format(
                        p, w, proc.cur
                    )
                )
        else:
            assert proc.amb == set(), (
                "use_{0} grew before any view arrived".format(p)
            )
        for g, sent in proc.info_sent.nondefault_items().items():
            x, amb_sent = sent
            assert x in registered, (
                "info-sent[{0}]_{1} carries act {2} not totally "
                "registered".format(g, p, x)
            )
            for w in amb_sent:
                assert vid_lt(x.id, w.id), (
                    "info-sent[{0}]_{1}: {2} at or below act {3}".format(
                        g, p, w, x
                    )
                )
            for w in {x} | set(amb_sent):
                assert vid_lt(w.id, g), (
                    "info-sent[{0}]_{1} mentions {2} with id >= {0}".format(
                        g, p, w
                    )
                )
    return True


def invariant_5_3(impl):
    """Invariant 5.3: views survive in "info" messages until collected.

    1. ``info-sent[g]_p = <x, X> ∧ w ∈ attempted_p ∧ w.id < g  =>
       w ∈ {x} ∪ X  ∨  w.id < x.id``  (see the module docstring for the
       ``w.id < g`` restriction);
    2. ``info-rcvd[q, g]_p = <x, X> ∧ w ∈ {x} ∪ X  =>
       w ∈ use_p  ∨  w.id < act.id_p``.
    """
    for p in impl.processes:
        proc = impl.proc(p)
        for g, sent in proc.info_sent.nondefault_items().items():
            x, amb_sent = sent
            mentioned = {x} | set(amb_sent)
            for w in proc.attempted:
                if not vid_lt(w.id, g):
                    continue
                assert w in mentioned or vid_lt(w.id, x.id), (
                    "attempted {0} of {1} missing from info-sent[{2}] "
                    "and not collected (act {3})".format(w, p, g, x)
                )
        in_use = use_views(proc)
        for (q, g), rcvd in proc.info_rcvd.nondefault_items().items():
            x, amb_rcvd = rcvd
            for w in {x} | set(amb_rcvd):
                assert w in in_use or vid_lt(w.id, proc.act.id), (
                    "info-rcvd[{0},{1}]_{2} mentions {3} neither in use "
                    "nor below act {4}".format(q, g, p, w, proc.act)
                )
    return True


def invariant_5_4(impl):
    """Invariant 5.4: chained attempts share a majority.

    If ``v ∈ attempted_p``, ``q ∈ v.set``, ``w ∈ attempted_q``,
    ``w.id < v.id``, and no ``x ∈ TotReg`` has ``w.id < x.id < v.id``,
    then ``|v.set ∩ w.set| > |w.set| / 2``.
    """
    registered = impl.tot_reg
    for p in impl.processes:
        for v in impl.attempted_at(p):
            for q in v.set:
                for w in impl.attempted_at(q):
                    if not vid_lt(w.id, v.id):
                        continue
                    separated = any(
                        vid_lt(w.id, x.id) and vid_lt(x.id, v.id)
                        for x in registered
                    )
                    if separated:
                        continue
                    assert v.majority_of(w), (
                        "{0} (attempted at {1}) lacks a majority of {2} "
                        "(attempted at common member {3})".format(v, w, w, q)
                    )
    return True


def invariant_5_5(impl):
    """Invariant 5.5: attempts majority-intersect the last registered view.

    If ``v ∈ Att``, ``w ∈ TotReg``, ``w.id < v.id``, and no ``x ∈ TotReg``
    has ``w.id < x.id < v.id``, then ``|v.set ∩ w.set| > |w.set| / 2``.
    """
    registered = impl.tot_reg
    for v in impl.att:
        for w in registered:
            if not vid_lt(w.id, v.id):
                continue
            separated = any(
                vid_lt(w.id, x.id) and vid_lt(x.id, v.id)
                for x in registered
            )
            if separated:
                continue
            assert v.majority_of(w), (
                "attempted {0} lacks a majority of the latest preceding "
                "totally registered view {1}".format(v, w)
            )
    return True


def invariant_5_6(impl):
    """Invariant 5.6: attempted views satisfy the DVS intersection property.

    If ``v, w ∈ Att``, ``w.id < v.id``, and no ``x ∈ TotReg`` has
    ``w.id < x.id < v.id``, then ``v.set ∩ w.set != {}``.
    """
    registered = impl.tot_reg
    attempted = sorted(impl.att, key=lambda v: v.id)
    for i, w in enumerate(attempted):
        for v in attempted[i + 1:]:
            separated = any(
                vid_lt(w.id, x.id) and vid_lt(x.id, v.id)
                for x in registered
            )
            if separated:
                continue
            assert v.intersects(w), (
                "attempted views {0} and {1} are disjoint with no totally "
                "registered view between them".format(w, v)
            )
    return True


def vs_view_tracking(impl):
    """Auxiliary: each filter's ``cur`` tracks its VS current view.

    ``VS-TO-DVS_p`` sets ``cur`` exactly on ``vs-newview`` inputs, which is
    also when VS updates ``current-viewid[p]``; the refinement's treatment
    of ``msgs-to-vs`` relies on the two never diverging.
    """
    for p in impl.processes:
        cur = impl.proc(p).cur
        cur_id = None if cur is None else cur.id
        assert impl.vs.current_viewid[p] == cur_id, (
            "VS current-viewid[{0}] = {1} but filter cur = {2}".format(
                p, impl.vs.current_viewid[p], cur
            )
        )
    return True


def dvs_impl_invariants(processes):
    """The suite for DVS-IMPL composition states (Invariants 5.1-5.6)."""
    processes = sorted(processes)
    return InvariantSuite(
        {
            "DVS-IMPL 5.1 attempt bounds cur": _wrap(processes, invariant_5_1),
            "DVS-IMPL 5.2 act/amb/info-sent sanity": _wrap(
                processes, invariant_5_2
            ),
            "DVS-IMPL 5.3 info completeness": _wrap(processes, invariant_5_3),
            "DVS-IMPL 5.4 chained majority": _wrap(processes, invariant_5_4),
            "DVS-IMPL 5.5 majority of last registered": _wrap(
                processes, invariant_5_5
            ),
            "DVS-IMPL 5.6 attempted intersection": _wrap(
                processes, invariant_5_6
            ),
            "DVS-IMPL aux vs view tracking": _wrap(
                processes, vs_view_tracking
            ),
        }
    )
