"""DVS: the dynamic view-oriented group communication service.

- :mod:`repro.dvs.spec` -- the DVS specification automaton (Figure 2);
- :mod:`repro.dvs.vs_to_dvs` -- the per-process implementation automaton
  ``VS-TO-DVS_p`` (Figure 3);
- :mod:`repro.dvs.impl` -- DVS-IMPL, the composition of all ``VS-TO-DVS_p``
  with VS, VS actions hidden (Section 5.1);
- :mod:`repro.dvs.invariants` -- Invariants 4.1-4.2 (spec) and 5.1-5.6
  (implementation);
- :mod:`repro.dvs.refinement` -- the refinement ℱ of Figure 4 and the
  mechanized Theorem 5.9 check;
- :mod:`repro.dvs.ablation` -- deliberately broken variants of
  ``VS-TO-DVS_p`` used to show the invariants are not vacuous (E7).
"""

from repro.dvs.impl import DVS_IMPL_NAME, build_dvs_impl, dvs_impl_derived
from repro.dvs.invariants import dvs_impl_invariants, dvs_spec_invariants
from repro.dvs.refinement import (
    dvs_refinement_checker,
    refinement_f,
)
from repro.dvs.spec import DVSSpec, DVSState, tot_reg
from repro.dvs.state_exchange import (
    SXDVSSpec,
    VsToSxDvs,
    sx_refinement_checker,
)
from repro.dvs.vs_to_dvs import AckMsg, LiteralSafeVsToDvs, VsToDvs

__all__ = [
    "AckMsg",
    "DVS_IMPL_NAME",
    "DVSSpec",
    "DVSState",
    "LiteralSafeVsToDvs",
    "SXDVSSpec",
    "VsToDvs",
    "VsToSxDvs",
    "sx_refinement_checker",
    "build_dvs_impl",
    "dvs_impl_derived",
    "dvs_impl_invariants",
    "dvs_refinement_checker",
    "dvs_spec_invariants",
    "refinement_f",
    "tot_reg",
]
