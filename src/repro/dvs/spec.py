"""The DVS specification automaton (Figure 2).

DVS differs from VS in three ways (Section 4):

1. ``DVS-REGISTER_p`` lets the client at p tell the service it has gathered
   whatever information it needs to operate in its current view; recorded
   in ``registered[g]``.
2. ``attempted[g]`` remembers which processes have been told about each
   view (used in the proofs); derived sets ``Att``, ``TotAtt``, ``Reg``,
   ``TotReg`` are defined from these.
3. ``DVS-CREATEVIEW(v)`` only creates *primary* views: the new view must
   intersect every created view ``w`` unless a totally registered view lies
   strictly between them (in either identifier order, since DVS allows
   out-of-order creation).

Signature::

    Input:    DVS-GPSND(m)_p           dvs_gpsnd(m, p)
              DVS-REGISTER_p           dvs_register(p)
    Output:   DVS-GPRCV(m)_{p,q}       dvs_gprcv(m, p, q)
              DVS-SAFE(m)_{p,q}        dvs_safe(m, p, q)
              DVS-NEWVIEW(v)_p         dvs_newview(v, p)
    Internal: DVS-CREATEVIEW(v)        dvs_createview(v)
              DVS-ORDER(m, p, g)       dvs_order(m, p, g)
"""

from repro.core.sequences import head, nth, remove_head
from repro.core.tables import Table
from repro.core.viewids import vid_gt, vid_lt
from repro.ioa.action import act
from repro.ioa.automaton import TransitionAutomaton
from repro.ioa.state import State


class DVSState(State):
    """State of DVS, named as in Figure 2."""

    def __init__(self, initial_view, universe):
        super().__init__(
            created={initial_view},
            current_viewid={
                p: (initial_view.id if p in initial_view.set else None)
                for p in sorted(universe)
            },
            queue=Table(list),
            attempted=Table(frozenset, {initial_view.id: initial_view.set}),
            registered=Table(frozenset, {initial_view.id: initial_view.set}),
            pending=Table(list),
            next=Table(lambda: 1),
            next_safe=Table(lambda: 1),
        )


# -- Derived variables (Figure 2) ---------------------------------------------


def attempted_views(state):
    """``Att``: created views attempted at some member."""
    return {
        v for v in state.created if state.attempted.get(v.id) & v.set
    }


def tot_att(state):
    """``TotAtt``: created views attempted at every member."""
    return {
        v for v in state.created if v.set <= state.attempted.get(v.id)
    }


def reg_views(state):
    """``Reg``: created views registered at some member."""
    return {
        v for v in state.created if state.registered.get(v.id) & v.set
    }


def tot_reg(state):
    """``TotReg``: created views registered at every member."""
    return {
        v for v in state.created if v.set <= state.registered.get(v.id)
    }


def _separated_by_tot_reg(state, low_id, high_id):
    """Whether some ``x ∈ TotReg`` has ``low_id < x.id < high_id``."""
    return any(
        vid_lt(low_id, x.id) and vid_lt(x.id, high_id)
        for x in tot_reg(state)
    )


class DVSSpec(TransitionAutomaton):
    """The DVS service automaton (Figure 2).

    As with :class:`~repro.vs.spec.VSSpec`, the internal nondeterminism of
    view creation is made executable with a finite ``view_pool``; `apply`
    itself accepts any view satisfying the Figure 2 precondition.
    """

    inputs = frozenset({"dvs_gpsnd", "dvs_register"})
    outputs = frozenset({"dvs_gprcv", "dvs_safe", "dvs_newview"})
    internals = frozenset({"dvs_createview", "dvs_order"})

    def __init__(self, initial_view, universe=None, view_pool=(), name="dvs"):
        self.name = name
        self.initial_view = initial_view
        self.view_pool = tuple(view_pool)
        members = set(initial_view.set)
        for view in self.view_pool:
            members |= view.set
        if universe is not None:
            members |= set(universe)
        self.universe = frozenset(members)

    def initial_state(self):
        return DVSState(self.initial_view, self.universe)

    # -- DVS-CREATEVIEW(v) -----------------------------------------------------

    def pre_dvs_createview(self, state, v):
        """The primary-view condition of Figure 2.

        ``v.id`` must be fresh, and for every created ``w`` either a totally
        registered view separates them (in either order) or their
        memberships intersect.
        """
        if any(v.id == w.id for w in state.created):
            return False
        for w in state.created:
            if _separated_by_tot_reg(state, w.id, v.id):
                continue
            if _separated_by_tot_reg(state, v.id, w.id):
                continue
            if v.set & w.set:
                continue
            return False
        return True

    def eff_dvs_createview(self, state, v):
        state.created.add(v)

    def cand_dvs_createview(self, state):
        for view in self.view_pool:
            if self.pre_dvs_createview(state, view):
                yield act("dvs_createview", view)

    # -- DVS-NEWVIEW(v)_p --------------------------------------------------------

    def pre_dvs_newview(self, state, v, p):
        return (
            v in state.created
            and p in v.set
            and vid_gt(v.id, state.current_viewid[p])
        )

    def eff_dvs_newview(self, state, v, p):
        state.current_viewid[p] = v.id
        state.attempted[v.id] = state.attempted.get(v.id) | {p}

    def cand_dvs_newview(self, state):
        for view in sorted(state.created, key=lambda w: w.id):
            for p in sorted(view.set):
                if vid_gt(view.id, state.current_viewid[p]):
                    yield act("dvs_newview", view, p)

    # -- DVS-REGISTER_p (input) ---------------------------------------------------

    def eff_dvs_register(self, state, p):
        g = state.current_viewid.get(p)
        if g is not None:
            state.registered[g] = state.registered.get(g) | {p}

    # -- DVS-GPSND(m)_p (input) ------------------------------------------------------

    def eff_dvs_gpsnd(self, state, m, p):
        g = state.current_viewid.get(p)
        if g is not None:
            state.pending.at((p, g)).append(m)

    # -- DVS-ORDER(m, p, g) ----------------------------------------------------------

    def pre_dvs_order(self, state, m, p, g):
        return head(state.pending.get((p, g))) == m

    def eff_dvs_order(self, state, m, p, g):
        remove_head(state.pending.at((p, g)))
        state.queue.at(g).append((m, p))

    def cand_dvs_order(self, state):
        for (p, g), queue in sorted(
            state.pending.items(), key=lambda kv: repr(kv[0])
        ):
            m = head(queue)
            if m is not None:
                yield act("dvs_order", m, p, g)

    # -- DVS-GPRCV(m)_{p,q} ------------------------------------------------------------

    def pre_dvs_gprcv(self, state, m, p, q):
        g = state.current_viewid.get(q)
        if g is None:
            return False
        return nth(state.queue.get(g), state.next.get((q, g))) == (m, p)

    def eff_dvs_gprcv(self, state, m, p, q):
        g = state.current_viewid[q]
        state.next[(q, g)] = state.next.get((q, g)) + 1

    def cand_dvs_gprcv(self, state):
        for q in sorted(self.universe):
            g = state.current_viewid.get(q)
            if g is None:
                continue
            entry = nth(state.queue.get(g), state.next.get((q, g)))
            if entry is not None:
                m, p = entry
                yield act("dvs_gprcv", m, p, q)

    # -- DVS-SAFE(m)_{p,q} ------------------------------------------------------------

    def _safe_view(self, state, q):
        g = state.current_viewid.get(q)
        if g is None:
            return None
        for view in state.created:
            if view.id == g:
                return view
        return None

    def pre_dvs_safe(self, state, m, p, q):
        view = self._safe_view(state, q)
        if view is None:
            return False
        g = view.id
        ns = state.next_safe.get((q, g))
        if nth(state.queue.get(g), ns) != (m, p):
            return False
        return all(state.next.get((r, g)) > ns for r in view.set)

    def eff_dvs_safe(self, state, m, p, q):
        g = state.current_viewid[q]
        state.next_safe[(q, g)] = state.next_safe.get((q, g)) + 1

    def cand_dvs_safe(self, state):
        for q in sorted(self.universe):
            view = self._safe_view(state, q)
            if view is None:
                continue
            g = view.id
            ns = state.next_safe.get((q, g))
            entry = nth(state.queue.get(g), ns)
            if entry is None:
                continue
            if all(state.next.get((r, g)) > ns for r in view.set):
                m, p = entry
                yield act("dvs_safe", m, p, q)
