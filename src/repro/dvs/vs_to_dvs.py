"""``VS-TO-DVS_p``: the per-process implementation automaton (Figure 3).

Each ``VS-TO-DVS_p`` acts as a *filter* between the client at p and the
underlying static VS service: it receives VS-NEWVIEW inputs and decides
whether to accept a proposed view as primary.  It keeps an "active" view
``act`` (the latest view it knows to be totally registered) and a set of
"ambiguous" views ``amb`` (views it knows to have been attempted with ids
above ``act``); ``use = {act} ∪ amb`` is the set of "possible previous
primary views".  When VS announces a view v, p exchanges "info" messages
carrying ``(act, amb)`` with the other members; after hearing from everyone
it checks that v has a *majority* intersection with every view in ``use``
and only then attempts v with a DVS-NEWVIEW output.

Client registrations trigger "registered" messages; when p has received
"registered" messages for a view from all its members the view is known
totally registered and p may garbage-collect (advance ``act`` and prune
``amb``).

**Safe indications.** Figure 3 forwards the underlying VS-SAFE directly to
the client.  That is *unsound* against the DVS specification: VS-SAFE
witnesses delivery to every member's **filter**, but DVS-SAFE promises
delivery to every member's **client**, and a message can sit arbitrarily
long in a filter's ``msgs-from-vs`` buffer (and be discarded outright if
that member never attempts the view).  Mechanized refinement checking
found concrete executions whose traces no DVS execution can produce --
refuting the literal Lemma 5.8 at DVS-SAFE steps (see
``tests/dvs/test_safe_reconstruction.py`` and DESIGN.md §5).  This class
therefore implements the repaired rule: each filter multicasts an "ack"
after its client consumes a message, and a safe indication for the k-th
client message of a view is released only once every member has
acknowledged k -- exactly the end-to-end evidence the DVS-SAFE
precondition demands.  :class:`LiteralSafeVsToDvs` preserves the figure's
original forwarding for the counterexample tests.

The ``attempted``, ``reg`` and ``info_sent`` variables are history
variables: needed for the paper's proofs (and our mechanized invariants),
not for the algorithm.

Parameter conventions (sender/receiver order follows the underlying
service's signature):

- ``vs_gpsnd(m, p)`` / ``dvs_gpsnd(m, p)``: sent by p;
- ``vs_gprcv(m, q, p)`` / ``vs_safe(m, q, p)``: from q, delivered at p;
- ``dvs_gprcv(m, q, p)`` / ``dvs_safe(m, q, p)``: likewise;
- ``vs_newview(v, p)`` / ``dvs_newview(v, p)``: at p;
- ``dvs_register(p)``; ``dvs_garbage_collect(v, p)``.
"""

from dataclasses import dataclass
from types import MappingProxyType

from repro.core.messages import (
    InfoMsg,
    ProtocolMsg,
    RegisteredMsg,
    is_client_message,
)
from repro.core.sequences import head, remove_head
from repro.core.tables import Table
from repro.core.viewids import vid_gt
from repro.ioa.action import act
from repro.ioa.automaton import TransitionAutomaton
from repro.ioa.state import State

#: Index of the "process at which this action occurs" parameter, per action.
#: Read-only: module globals are shared by every simulated process.
_PROC_PARAM = MappingProxyType({
    "dvs_gpsnd": 1,
    "dvs_register": 0,
    "vs_newview": 1,
    "vs_gprcv": 2,
    "vs_safe": 2,
    "vs_gpsnd": 1,
    "dvs_newview": 1,
    "dvs_gprcv": 2,
    "dvs_safe": 2,
    "dvs_garbage_collect": 1,
})


@dataclass(frozen=True)
class AckMsg(ProtocolMsg):
    """"This client has consumed ``count`` messages of the current view."""

    count: int

    def __str__(self):
        return "ack({0})".format(self.count)


class VsToDvsState(State):
    """State of ``VS-TO-DVS_p``, named as in Figure 3.

    Additional fields beyond the figure support the repaired safe rule:
    ``client_delivered[g]`` is the history of client-level deliveries in
    view g, ``acked[(q, g)]`` the highest count acknowledged by q, and
    ``safe_ptr[g]`` how many safe indications were released.
    ``safe_from_vs`` is kept for :class:`LiteralSafeVsToDvs`.
    """

    def __init__(self, pid, initial_view):
        is_initial_member = pid in initial_view.set
        super().__init__(
            cur=initial_view if is_initial_member else None,
            client_cur=initial_view if is_initial_member else None,
            act=initial_view,
            amb=set(),
            attempted={initial_view} if is_initial_member else set(),
            info_rcvd=Table(lambda: None),
            rcvd_rgst=Table(lambda: False),
            msgs_to_vs=Table(list),
            msgs_from_vs=Table(list),
            safe_from_vs=Table(list),
            reg=Table(
                lambda: False,
                {initial_view.id: True} if is_initial_member else {},
            ),
            info_sent=Table(lambda: None),
            client_delivered=Table(list),
            acked=Table(lambda: 0),
            safe_ptr=Table(lambda: 0),
        )


def use_views(state):
    """The derived variable ``use = {act} ∪ amb``."""
    return {state.act} | set(state.amb)


class VsToDvs(TransitionAutomaton):
    """The ``VS-TO-DVS_p`` automaton for one process ``pid`` (Figure 3)."""

    parameterized_signature = True

    inputs = frozenset(
        {"dvs_gpsnd", "dvs_register", "vs_newview", "vs_gprcv", "vs_safe"}
    )
    outputs = frozenset(
        {"vs_gpsnd", "dvs_newview", "dvs_gprcv", "dvs_safe"}
    )
    internals = frozenset({"dvs_garbage_collect"})

    def __init__(self, pid, initial_view, name=None):
        self.pid = pid
        self.initial_view = initial_view
        self.name = name or "vs_to_dvs:{0}".format(pid)

    def participates(self, action):
        index = _PROC_PARAM.get(action.name)
        if index is None:
            return False
        return (
            len(action.params) > index and action.params[index] == self.pid
        )

    def initial_state(self):
        return VsToDvsState(self.pid, self.initial_view)

    # -- View management -------------------------------------------------------

    def eff_vs_newview(self, state, v, p):
        """A new view from VS: record it and send our (act, amb) info."""
        state.cur = v
        info = InfoMsg(state.act, frozenset(state.amb))
        state.msgs_to_vs.at(v.id).append(info)
        state.info_sent[v.id] = (state.act, frozenset(state.amb))

    def pre_dvs_newview(self, state, v, p):
        """The local acceptance check of Figure 3.

        v must be the current VS view, newer than what the client already
        has, all other members' "info" for v must have arrived, and v must
        majority-intersect every view in ``use``.
        """
        if state.cur is None or v != state.cur:
            return False
        client_id = None if state.client_cur is None else state.client_cur.id
        if not vid_gt(v.id, client_id):
            return False
        for q in v.set:
            if q != self.pid and state.info_rcvd.get((q, v.id)) is None:
                return False
        return all(v.majority_of(w) for w in use_views(state))

    def eff_dvs_newview(self, state, v, p):
        state.amb.add(v)
        state.attempted.add(v)
        state.client_cur = v

    def cand_dvs_newview(self, state):
        if state.cur is not None and self.pre_dvs_newview(
            state, state.cur, self.pid
        ):
            yield act("dvs_newview", state.cur, self.pid)

    # -- Info exchange ------------------------------------------------------------

    def _receive_info(self, state, info, q):
        if state.cur is None:
            return
        state.info_rcvd[(q, state.cur.id)] = (info.act, info.amb)
        if vid_gt(info.act.id, state.act.id):
            state.act = info.act
        state.amb = {
            w
            for w in state.amb | set(info.amb)
            if vid_gt(w.id, state.act.id)
        }

    # -- Registration ---------------------------------------------------------------

    def eff_dvs_register(self, state, p):
        if state.client_cur is not None:
            state.reg[state.client_cur.id] = True
            state.msgs_to_vs.at(state.client_cur.id).append(RegisteredMsg())

    def _receive_registered(self, state, q):
        if state.cur is None:
            return
        state.rcvd_rgst[(q, state.cur.id)] = True

    def pre_dvs_garbage_collect(self, state, v, p):
        """All members' "registered" messages for v seen, and v advances act.

        The identifier-monotonicity condition keeps ``act`` monotone (it is
        implicit in Figure 3's use of garbage collection: ``act`` is "the
        latest view [p] knows to be totally registered").
        """
        if not vid_gt(v.id, state.act.id):
            return False
        return all(state.rcvd_rgst.get((q, v.id)) for q in v.set)

    def eff_dvs_garbage_collect(self, state, v, p):
        state.act = v
        state.amb = {w for w in state.amb if vid_gt(w.id, state.act.id)}

    def cand_dvs_garbage_collect(self, state):
        known = set(state.amb)
        if state.cur is not None:
            known.add(state.cur)
        for v in sorted(known, key=lambda w: w.id):
            if self.pre_dvs_garbage_collect(state, v, self.pid):
                yield act("dvs_garbage_collect", v, self.pid)

    # -- Client messages downward ------------------------------------------------------

    def eff_dvs_gpsnd(self, state, m, p):
        if state.client_cur is not None:
            state.msgs_to_vs.at(state.client_cur.id).append(m)

    def pre_vs_gpsnd(self, state, m, p):
        if state.cur is None:
            return False
        return head(state.msgs_to_vs.get(state.cur.id)) == m

    def eff_vs_gpsnd(self, state, m, p):
        remove_head(state.msgs_to_vs.at(state.cur.id))

    def cand_vs_gpsnd(self, state):
        if state.cur is None:
            return
        m = head(state.msgs_to_vs.get(state.cur.id))
        if m is not None:
            yield act("vs_gpsnd", m, self.pid)

    # -- Deliveries upward ----------------------------------------------------------------

    def eff_vs_gprcv(self, state, m, q, p):
        if isinstance(m, InfoMsg):
            self._receive_info(state, m, q)
        elif isinstance(m, RegisteredMsg):
            self._receive_registered(state, q)
        elif isinstance(m, AckMsg):
            self._receive_ack(state, m, q)
        else:
            if state.cur is not None:
                state.msgs_from_vs.at(state.cur.id).append((m, q))

    def eff_vs_safe(self, state, m, q, p):
        """VS-level stability: ignored by the repaired safe rule.

        VS-SAFE only witnesses filter-level delivery; the repaired rule
        derives client-level stability from the "ack" messages instead.
        :class:`LiteralSafeVsToDvs` restores Figure 3's forwarding.
        """

    def pre_dvs_gprcv(self, state, m, q, p):
        if state.client_cur is None:
            return False
        return head(state.msgs_from_vs.get(state.client_cur.id)) == (m, q)

    def eff_dvs_gprcv(self, state, m, q, p):
        g = state.client_cur.id
        entry = remove_head(state.msgs_from_vs.at(g))
        state.client_delivered.at(g).append(entry)
        state.msgs_to_vs.at(g).append(
            AckMsg(len(state.client_delivered.get(g)))
        )

    def cand_dvs_gprcv(self, state):
        if state.client_cur is None:
            return
        entry = head(state.msgs_from_vs.get(state.client_cur.id))
        if entry is not None:
            m, q = entry
            yield act("dvs_gprcv", m, q, self.pid)

    # -- Safe indications (repaired rule: end-to-end acknowledgments) ---------

    def _receive_ack(self, state, ack, q):
        if state.cur is None:
            return
        key = (q, state.cur.id)
        if ack.count > state.acked.get(key):
            state.acked[key] = ack.count

    def _next_safe_entry(self, state):
        """The next (m, q) releasable as safe, or None."""
        view = state.client_cur
        if view is None:
            return None
        g = view.id
        k = state.safe_ptr.get(g)
        history = state.client_delivered.get(g)
        if k >= len(history):
            return None
        if all(state.acked.get((r, g)) >= k + 1 for r in view.set):
            return tuple(history[k])
        return None

    def pre_dvs_safe(self, state, m, q, p):
        return self._next_safe_entry(state) == (m, q)

    def eff_dvs_safe(self, state, m, q, p):
        g = state.client_cur.id
        state.safe_ptr[g] = state.safe_ptr.get(g) + 1

    def cand_dvs_safe(self, state):
        entry = self._next_safe_entry(state)
        if entry is not None:
            m, q = entry
            yield act("dvs_safe", m, q, self.pid)


class LiteralSafeVsToDvs(VsToDvs):
    """Figure 3, literally: VS-SAFE forwarded straight to the client.

    Preserved for the counterexample tests: against the refinement of
    Figure 4 this variant emits DVS-SAFE indications whose traces the DVS
    specification cannot produce (a member's client may never receive the
    supposedly-safe message).  Do not use in applications.
    """

    def eff_vs_safe(self, state, m, q, p):
        if is_client_message(m) and state.cur is not None:
            state.safe_from_vs.at(state.cur.id).append((m, q))

    def eff_dvs_gprcv(self, state, m, q, p):
        # Figure 3's effect only (no ack machinery).
        remove_head(state.msgs_from_vs.at(state.client_cur.id))

    def pre_dvs_safe(self, state, m, q, p):
        if state.client_cur is None:
            return False
        return head(state.safe_from_vs.get(state.client_cur.id)) == (m, q)

    def eff_dvs_safe(self, state, m, q, p):
        remove_head(state.safe_from_vs.at(state.client_cur.id))

    def cand_dvs_safe(self, state):
        if state.client_cur is None:
            return
        entry = head(state.safe_from_vs.get(state.client_cur.id))
        if entry is not None:
            m, q = entry
            yield act("dvs_safe", m, q, self.pid)
