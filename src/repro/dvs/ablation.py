"""Ablated variants of ``VS-TO-DVS_p`` (experiment E7).

The paper's algorithm rests on three local mechanisms:

1. the *majority* intersection check against every view in ``use``
   (not mere nonempty intersection);
2. waiting for "info" messages from *all* other members before attempting;
3. advancing ``act`` only on *registration* evidence (all members'
   "registered" messages), not on mere attempts.

Each class below removes exactly one mechanism.  The ablation experiments
show that randomized executions then violate the DVS safety properties
(Invariant 4.1 / Invariant 5.6 -- disjoint concurrent primaries), while the
faithful algorithm never does.  This demonstrates that the paper's
invariants are not vacuous and that its preconditions are all necessary.

``StaticMajorityFilter`` is not an ablation but the *static* baseline: it
accepts a view iff the view contains a majority of the fixed universe.  It
is safe but needlessly unavailable once the population drifts -- the
quantitative comparison is experiment E6.
"""

from repro.core.viewids import vid_gt
from repro.dvs.vs_to_dvs import VsToDvs, use_views
from repro.gcs.dvs_layer import DvsLayer


class NoMajorityCheckVsToDvs(VsToDvs):
    """Ablation 1: require only nonempty intersection with ``use``.

    The local check is supposed to *imply* the global nonempty-intersection
    property (the key to Invariant 5.5's proof: two majorities of the same
    earlier view must meet).  Weakening it to local nonempty intersection
    breaks the implication: two chains of views can thin each other out
    until two disjoint "primaries" coexist.
    """

    def pre_dvs_newview(self, state, v, p):
        if state.cur is None or v != state.cur:
            return False
        client_id = None if state.client_cur is None else state.client_cur.id
        if not vid_gt(v.id, client_id):
            return False
        for q in v.set:
            if q != self.pid and state.info_rcvd.get((q, v.id)) is None:
                return False
        return all(v.intersects(w) for w in use_views(state))


class NoInfoWaitVsToDvs(VsToDvs):
    """Ablation 2: attempt views without collecting everyone's "info".

    Without hearing from all members, ``use`` may miss attempted views that
    other members know about, so the majority check is run against stale
    knowledge.
    """

    def pre_dvs_newview(self, state, v, p):
        if state.cur is None or v != state.cur:
            return False
        client_id = None if state.client_cur is None else state.client_cur.id
        if not vid_gt(v.id, client_id):
            return False
        return all(v.majority_of(w) for w in use_views(state))


class EagerGarbageCollectVsToDvs(VsToDvs):
    """Ablation 3: garbage-collect on attempt evidence, not registration.

    ``act`` may advance as soon as the view is the process's own current
    client view, without waiting for all members' "registered" messages.
    Earlier views then stop being checked before the application has
    actually extracted their state, so a later view may miss information
    flow from a still-active older primary.
    """

    def pre_dvs_garbage_collect(self, state, v, p):
        return (
            state.client_cur is not None
            and v == state.client_cur
            and vid_gt(v.id, state.act.id)
        )

    def cand_dvs_garbage_collect(self, state):
        from repro.ioa.action import act as make_action

        if state.client_cur is not None and self.pre_dvs_garbage_collect(
            state, state.client_cur, self.pid
        ):
            yield make_action(
                "dvs_garbage_collect", state.client_cur, self.pid
            )


class StaticMajorityFilter(VsToDvs):
    """Baseline: the *static* notion of primary (Section 1).

    A view is accepted iff it contains a strict majority of the fixed
    universe.  Safe (any two majorities of the same universe intersect)
    but blind to population drift: once more than half the original
    universe has permanently departed, no view is ever primary again.
    """

    def __init__(self, pid, initial_view, universe=None, name=None):
        super().__init__(pid, initial_view, name=name)
        self.static_universe = frozenset(
            universe if universe is not None else initial_view.set
        )

    def pre_dvs_newview(self, state, v, p):
        if state.cur is None or v != state.cur:
            return False
        client_id = None if state.client_cur is None else state.client_cur.id
        if not vid_gt(v.id, client_id):
            return False
        for q in v.set:
            if q != self.pid and state.info_rcvd.get((q, v.id)) is None:
                return False
        majority = len(v.set & self.static_universe) * 2 > len(
            self.static_universe
        )
        return majority


class NoMajorityDvsLayer(DvsLayer):
    """Runtime coding of ablation 1 (for the simulated stack).

    Same broken check as :class:`NoMajorityCheckVsToDvs` -- nonempty
    intersection instead of majority intersection with every view in
    ``use`` -- but as a drop-in :class:`~repro.gcs.dvs_layer.DvsLayer`
    substitute, so chaos runs (``repro chaos --broken``) can demonstrate
    the online safety monitor catching disjoint concurrent primaries on
    the *running* system, not just the automaton.
    """

    def _view_acceptable(self, view):
        return all(view.intersects(w) for w in self.use)
