"""The refinement ℱ from DVS-IMPL states to DVS states (Figure 4).

``refinement_f`` implements the function of Figure 4 literally:

- ``t.created = ∪_p s.attempted_p``
- ``t.current-viewid[p] = s.client-cur.id_p``
- ``t.registered[g] = {p | s.reg[g]_p}``
- ``t.pending[p, g] = purge(s.pending[p, g]) + purge(s.msgs-to-vs[g]_p)``
- ``t.queue[g] = purge(s.queue[g])``
- ``t.next[p, g] = s.next[p, g] - purgesize(s.queue[g](1..next[p,g]-1))
  - |s.msgs-from-vs[g]_p|``
- ``t.next-safe[p, g]`` analogously with ``safe-from-vs``

plus ``t.attempted[g] = {p | ∃v ∈ s.attempted_p : v.id = g}``, the natural
image of the history variable (Figure 4 omits it; it is forced by the step
correspondence for DVS-NEWVIEW).

``dvs_refinement_checker`` packages ℱ with the fragment hints taken from
the proof of Lemma 5.8 (e.g. a DVS-NEWVIEW(v)_p step whose view is not yet
created corresponds to CREATEVIEW(v) followed by NEWVIEW(v)_p; hidden VS
steps correspond to stutters, except VS-ORDER of a client message, which
corresponds to DVS-ORDER).  Checking an execution with it is the
mechanized Theorem 5.9.
"""

from repro.core.messages import is_client_message, purge, purgesize
from repro.core.tables import Table
from repro.dvs.impl import DvsImplState
from repro.dvs.spec import DVSSpec, DVSState
from repro.ioa.action import act
from repro.ioa.refinement import RefinementChecker


def refinement_f(processes, initial_view, universe, literal_safe=False):
    """Build ℱ for a DVS-IMPL instance; returns ``f(state) -> DVSState``.

    With ``literal_safe=False`` (the repaired algorithm, the default),
    ``t.next-safe[p, g]`` is read off the filter's ``safe_ptr`` history --
    the count of safe indications actually released to the client.  With
    ``literal_safe=True`` the Figure 4 formula is used
    (``s.next-safe - purgesize(...) - |safe-from-vs|``); that mapping is
    kept to *demonstrate* the Lemma 5.8 failure of the literal algorithm
    (see tests/dvs/test_safe_reconstruction.py).
    """
    universe = sorted(set(universe) | set(initial_view.set))
    processes = sorted(processes)

    def mapping(composition_state):
        impl = DvsImplState(composition_state, processes)
        vs_state = impl.vs
        t = DVSState(initial_view, universe)

        # t.created and t.attempted[g] from the history variables.
        created = set()
        attempted = {}
        for p in processes:
            for v in impl.attempted_at(p):
                created.add(v)
                attempted[v.id] = attempted.get(v.id, frozenset()) | {p}
        t.created = created
        t.attempted = Table(frozenset, attempted)

        # t.current-viewid[p] = client-cur.id_p.
        t.current_viewid = {}
        for p in universe:
            client_cur = impl.proc(p).client_cur
            t.current_viewid[p] = None if client_cur is None else client_cur.id

        # t.registered[g] = {p | reg[g]_p}.
        registered = {}
        for p in processes:
            for g, flag in impl.proc(p).reg.nondefault_items().items():
                if flag:
                    registered[g] = registered.get(g, frozenset()) | {p}
        t.registered = Table(frozenset, registered)

        # t.queue[g] = purge(s.queue[g]).
        queue = Table(list)
        for g, entries in vs_state.queue.items():
            queue[g] = purge(entries)
        t.queue = queue

        # t.pending[p, g] = purge(s.pending[p, g]) + purge(s.msgs-to-vs[g]_p).
        pending = Table(list)
        for (p, g), entries in vs_state.pending.items():
            pending[(p, g)] = purge(entries)
        for p in processes:
            for g, entries in impl.proc(p).msgs_to_vs.items():
                pending[(p, g)] = pending.get((p, g)) + purge(entries)
        t.pending = pending

        # Delivery and safe pointers, corrected for purged prefixes and
        # for messages buffered between VS and the client.
        nxt = Table(lambda: 1)
        for (p, g), n in vs_state.next.items():
            raw_queue = vs_state.queue.get(g)
            buffered = len(impl.proc(p).msgs_from_vs.get(g)) if p in processes else 0
            nxt[(p, g)] = n - purgesize(raw_queue[: n - 1]) - buffered
        t.next = nxt

        nxt_safe = Table(lambda: 1)
        if literal_safe:
            for (p, g), n in vs_state.next_safe.items():
                raw_queue = vs_state.queue.get(g)
                buffered = (
                    len(impl.proc(p).safe_from_vs.get(g))
                    if p in processes
                    else 0
                )
                nxt_safe[(p, g)] = (
                    n - purgesize(raw_queue[: n - 1]) - buffered
                )
        else:
            for p in processes:
                for g, released in (
                    impl.proc(p).safe_ptr.nondefault_items().items()
                ):
                    nxt_safe[(p, g)] = released + 1
        t.next_safe = nxt_safe

        return t

    return mapping


def lemma_5_8_hints(step, abstract_from):
    """The execution fragments constructed in the proof of Lemma 5.8."""
    action = step.action
    name = action.name
    if name == "dvs_newview":
        view = action.params[0]
        if view in abstract_from.created:
            return [[action]]
        return [[act("dvs_createview", view), action]]
    if name in ("dvs_gpsnd", "dvs_register", "dvs_gprcv", "dvs_safe"):
        return [[action]]
    if name == "vs_order":
        m, p, g = action.params
        if is_client_message(m):
            return [[act("dvs_order", m, p, g)]]
        return [[]]
    # Every other step (vs_createview, vs_newview, vs_gpsnd, vs_gprcv,
    # vs_safe, dvs_garbage_collect) corresponds to a stutter.
    return [[]]


def dvs_refinement_checker(
    processes, initial_view, universe, view_pool=(), literal_safe=False
):
    """A :class:`RefinementChecker` for Theorem 5.9.

    ``impl`` is left to the caller (the checker only needs the spec side);
    pass executions of the DVS-IMPL composition built by
    :func:`repro.dvs.impl.build_dvs_impl` with the same parameters.
    """
    spec = DVSSpec(
        initial_view, universe=universe, view_pool=view_pool, name="dvs_spec"
    )
    mapping = refinement_f(
        processes, initial_view, universe, literal_safe=literal_safe
    )
    return RefinementChecker(
        impl=None,
        spec=spec,
        mapping=mapping,
        hints=lemma_5_8_hints,
        max_depth=3,
    )
