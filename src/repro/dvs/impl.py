"""DVS-IMPL: the composition of all ``VS-TO-DVS_p`` with VS (Section 5.1).

``DVS-IMPL`` is the system "composition of all the VS-TO-DVS_p automata and
VS with all the external actions of VS hidden".  Its external signature is
therefore exactly that of the DVS specification, which is what makes the
trace-inclusion statement (Theorem 5.9) well-formed.

This module also defines the four derived variables the paper introduces
for DVS-IMPL (``Att``, ``TotAtt``, ``Reg``, ``TotReg``) and a convenience
wrapper :class:`DvsImplState` that gives the invariants and the refinement
mapping named access to the pieces of the composed state.
"""

from repro.ioa.composition import Composition
from repro.vs.spec import VSSpec
from repro.dvs.vs_to_dvs import VsToDvs

#: Composition name used everywhere for the DVS implementation.
DVS_IMPL_NAME = "dvs_impl"

#: Names of the VS service's external actions, hidden inside DVS-IMPL.
VS_EXTERNAL_ACTIONS = frozenset(
    {"vs_gpsnd", "vs_gprcv", "vs_safe", "vs_newview"}
)


def process_component_name(pid):
    return "vs_to_dvs:{0}".format(pid)


def build_dvs_impl(initial_view, universe, view_pool=(), name=DVS_IMPL_NAME):
    """Construct DVS-IMPL for the given process universe.

    ``view_pool`` feeds VS's internal view-creation nondeterminism (the
    adversary's choices); see :class:`repro.vs.spec.VSSpec`.
    """
    universe = frozenset(universe) | initial_view.set
    vs = VSSpec(initial_view, universe=universe, view_pool=view_pool)
    filters = [
        VsToDvs(pid, initial_view, name=process_component_name(pid))
        for pid in sorted(universe)
    ]
    return Composition(
        [vs] + filters, hidden=VS_EXTERNAL_ACTIONS, name=name
    )


class DvsImplState:
    """Named access to a DVS-IMPL composition state.

    ``impl_state.proc(p)`` is the ``VS-TO-DVS_p`` sub-state; ``.vs`` is the
    VS sub-state; the ``att`` / ``tot_att`` / ``reg_set`` / ``tot_reg``
    properties are the derived variables of Section 5.1.
    """

    def __init__(self, composition_state, processes):
        self.state = composition_state
        self.processes = sorted(processes)

    @property
    def vs(self):
        return self.state.part("vs")

    def proc(self, pid):
        return self.state.part(process_component_name(pid))

    @property
    def created(self):
        """VS's created views (the reference set for the derived variables)."""
        return self.vs.created

    def attempted_at(self, pid):
        return self.proc(pid).attempted

    def reg_at(self, pid, g):
        return self.proc(pid).reg.get(g)

    @property
    def att(self):
        """``Att = {v ∈ created | ∃p ∈ v.set: v ∈ attempted_p}``."""
        return {
            v
            for v in self.created
            if any(v in self.attempted_at(p) for p in v.set)
        }

    @property
    def tot_att(self):
        """``TotAtt = {v ∈ created | ∀p ∈ v.set: v ∈ attempted_p}``."""
        return {
            v
            for v in self.created
            if all(v in self.attempted_at(p) for p in v.set)
        }

    @property
    def reg_views(self):
        """``Reg = {v ∈ created | ∃p ∈ v.set: reg[v.id]_p}``."""
        return {
            v
            for v in self.created
            if any(self.reg_at(p, v.id) for p in v.set)
        }

    @property
    def tot_reg(self):
        """``TotReg = {v ∈ created | ∀p ∈ v.set: reg[v.id]_p}``."""
        return {
            v
            for v in self.created
            if all(self.reg_at(p, v.id) for p in v.set)
        }


def dvs_impl_derived(composition_state, processes):
    """Build the :class:`DvsImplState` wrapper for a composition state."""
    return DvsImplState(composition_state, processes)
