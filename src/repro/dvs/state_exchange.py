"""SX-DVS: DVS with service-supported state exchange (Section 7).

The paper's discussion proposes "variations on the DVS specification, for
example, one in which the state exchange at the beginning of a new view is
supported by the dynamic view service".  This module builds that variation
end to end:

- :class:`SXDVSSpec` -- the specification.  Instead of an opaque
  ``DVS-REGISTER``, the client at p hands the service a *state snapshot*
  (``sx_sendstate``); once every member of p's view has done so, the
  service delivers the full bundle to p (``sx_statedelivery``), which *is*
  p's registration; and once every member has received the bundle the
  service tells p so (``sx_statesafe``).  ``TotReg`` and the dynamic
  primary-creation precondition are exactly as in DVS, so Invariant 4.1
  carries over verbatim.
- :class:`VsToSxDvs` -- the implementation: ``VS-TO-DVS_p`` extended to
  carry snapshots in "state" messages over VS; a member delivers the
  bundle when it holds all members' snapshots, announces it with the
  existing "registered" message, and reports the exchange safe when it has
  everyone's announcement (the same evidence that already drives garbage
  collection).
- :func:`sx_refinement_checker` -- the refinement of the implementation to
  :class:`SXDVSSpec`, in the style of Figure 4.

The payoff is in :mod:`repro.to.sx_total_order`: the totally-ordered
broadcast application over SX-DVS loses its whole recovery state machine
(``status``/``gotstate``/``safe-exch``) -- the service runs it.
"""

from dataclasses import dataclass
from types import MappingProxyType

from repro.core.messages import ProtocolMsg, RegisteredMsg
from repro.core.tables import Table
from repro.dvs.spec import DVSSpec, DVSState
from repro.dvs.vs_to_dvs import VsToDvs, _PROC_PARAM
from repro.ioa.action import act
from repro.ioa.refinement import RefinementChecker


@dataclass(frozen=True)
class StateMsg(ProtocolMsg):
    """A snapshot travelling in the implementation's "state" messages."""

    snapshot: object

    def __str__(self):
        return "state({0})".format(self.snapshot)


def bundle_of(snapshots):
    """Canonical hashable form of a member->snapshot map."""
    return tuple(sorted(snapshots.items()))


class SXDVSState(DVSState):
    """DVS state plus the exchange bookkeeping."""

    def __init__(self, initial_view, universe):
        super().__init__(initial_view, universe)
        # snapshots[g]: tuple-of-pairs map member -> snapshot.  The
        # initial view starts fully exchanged (with empty snapshots), the
        # counterpart of its members starting registered.
        self.snapshots = Table(
            tuple,
            {initial_view.id: bundle_of({p: None for p in initial_view.set})},
        )
        # statesafe[g]: members already told the exchange is safe.
        self.statesafe = Table(frozenset)


class SXDVSSpec(DVSSpec):
    """The SX-DVS specification automaton.

    Registration is not an input any more: ``registered[g]`` grows when
    the service performs ``sx_statedelivery`` -- the client *received* the
    information it needs, rather than merely asserting it did.
    """

    inputs = frozenset({"dvs_gpsnd", "sx_sendstate"})
    outputs = frozenset(
        {"dvs_gprcv", "dvs_safe", "dvs_newview",
         "sx_statedelivery", "sx_statesafe"}
    )
    internals = frozenset({"dvs_createview", "dvs_order"})

    def initial_state(self):
        return SXDVSState(self.initial_view, self.universe)

    # -- sx_sendstate(x)_p (input) ------------------------------------------------

    def eff_sx_sendstate(self, state, x, p):
        g = state.current_viewid.get(p)
        if g is None:
            return
        current = dict(state.snapshots.get(g))
        if p not in current:
            current[p] = x
            state.snapshots[g] = bundle_of(current)

    # -- sx_statedelivery(Y)_p ---------------------------------------------------------

    def _view_of(self, state, g):
        for view in state.created:
            if view.id == g:
                return view
        return None

    def pre_sx_statedelivery(self, state, bundle, p):
        g = state.current_viewid.get(p)
        if g is None:
            return False
        view = self._view_of(state, g)
        if view is None:
            return False
        snapshots = dict(state.snapshots.get(g))
        return (
            set(snapshots) == set(view.set)
            and bundle == bundle_of(snapshots)
            and p not in state.registered.get(g)
        )

    def eff_sx_statedelivery(self, state, bundle, p):
        g = state.current_viewid[p]
        state.registered[g] = state.registered.get(g) | {p}

    def cand_sx_statedelivery(self, state):
        for p in sorted(self.universe):
            g = state.current_viewid.get(p)
            if g is None:
                continue
            view = self._view_of(state, g)
            if view is None:
                continue
            snapshots = dict(state.snapshots.get(g))
            if set(snapshots) == set(view.set) and p not in state.registered.get(g):
                yield act("sx_statedelivery", bundle_of(snapshots), p)

    # -- sx_statesafe()_p ------------------------------------------------------------------

    def pre_sx_statesafe(self, state, p):
        g = state.current_viewid.get(p)
        if g is None:
            return False
        view = self._view_of(state, g)
        if view is None:
            return False
        return (
            view.set <= state.registered.get(g)
            and p not in state.statesafe.get(g)
        )

    def eff_sx_statesafe(self, state, p):
        g = state.current_viewid[p]
        state.statesafe[g] = state.statesafe.get(g) | {p}

    def cand_sx_statesafe(self, state):
        for p in sorted(self.universe):
            if self.pre_sx_statesafe(state, p):
                yield act("sx_statesafe", p)

    # dvs_register is gone; guard against accidental use.
    def eff_dvs_register(  # lint: ignore[DVS003] - deliberate guard
        self, state, p
    ):  # pragma: no cover - defensive
        raise AssertionError("SX-DVS has no dvs_register action")


#: Read-only: module globals are shared by every simulated process.
_SX_PROC_PARAM = MappingProxyType({
    **{k: v for k, v in _PROC_PARAM.items() if k != "dvs_register"},
    "sx_sendstate": 1,
    "sx_statedelivery": 1,
    "sx_statesafe": 0,
})


class VsToSxDvs(VsToDvs):
    """``VS-TO-SXDVS_p``: the filter with service-run state exchange."""

    inputs = frozenset(
        {"dvs_gpsnd", "sx_sendstate", "vs_newview", "vs_gprcv", "vs_safe"}
    )
    outputs = frozenset(
        {"vs_gpsnd", "dvs_newview", "dvs_gprcv", "dvs_safe",
         "sx_statedelivery", "sx_statesafe"}
    )
    internals = frozenset({"dvs_garbage_collect"})

    def participates(self, action):
        index = _SX_PROC_PARAM.get(action.name)
        if index is None:
            return False
        return (
            len(action.params) > index and action.params[index] == self.pid
        )

    def initial_state(self):
        state = super().initial_state()
        # snap_sent[g]: the snapshot this process handed in for view g.
        state.snap_sent = Table(lambda: None)
        # states_rcvd[(q, g)]: q's snapshot for view g.
        state.states_rcvd = Table(lambda: None)
        # delivered_bundle[g] / reported_safe[g]: local exchange progress.
        state.delivered_bundle = Table(lambda: False)
        state.reported_safe = Table(lambda: False)
        if self.pid in self.initial_view.set:
            state.snap_sent[self.initial_view.id] = StateMsg(None)
            state.states_rcvd[(self.pid, self.initial_view.id)] = (
                StateMsg(None)
            )
            state.delivered_bundle[self.initial_view.id] = True
        return state

    # -- Client hands in its snapshot ---------------------------------------------

    def eff_sx_sendstate(self, state, x, p):
        if state.client_cur is None:
            return
        g = state.client_cur.id
        if state.snap_sent.get(g) is not None:
            return
        message = StateMsg(x)
        state.snap_sent[g] = message
        state.msgs_to_vs.at(g).append(message)

    # -- Receiving snapshots over VS -------------------------------------------------

    def eff_vs_gprcv(self, state, m, q, p):
        if isinstance(m, StateMsg):
            if state.cur is not None:
                state.states_rcvd[(q, state.cur.id)] = m
            return
        super().eff_vs_gprcv(state, m, q, p)

    def eff_vs_safe(self, state, m, q, p):
        if isinstance(m, StateMsg):
            return
        super().eff_vs_safe(state, m, q, p)

    # -- Delivering the bundle ----------------------------------------------------------

    def _local_bundle(self, state):
        """The member->snapshot map for the current view, if complete."""
        view = state.client_cur
        if view is None or state.cur is None or view.id != state.cur.id:
            return None
        snapshots = {}
        for q in view.set:
            message = state.states_rcvd.get((q, view.id))
            if message is None:
                return None
            snapshots[q] = message.snapshot
        return snapshots

    def pre_sx_statedelivery(self, state, bundle, p):
        if state.delivered_bundle.get(
            None if state.client_cur is None else state.client_cur.id
        ):
            return False
        snapshots = self._local_bundle(state)
        return snapshots is not None and bundle == bundle_of(snapshots)

    def eff_sx_statedelivery(self, state, bundle, p):
        g = state.client_cur.id
        state.delivered_bundle[g] = True
        state.reg[g] = True
        state.msgs_to_vs.at(g).append(RegisteredMsg())

    def cand_sx_statedelivery(self, state):
        snapshots = self._local_bundle(state)
        if snapshots is None:
            return
        if state.delivered_bundle.get(state.client_cur.id):
            return
        yield act("sx_statedelivery", bundle_of(snapshots), self.pid)

    # -- Reporting the exchange safe ---------------------------------------------------------

    def pre_sx_statesafe(self, state, p):
        view = state.client_cur
        if view is None or state.cur is None or view.id != state.cur.id:
            return False
        if not state.delivered_bundle.get(view.id):
            return False
        if state.reported_safe.get(view.id):
            return False
        return all(state.rcvd_rgst.get((q, view.id)) for q in view.set)

    def eff_sx_statesafe(self, state, p):
        state.reported_safe[state.client_cur.id] = True

    def cand_sx_statesafe(self, state):
        if self.pre_sx_statesafe(state, self.pid):
            yield act("sx_statesafe", self.pid)

    # dvs_register no longer exists on this layer.
    def eff_dvs_register(  # lint: ignore[DVS003] - deliberate guard
        self, state, p
    ):  # pragma: no cover - defensive
        raise AssertionError("SX-DVS filter has no dvs_register input")


# -- Refinement to SXDVSSpec -----------------------------------------------------------


def sx_refinement_f(processes, initial_view, universe):
    """ℱ for the SX variant: Figure 4 plus the exchange components."""
    from repro.dvs.refinement import refinement_f

    base = refinement_f(processes, initial_view, universe)
    processes = sorted(processes)

    def mapping(composition_state):
        t_base = base(composition_state)
        t = SXDVSState(initial_view, sorted(set(universe) | set(initial_view.set)))
        for key, value in t_base.__dict__.items():
            setattr(t, key, value)

        snapshots = {}
        statesafe = {}
        from repro.dvs.impl import process_component_name

        for p in processes:
            proc = composition_state.part(process_component_name(p))
            for g, message in proc.snap_sent.nondefault_items().items():
                current = snapshots.setdefault(g, {})
                current[p] = message.snapshot
            for g, done in proc.reported_safe.nondefault_items().items():
                if done:
                    statesafe[g] = statesafe.get(g, frozenset()) | {p}
        t.snapshots = Table(
            tuple, {g: bundle_of(m) for g, m in snapshots.items()}
        )
        t.statesafe = Table(frozenset, statesafe)
        return t

    return mapping


def sx_hints(step, abstract_from):
    """Lemma 5.8's fragments, extended with the exchange actions."""
    from repro.dvs.refinement import lemma_5_8_hints

    name = step.action.name
    if name in ("sx_sendstate", "sx_statedelivery", "sx_statesafe"):
        return [[step.action]]
    return lemma_5_8_hints(step, abstract_from)


def sx_refinement_checker(processes, initial_view, universe, view_pool=()):
    """Refinement checker: the SX implementation refines SXDVSSpec."""
    spec = SXDVSSpec(
        initial_view, universe=universe, view_pool=view_pool,
        name="sxdvs_spec",
    )
    return RefinementChecker(
        impl=None,
        spec=spec,
        mapping=sx_refinement_f(processes, initial_view, universe),
        hints=sx_hints,
        max_depth=3,
    )
