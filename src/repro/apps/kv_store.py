"""A replicated key-value store over the full stack.

Commands are ``("put", key, value)`` and ``("del", key)``; reads are local
(each replica serves its current copy).  Consistency follows from the TO
total order: all replicas apply the same command sequence, so replica
states are snapshots along one history.  A put is *stable* once its
issuing replica has applied it -- which, because the TO layer confirms a
command only when it is safe in a primary view, implies every member of
that primary view received it.
"""

from repro.apps.state_machine import ReplicatedStateMachine, StateMachine
from repro.gcs.cluster import Cluster


class _KvMachine(StateMachine):
    def __init__(self):
        self.data = {}

    def apply(self, command, origin):
        kind = command[0]
        if kind == "put":
            _, key, value = command
            self.data[key] = value
            return value
        if kind == "del":
            _, key = command
            return self.data.pop(key, None)
        raise ValueError("unknown command {0!r}".format(command))


class KvReplica(ReplicatedStateMachine):
    """One key-value replica."""

    def __init__(self, to_layer):
        super().__init__(to_layer, _KvMachine())

    def put(self, key, value):
        self.submit(("put", key, value))

    def delete(self, key):
        self.submit(("del", key))

    def get(self, key, default=None):
        """Local read of the replica's current copy."""
        return self.machine.data.get(key, default)

    def snapshot(self):
        return dict(self.machine.data)


class KvStoreCluster:
    """A simulated cluster of key-value replicas (one per process)."""

    def __init__(self, processes, seed=0, **cluster_kwargs):
        self.cluster = Cluster(processes, seed=seed, **cluster_kwargs)
        self.replicas = {
            pid: KvReplica(self.cluster.to[pid])
            for pid in self.cluster.processes
        }

    def start(self):
        self.cluster.start()
        return self

    def run(self, duration):
        self.cluster.run(duration)
        return self

    def settle(self, max_time=None):
        self.cluster.settle(max_time=max_time)
        return self

    def partition(self, *groups):
        self.cluster.partition(*groups)
        return self

    def heal(self):
        self.cluster.heal()
        return self

    def replica(self, pid):
        return self.replicas[pid]

    def consistent(self):
        """Whether all replica command logs are prefixes of one another."""
        logs = [r.command_log() for r in self.replicas.values()]
        longest = max(logs, key=len)
        return all(longest[: len(log)] == log for log in logs)
