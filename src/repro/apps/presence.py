"""A presence / typing-indicator board over causal broadcast.

The companion application to :class:`~repro.apps.kv_store.KvReplica`,
demonstrating why a *weaker* ordering tier earns its keep: presence
updates ("online", "away", "typing...") need per-sender FIFO and causal
consistency -- nobody should see you stop typing before they saw you
start -- but no system-wide total order, so they ride the CB tier and
skip the sequencer's safe round-trip the KV commands pay for.

Convergence argument: CB delivers each member's casts in their send
order (per-sender gap-free sequence numbers within a view), so the
board's per-member last-writer-wins register settles on every replica
at that member's newest update; cross-member entries are independent,
so no stronger order is needed.  Casts in flight across a view change
are best-effort by design -- a fresh announcement after the view
settles (the natural thing for presence) repairs the board.
"""

from repro.gcs.cb_layer import CbListener


class PresenceBoard(CbListener):
    """One replica of the shared presence board, over a CB layer.

    Works with any object exposing the CB surface -- a simulated
    :class:`~repro.gcs.cb_layer.CbLayer` or the identical layer hosted
    by a :class:`~repro.runtime.node.RuntimeNode` (``node.cb``).
    """

    def __init__(self, cb_layer):
        self.cb = cb_layer
        self.pid = cb_layer.pid
        cb_layer.listener = self
        #: member -> last announced status (last-writer-wins per member).
        self._status = {}
        #: members whose latest typing indicator is "active".
        self._typing = set()
        #: Every applied update, in local delivery order:
        #: ``(kind, value, origin)``.
        self.events = []

    # -- Downcalls ---------------------------------------------------------

    def announce(self, status):
        """Broadcast this member's presence status (e.g. ``"online"``)."""
        self.cb.cbcast(("presence", status))

    def typing(self, active=True):
        """Broadcast a typing indicator flip."""
        self.cb.cbcast(("typing", bool(active)))

    # -- CB upcall ---------------------------------------------------------

    def on_cb_brcv(self, payload, origin):
        kind, value = payload
        if kind == "presence":
            self._status[origin] = value
        elif kind == "typing":
            if value:
                self._typing.add(origin)
            else:
                self._typing.discard(origin)
        else:
            raise ValueError("unknown presence update {0!r}".format(payload))
        self.events.append((kind, value, origin))

    # -- Local reads -------------------------------------------------------

    def board(self):
        """Snapshot of the per-member status register."""
        return dict(self._status)

    def status_of(self, member, default=None):
        return self._status.get(member, default)

    def typing_now(self):
        """Members whose newest typing indicator is active, sorted."""
        return sorted(self._typing)

    @property
    def seen(self):
        """Updates applied at this replica so far."""
        return len(self.events)
