"""A primary-aware work dispatcher (the Section 7 "load-balancing" app).

Tasks are submitted anywhere and broadcast through TO; because every
replica sees the same task sequence and the same primary-view history,
they deterministically agree on the assignment: task k announced while
primary view v is current goes to the member of v at position
``k mod |v|`` (in sorted order).  No extra coordination messages are
needed -- agreement on assignments is inherited from the total order.

During a partition, only the primary side dispatches; the minority's
submissions queue (inside TO) and are assigned after the merge.
"""

from repro.gcs.to_layer import ToListener


class LoadBalancer(ToListener):
    """One node's view of the replicated dispatcher."""

    def __init__(self, to_layer, dvs_layer):
        self.to = to_layer
        self.dvs = dvs_layer
        self.pid = to_layer.pid
        to_layer.listener = self
        #: Deterministically agreed assignment: task -> worker.
        self.assignments = {}
        #: Tasks assigned to *this* node, in order.
        self.my_tasks = []
        self._dispatched = 0

    def submit(self, task):
        """Submit a task from this node; it is assigned in total order.

        The submitter's current primary membership rides in the message:
        every node then computes the assignment from the *same* data (the
        total order position and the embedded membership), so agreement
        needs no further coordination.  A node that delivers the task
        later -- e.g. a healed minority replaying the majority's history --
        reaches the identical assignment.
        """
        view = self.to.current
        members = tuple(sorted(view.set)) if view is not None else ()
        self.to.bcast(("task", task, members))

    def on_brcv(self, payload, origin):
        kind, task, members = payload
        if kind != "task" or not members:
            return
        worker = members[self._dispatched % len(members)]
        self._dispatched += 1
        self.assignments[task] = worker
        if worker == self.pid:
            self.my_tasks.append(task)


class LoadBalancedCluster:
    """A cluster of dispatchers over the full stack."""

    def __init__(self, processes, seed=0):
        from repro.gcs.cluster import Cluster

        self.cluster = Cluster(processes, seed=seed)
        self.balancers = {
            pid: LoadBalancer(self.cluster.to[pid], self.cluster.dvs[pid])
            for pid in self.cluster.processes
        }

    def start(self):
        self.cluster.start()
        return self

    def run(self, duration):
        self.cluster.run(duration)
        return self

    def settle(self, max_time=None):
        self.cluster.settle(max_time=max_time)
        return self

    def partition(self, *groups):
        self.cluster.partition(*groups)
        return self

    def heal(self):
        self.cluster.heal()
        return self

    def submit(self, pid, task):
        self.balancers[pid].submit(task)
        return self

    def balancer(self, pid):
        return self.balancers[pid]

    def agreed(self):
        """Whether all nodes that assigned a task agree on its worker.

        Nodes may lag (fewer assignments) but never conflict.
        """
        merged = {}
        for balancer in self.balancers.values():
            for task, worker in balancer.assignments.items():
                if task in merged and merged[task] != worker:
                    return False
                merged[task] = worker
        return True

    def load(self):
        """Tasks per worker, from the most advanced node's view."""
        fullest = max(
            self.balancers.values(), key=lambda b: len(b.assignments)
        )
        counts = {pid: 0 for pid in self.cluster.processes}
        for worker in fullest.assignments.values():
            counts[worker] = counts.get(worker, 0) + 1
        return counts
