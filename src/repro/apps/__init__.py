"""Applications built on the group-communication service tiers.

The paper's Section 7 names replicated-data applications as the natural
client of DVS.  These modules implement them over the ordering towers:

- :mod:`repro.apps.state_machine` -- generic replicated state machines:
  every replica applies the common total order of commands, so all
  replicas move through the same state sequence (the classic SMR
  construction over totally ordered broadcast);
- :mod:`repro.apps.kv_store` -- a replicated key-value store instance,
  with read-your-writes at the issuing replica once its command delivers;
- :mod:`repro.apps.presence` -- a presence/typing board over the CB
  tier: per-member last-writer-wins registers need only causal order,
  so they skip the sequencer round-trip the KV commands pay for.
"""

from repro.apps.kv_store import KvReplica, KvStoreCluster
from repro.apps.load_balancer import LoadBalancedCluster, LoadBalancer
from repro.apps.presence import PresenceBoard
from repro.apps.state_machine import ReplicatedStateMachine, StateMachine

__all__ = [
    "KvReplica",
    "KvStoreCluster",
    "PresenceBoard",
    "LoadBalancedCluster",
    "LoadBalancer",
    "ReplicatedStateMachine",
    "StateMachine",
]
