"""Replicated state machines over totally ordered broadcast.

The construction is the textbook one: commands are broadcast through TO;
every replica applies delivered commands, in delivery order, to a
deterministic state machine.  Because TO delivers the same gap-free prefix
of one total order everywhere, any two replicas' states are always states
of the same command sequence -- one may merely lag the other.
"""

from repro.gcs.to_layer import ToListener


class StateMachine:
    """A deterministic state machine: override :meth:`apply`."""

    def apply(self, command, origin):
        """Apply ``command`` (issued at ``origin``); return a result."""
        raise NotImplementedError


class ReplicatedStateMachine(ToListener):
    """One replica: a TO layer feeding a local state machine."""

    def __init__(self, to_layer, machine):
        self.to = to_layer
        self.pid = to_layer.pid
        self.machine = machine
        self.applied = []
        to_layer.listener = self

    def submit(self, command):
        """Issue a command; it takes effect when TO delivers it."""
        self.to.bcast(command)

    def on_brcv(self, command, origin):
        result = self.machine.apply(command, origin)
        self.applied.append((command, origin, result))

    @property
    def log_length(self):
        return len(self.applied)

    def command_log(self):
        """The (command, origin) pairs applied so far, in order."""
        return [(c, o) for c, o, _ in self.applied]
