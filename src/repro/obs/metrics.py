"""A small metrics registry: counters, gauges, log-bucketed histograms.

The registry is deliberately dependency-free and clock-free: every
instrument is a plain in-process accumulator, and anything time-shaped
(latency samples, timestamps) is *passed in* by the caller -- the
observability layer must satisfy the same determinism contract
(``repro lint`` DVS006/007) as the code it instruments.

Histograms use power-of-two buckets over a configurable base unit
(default one microsecond for latency-in-seconds samples): bucket ``i``
covers ``(base * 2**(i-1), base * 2**i]`` with bucket 0 covering
``[0, base]``.  Percentiles are read back as the upper bound of the
bucket where the cumulative count crosses the rank -- a bounded-error
estimate whose memory cost is independent of the sample count, which is
what lets the registry sit on the runtime hot path.

Snapshots are plain JSON-ready dicts with deterministically sorted
keys, so two runs over the same event sequence serialize identically.
"""

import json
import math


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        self.value += amount

    def snapshot(self):
        return {"type": self.kind, "value": self.value}


class Gauge:
    """A last-write-wins level (queue depth, buffer occupancy)."""

    kind = "gauge"

    def __init__(self):
        self.value = 0
        self.high = 0

    def set(self, value):
        self.value = value
        if value > self.high:
            self.high = value

    def snapshot(self):
        return {"type": self.kind, "value": self.value, "high": self.high}


class Histogram:
    """Log-bucketed distribution of non-negative samples.

    ``base`` is the width of bucket 0 in the sample's own unit; with
    seconds samples the default ``1e-6`` makes bucket upper bounds land
    on 1us, 2us, 4us, ... so microsecond-scale codec costs and
    second-scale view formations share one shape.
    """

    kind = "histogram"

    def __init__(self, base=1e-6):
        self.base = float(base)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._buckets = {}

    def bucket_index(self, value):
        if value <= self.base:
            return 0
        # ceil(log2(value / base)); the +1e-12 guards representation
        # noise at exact powers of two from landing one bucket low.
        return max(1, int(math.ceil(math.log2(value / self.base) - 1e-12)))

    def bucket_bound(self, index):
        """Upper bound of bucket ``index`` in the sample's unit."""
        return self.base * (2.0 ** index)

    def observe(self, value):
        if value < 0:
            value = 0.0
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = self.bucket_index(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def percentile(self, fraction):
        """The upper bound of the bucket holding the ``fraction`` rank
        (``None`` on an empty histogram)."""
        if self.count == 0:
            return None
        rank = max(1, int(math.ceil(fraction * self.count)))
        cumulative = 0
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if cumulative >= rank:
                return self.bucket_bound(index)
        return self.bucket_bound(max(self._buckets))

    @property
    def mean(self):
        return self.total / self.count if self.count else None

    def snapshot(self):
        return {
            "type": self.kind,
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "buckets": {
                # Keys are the bucket upper bounds, stringified so the
                # snapshot is JSON-ready.
                repr(self.bucket_bound(index)): self._buckets[index]
                for index in sorted(self._buckets)
            },
        }


class MetricsRegistry:
    """Get-or-create instruments by dotted name.

    Re-requesting a name returns the existing instrument (so a
    restarted node keeps accumulating into the same series); asking for
    the same name as a different kind is a programming error and
    raises.
    """

    def __init__(self):
        self._instruments = {}

    def _get(self, name, factory, kind):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif instrument.kind != kind:
            raise ValueError(
                "metric {0!r} already registered as {1}".format(
                    name, instrument.kind
                )
            )
        return instrument

    def counter(self, name):
        return self._get(name, Counter, "counter")

    def gauge(self, name):
        return self._get(name, Gauge, "gauge")

    def histogram(self, name, base=1e-6):
        return self._get(name, lambda: Histogram(base=base), "histogram")

    def __len__(self):
        return len(self._instruments)

    def snapshot(self):
        """All instruments, sorted by name, as JSON-ready dicts."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }

    def to_json(self):
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)
