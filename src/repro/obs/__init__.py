"""Observability: causal tracing + metrics across sim and runtime.

One :class:`Observability` object bundles the two consumers every host
wires in the same way:

- a :class:`~repro.obs.trace.Tracer` stitching causal spans out of the
  identifiers already on the wire (message labels, view ids);
- a :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges
  and log-bucketed histograms.

Hosts feed it from exactly two hooks:

- :meth:`on_action` -- attached as the ``tracer`` of an
  :class:`~repro.gcs.recorder.ActionLog`, so every interface action the
  layers already record (plus the tracer-only ``probe`` events) flows
  in with the host's own clock.  The simulator gets spans *for free*
  through this hook alone.
- :meth:`wire_event` -- called by the transport (live TCP or the
  simulated network) when a frame leaves or reaches a node.

Everything is in-process and clock-free: time always arrives as an
argument, read from whichever clock the host runs on, so a simulated
run and a live run produce structurally identical traces.
"""

from collections import OrderedDict

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import SpanEvent, SpanRing
from repro.obs.trace import (
    MESSAGE_STAGES,
    TIERS,
    VIEW_STAGES,
    Tracer,
    message_key,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MESSAGE_STAGES",
    "MetricsRegistry",
    "Observability",
    "SpanEvent",
    "SpanRing",
    "TIERS",
    "Tracer",
    "VIEW_STAGES",
]

#: Bound on the label -> birth-time map feeding the end-to-end latency
#: histogram (oldest outstanding labels are forgotten beyond it).
_LATENCY_CAP = 8192


class Observability:
    """The tracer + metrics bundle a host arms on its stack."""

    def __init__(self, ring_size=65536, latency_cap=_LATENCY_CAP):
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(ring_size=ring_size)
        self._latency_cap = latency_cap
        self._born = OrderedDict()
        self._cb_born = OrderedDict()
        self._lat = self.metrics.histogram("gcs.to.delivery_latency_s")
        self._cb_lat = self.metrics.histogram("gcs.cb.delivery_latency_s")
        self._bcasts = self.metrics.counter("gcs.to.bcasts")
        self._deliveries = self.metrics.counter("gcs.to.deliveries")
        self._cb_bcasts = self.metrics.counter("gcs.cb.cbcasts")
        self._cb_deliveries = self.metrics.counter("gcs.cb.deliveries")
        self._vs_views = self.metrics.counter("gcs.vs.views_installed")
        self._dvs_views = self.metrics.counter("gcs.dvs.views_attempted")
        self._registered = self.metrics.counter("gcs.dvs.views_registered")

    # -- Host hooks --------------------------------------------------------

    def on_action(self, t, name, params):
        """ActionLog hook: spans plus the gcs-layer counters."""
        self.tracer.on_action(t, name, params)
        if name == "bcast":
            self._bcasts.inc()
        elif name == "brcv":
            self._deliveries.inc()
        elif name == "vs_newview":
            self._vs_views.inc()
        elif name == "dvs_newview":
            self._dvs_views.inc()
        elif name == "dvs_register_view":
            self._registered.inc()
        elif name == "to_label":
            if t is not None:
                self._born[params[0]] = t
                while len(self._born) > self._latency_cap:
                    self._born.popitem(last=False)
        elif name == "to_deliver":
            born = self._born.get(params[0])
            if born is not None and t is not None:
                self._lat.observe(t - born)
        elif name == "cbcast":
            self._cb_bcasts.inc()
        elif name == "cb_brcv":
            self._cb_deliveries.inc()
        elif name == "cb_label":
            # Keyed on the per-view slot, not the message object: the
            # application payload inside a CbCast may be unhashable.
            key = message_key(params[0])
            if t is not None and key is not None:
                self._cb_born[key] = t
                while len(self._cb_born) > self._latency_cap:
                    self._cb_born.popitem(last=False)
        elif name == "cb_deliver":
            key = message_key(params[0])
            born = None if key is None else self._cb_born.get(key)
            if born is not None and t is not None:
                self._cb_lat.observe(t - born)

    def wire_event(self, stage, pid, peer, msg, t):
        self.tracer.wire_event(stage, pid, peer, msg, t)

    # -- Reading -----------------------------------------------------------

    def snapshot(self):
        """Metrics plus the trace stage summary, JSON-ready."""
        metrics = self.metrics.snapshot()
        summary = self.tracer.stage_summary()
        views = self._dvs_views.value
        derived = {
            "messages_per_view": (
                self._deliveries.value / views if views else None
            ),
        }
        return {"metrics": metrics, "trace": summary, "derived": derived}
