"""Span events and the per-node ring buffer holding them.

A :class:`SpanEvent` is one observation of a message or view-change at
one stage of the layer tower (``to_label``, ``dvs_send``, ``wire_recv``,
...).  Events carry the *stitching key* -- the identifier that already
rides on the wire (a :class:`~repro.to.summaries.Label` for messages, a
view or round identifier for the membership lifecycle) -- so spans are
reassembled purely from ids, with no side channel between nodes.

Each node writes into its own :class:`SpanRing`: a preallocated
fixed-capacity buffer with a single monotonically increasing append
counter.  There is exactly one writer per ring (the node's event loop
or the simulator's single thread), so appends are a slot write plus a
counter bump -- no locks, no allocation, and overflow overwrites the
oldest slot while ``dropped`` keeps the honest count.
"""

class SpanEvent:
    """One stage crossing, keyed for stitching.

    ``key`` is ``("msg", label)``, ``("view", view_id)`` or
    ``("round", round_id)``; ``seq`` is a tracer-wide tiebreak so two
    events at the same timestamp keep their emission order.

    A hand-rolled slotted class, not a frozen dataclass: emission sits
    on the runtime hot path, and ``object.__setattr__``-based frozen
    init costs several times a plain attribute write.
    """

    __slots__ = ("key", "stage", "pid", "t", "seq", "peer")

    def __init__(self, key, stage, pid, t, seq, peer=None):
        self.key = key
        self.stage = stage
        self.pid = pid
        self.t = t
        self.seq = seq
        self.peer = peer

    def _tuple(self):
        return (self.key, self.stage, self.pid, self.t, self.seq,
                self.peer)

    def __eq__(self, other):
        if not isinstance(other, SpanEvent):
            return NotImplemented
        return self._tuple() == other._tuple()

    def __hash__(self):
        return hash(self._tuple())

    def __repr__(self):
        return (
            "SpanEvent(key={0!r}, stage={1!r}, pid={2!r}, t={3!r}, "
            "seq={4!r}, peer={5!r})".format(*self._tuple())
        )


class SpanRing:
    """Single-writer bounded ring of :class:`SpanEvent`.

    ``appended`` only ever grows; the live window is the last
    ``min(appended, capacity)`` events and ``dropped`` counts the
    overwritten prefix.
    """

    def __init__(self, capacity=65536):
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self.appended = 0
        self._slots = [None] * capacity

    @property
    def dropped(self):
        return max(0, self.appended - self.capacity)

    def __len__(self):
        return min(self.appended, self.capacity)

    def append(self, event):
        self._slots[self.appended % self.capacity] = event
        self.appended += 1

    def snapshot(self):
        """The live window, oldest first."""
        if self.appended <= self.capacity:
            return list(self._slots[: self.appended])
        start = self.appended % self.capacity
        return self._slots[start:] + self._slots[:start]
