"""Recording live executions into replayable trace files.

The hosted gcs layers are deterministic functions of their input event
sequence (no timers, no clocks, no entropy -- ``repro lint`` enforces
it), so a live run is fully determined by what the transport and the
connectivity estimator fed each node, in order.  A
:class:`TraceRecorder` captures exactly that cut -- the events *below*
are nondeterministic (sockets, heartbeats, thread scheduling), the
layers *above* are pure -- and a :class:`ReplayTrace` serializes it,
versioned, through the same length-prefixed frame codec the wire uses
(:mod:`repro.runtime.codec`): the payloads are the very messages that
crossed the wire, so nothing needs a second serialization scheme and
hostile input fails with the codec's typed errors.

Replay lives in :mod:`repro.checking.replay`; this module owns only the
format, so the runtime can record without importing the checking stack.

Event kinds (``data`` layout):

=========  =============================================================
``start``  ``(member,)`` -- node (re)started; ``False`` = amnesiac rejoin
``recv``   ``(src, msg)`` -- a frame dispatched into the stack
``conn``   ``(component,)`` -- connectivity estimate reported upward
``timer``  ``(tag,)`` -- a stack timer fired (unused by the gcs layers)
``bcast``  ``(payload,)`` -- a client broadcast through the TO layer
``cbcast``  ``(payload,)`` -- a client broadcast through the CB layer
``nemesis``  ``(description,)`` -- fault-plan annotation (not dispatched)
``stop``   ``()`` -- node shut down
=========  =============================================================
"""

from dataclasses import dataclass

from repro.runtime.codec import CodecError, FrameDecoder, encode_frame

#: Magic string opening every trace file's header frame.
TRACE_MAGIC = "dvs-trace"

#: Bump on any incompatible change to the header or event layout.
#: v2 added the event count to the header: without it, a trace
#: truncated exactly on a frame boundary parsed as a silently shorter
#: -- but "valid" -- run.
TRACE_VERSION = 2

EVENT_KINDS = (
    "start", "recv", "conn", "timer", "bcast", "cbcast", "nemesis",
    "stop",
)

#: Kinds replay feeds into a node's stack (the rest are annotations).
DISPATCH_KINDS = (
    "start", "recv", "conn", "timer", "bcast", "cbcast", "stop",
)


class TraceError(ValueError):
    """A trace file is malformed, truncated or hostile."""


@dataclass(frozen=True)
class TraceEvent:
    """One recorded input event: ``(t, pid, kind, data)``.

    Frozen (hence hashable) so the ddmin shrinker can cache oracle
    results keyed on event tuples, exactly as it does for fault ops.
    """

    t: float
    pid: str
    kind: str
    data: tuple = ()

    def __post_init__(self):
        if self.kind not in EVENT_KINDS:
            raise TraceError(
                "unknown trace event kind {0!r}".format(self.kind)
            )

    def as_tuple(self):
        return (self.t, self.pid, self.kind, self.data)

    def describe(self):
        return "t={0:.6f} {1} {2}{3!r}".format(
            self.t, self.pid, self.kind, self.data
        )


class ReplayTrace:
    """An immutable recorded execution: header + ordered input events.

    Events are kept in *recorded* order (the loop thread's execution
    order), never re-sorted: timestamps may tie, and the recorded order
    is the causal truth replay must follow.

    The subset/without/len surface matches
    :class:`~repro.faults.nemesis.NemesisPlan`, so
    :func:`repro.faults.shrink.shrink_plan` minimizes traces unchanged.
    """

    def __init__(self, processes, initial_view, events=(), dvs="normal",
                 source="live"):
        self.processes = tuple(sorted(processes))
        self.initial_view = initial_view
        self.dvs = dvs
        self.source = source
        self.events = tuple(
            e if isinstance(e, TraceEvent) else TraceEvent(*e)
            for e in events
        )

    # -- The shrinkable-schedule surface (ddmin) ---------------------------

    @property
    def ops(self):
        return self.events

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __eq__(self, other):
        return (
            isinstance(other, ReplayTrace)
            and self.processes == other.processes
            and self.initial_view == other.initial_view
            and self.dvs == other.dvs
            and self.source == other.source
            and self.events == other.events
        )

    def __hash__(self):
        return hash((self.processes, self.initial_view, self.dvs,
                     self.events))

    def __repr__(self):
        return "ReplayTrace({0} events, {1} processes, dvs={2!r})".format(
            len(self.events), len(self.processes), self.dvs
        )

    def _with_events(self, events):
        return ReplayTrace(
            self.processes, self.initial_view, events, dvs=self.dvs,
            source=self.source,
        )

    def subset(self, indices):
        keep = set(indices)
        return self._with_events(
            e for i, e in enumerate(self.events) if i in keep
        )

    def without(self, indices):
        drop = set(indices)
        return self._with_events(
            e for i, e in enumerate(self.events) if i not in drop
        )

    def describe(self, limit=None):
        events = self.events if limit is None else self.events[:limit]
        lines = [repr(self)]
        lines.extend("  " + e.describe() for e in events)
        if limit is not None and len(self.events) > limit:
            lines.append("  ... {0} more".format(len(self.events) - limit))
        return "\n".join(lines)

    # -- Serialization -----------------------------------------------------

    def to_bytes(self):
        header = (TRACE_MAGIC, TRACE_VERSION, self.processes,
                  self.initial_view, self.dvs, self.source,
                  len(self.events))
        chunks = [encode_frame(header)]
        chunks.extend(encode_frame(e.as_tuple()) for e in self.events)
        return b"".join(chunks)

    @classmethod
    def from_bytes(cls, data):
        decoder = FrameDecoder()
        try:
            frames = decoder.feed(data)
        except CodecError as exc:
            raise TraceError("corrupt trace: {0}".format(exc)) from exc
        if decoder.pending:
            raise TraceError(
                "truncated trace: {0} trailing byte(s) do not form a "
                "frame".format(decoder.pending)
            )
        if not frames:
            raise TraceError("empty trace: no header frame")
        header, event_frames = frames[0], frames[1:]
        if not (isinstance(header, tuple) and len(header) >= 2
                and header[0] == TRACE_MAGIC):
            raise TraceError("not a {0} file".format(TRACE_MAGIC))
        # Version before shape: a v1 file (no event count) reports its
        # version, not a misleading "malformed header".
        if header[1] != TRACE_VERSION:
            raise TraceError(
                "trace version {0!r} unsupported (expected {1})".format(
                    header[1], TRACE_VERSION
                )
            )
        if len(header) != 7:
            raise TraceError("malformed trace header")
        _, _, processes, initial_view, dvs, source, count = header
        if not (isinstance(processes, tuple)
                and all(isinstance(p, str) for p in processes)):
            raise TraceError("malformed process list in trace header")
        from repro.core.views import View

        if not isinstance(initial_view, View):
            raise TraceError("trace header initial view is not a View")
        if not isinstance(dvs, str) or not isinstance(source, str):
            raise TraceError("malformed trace header")
        if not isinstance(count, int) or isinstance(count, bool) \
                or count < 0:
            raise TraceError("malformed event count in trace header")
        if len(event_frames) < count:
            # Catches truncation landing exactly on a frame boundary,
            # which decoder.pending cannot see.
            raise TraceError(
                "truncated trace: header promises {0} event(s), found "
                "{1}".format(count, len(event_frames))
            )
        if len(event_frames) > count:
            raise TraceError(
                "trailing frames: header promises {0} event(s), found "
                "{1}".format(count, len(event_frames))
            )
        events = []
        for index, frame in enumerate(event_frames):
            events.append(_decode_event(index, frame))
        return cls(processes, initial_view, events, dvs=dvs, source=source)

    def save(self, path):
        with open(path, "wb") as handle:
            handle.write(self.to_bytes())
        return path

    @classmethod
    def load(cls, path):
        with open(path, "rb") as handle:
            return cls.from_bytes(handle.read())


def _decode_event(index, frame):
    if not (isinstance(frame, tuple) and len(frame) == 4):
        raise TraceError(
            "event #{0} is not a (t, pid, kind, data) tuple".format(index)
        )
    t, pid, kind, data = frame
    if not isinstance(t, (int, float)) or isinstance(t, bool):
        raise TraceError("event #{0} has a non-numeric time".format(index))
    if not isinstance(pid, str):
        raise TraceError("event #{0} has a non-string pid".format(index))
    if kind not in EVENT_KINDS:
        raise TraceError(
            "event #{0} has unknown kind {1!r}".format(index, kind)
        )
    if not isinstance(data, tuple):
        raise TraceError("event #{0} data is not a tuple".format(index))
    return TraceEvent(float(t), pid, kind, data)


class TraceRecorder:
    """Accumulates :class:`TraceEvent` values from a running cluster.

    All hooks fire on the cluster's event loop thread, so the list
    append order *is* the execution order.  ``limit`` bounds memory on
    long runs by forgetting the oldest events (a shrunk repro never
    needs them; the counter records the loss).
    """

    def __init__(self, limit=None):
        self.events = []
        self.limit = limit
        self.dropped = 0

    def record(self, t, pid, kind, *data):
        self.events.append(TraceEvent(t, pid, kind, tuple(data)))
        if self.limit is not None and len(self.events) > 2 * self.limit:
            excess = len(self.events) - self.limit
            del self.events[:excess]
            self.dropped += excess

    def on_action(self, time, action):
        """ActionLog observer: captures client ``bcast``/``cbcast``
        downcalls (the stack inputs that enter through the log, not the
        node)."""
        if action.name in ("bcast", "cbcast"):
            payload, pid = action.params
            self.record(time if time is not None else 0.0, pid,
                        action.name, payload)

    def trace(self, processes, initial_view, dvs="normal", source="live"):
        """Snapshot the recording as an immutable :class:`ReplayTrace`."""
        return ReplayTrace(
            processes, initial_view, list(self.events), dvs=dvs,
            source=source,
        )
