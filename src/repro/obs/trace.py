"""Causal span tracing across the VS -> DVS -> {TO, CB} towers.

One totally ordered client broadcast crosses the stack as::

    to_label     the TO layer mints the Label at the origin
    dvs_send     DVS-GPSND at the origin
    vs_send      VS-GPSND at the origin (forward to the sequencer)
    wire_send    the Data frame leaves the origin
    wire_recv    the Data frame reaches the sequencer
    vs_seq       the sequencer assigns the slot
    wire_send    the Ordered frame leaves the sequencer (per member)
    wire_recv    the Ordered frame reaches a member
    vs_deliver   VS-GPRCV at the member
    dvs_deliver  DVS-GPRCV at the member
    to_deliver   TO confirms and releases the payload (BRCV)

A causal broadcast crosses the same substrate with its own root and
release stages -- ``cb_label`` (the CB layer stamps the view-scoped
vector clock) down through the identical dvs/vs/wire stages up to
``cb_deliver`` (the hold-back queue releases the payload).  The stage
decomposition is *tier-agnostic*: every delivery decomposes as
``wire + vs + dvs + <tier> == total`` where ``<tier>`` is ``to`` or
``cb`` (see :data:`TIERS`).

The view lifecycle is traced as ``vs_round`` (connectivity change
starts a membership round) -> ``vs_form`` -> ``vs_install`` ->
``dvs_attempt`` -> ``to_established`` -> ``dvs_register``.

The tracer never invents identifiers: TO message spans stitch on the
:class:`~repro.to.summaries.Label` already carried inside Data/Ordered
payloads, CB spans on the ``(vid, seqno, origin)`` slot a
:class:`~repro.cb.messages.CbCast` determines, and view spans on the
:class:`~repro.core.viewids.ViewId` (plus the leader's round id, linked
to the view by the ``vs_form`` probe).  Both the simulator and the live
runtime therefore produce the same spans from the same wire traffic --
the tracer only listens.

Every node appends into its own :class:`~repro.obs.spans.SpanRing`;
stitching happens lazily at read time over ring snapshots.
"""

import json
from types import MappingProxyType

from repro.cb.messages import CbCast
from repro.gcs.messages import Data, Install, Ordered
from repro.obs.spans import SpanEvent, SpanRing
from repro.to.summaries import Label

#: Action-log name -> span stage for events the layers already record.
_ACTION_STAGES = MappingProxyType({
    "vs_gpsnd": "vs_send",
    "dvs_gpsnd": "dvs_send",
    "vs_gprcv": "vs_deliver",
    "dvs_gprcv": "dvs_deliver",
    "vs_newview": "vs_install",
    "dvs_newview": "dvs_attempt",
})

#: Probe name -> span stage for the events only the tracer consumes.
_PROBE_STAGES = MappingProxyType({
    "to_label": "to_label",
    "to_deliver": "to_deliver",
    "to_established": "to_established",
    "dvs_register_view": "dvs_register",
    "vs_seq": "vs_seq",
    "vs_round": "vs_round",
    "vs_form": "vs_form",
    "cb_label": "cb_label",
    "cb_deliver": "cb_deliver",
})

#: Stitch-key tag -> ordering-tier name.  Each tier's span roots at
#: ``<tier>_label`` and completes at ``<tier>_deliver``; everything in
#: between (dvs/vs/wire) is tier-independent.
TIERS = MappingProxyType({"msg": "to", "cbmsg": "cb"})

#: Message-span stage names, in causal order (for rendering).
MESSAGE_STAGES = (
    "to_label", "cb_label", "dvs_send", "vs_send", "wire_send",
    "wire_recv", "vs_seq", "vs_deliver", "dvs_deliver", "to_deliver",
    "cb_deliver",
)

#: View-span stage names, in causal order.
VIEW_STAGES = (
    "vs_round", "vs_form", "vs_install", "dvs_attempt",
    "to_established", "dvs_register",
)


def message_key(payload):
    """The stitching key hidden in a VS/DVS payload, or ``None``.

    CB casts key on their per-view slot ``(vid, seqno, origin)`` rather
    than the message object itself: the payload field may be unhashable,
    and the slot is exactly what CB content-consistency makes unique.
    """
    if isinstance(payload, Label):
        return ("msg", payload)
    if isinstance(payload, CbCast):
        return ("cbmsg", (payload.vid, payload.seqno, payload.origin))
    if (
        isinstance(payload, tuple)
        and len(payload) == 2
        and isinstance(payload[0], Label)
    ):
        return ("msg", payload[0])
    return None


def wire_key(msg):
    """The stitching key of a wire message, or ``None`` (untraced)."""
    if isinstance(msg, (Data, Ordered)):
        return message_key(msg.payload)
    if isinstance(msg, Install):
        return ("view", msg.view.id)
    return None


def _delta(earlier, later):
    if earlier is None or later is None:
        return 0.0
    return later - earlier


def _percentile(values, fraction):
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


class Tracer:
    """Collects span events and stitches them into causal spans.

    Single-threaded by contract: both hosts funnel every event through
    one thread (the simulator's driver or the runtime's event loop), so
    emission is an unsynchronized ring append.  Readers in the live
    runtime must marshal onto the loop (the cluster facade does).
    """

    def __init__(self, ring_size=65536):
        self.ring_size = ring_size
        self._rings = {}
        self._seq = 0
        #: ViewId -> the leader round that formed it (vs_form linkage).
        self._view_round = {}

    # -- Emission ----------------------------------------------------------

    def ring(self, pid):
        ring = self._rings.get(pid)
        if ring is None:
            ring = SpanRing(self.ring_size)
            self._rings[pid] = ring
        return ring

    def _emit(self, key, stage, pid, t, peer=None):
        self._seq += 1
        self.ring(pid).append(
            SpanEvent(key=key, stage=stage, pid=pid, t=t,
                      seq=self._seq, peer=peer)
        )

    def on_action(self, t, name, params):
        """Hook for :class:`~repro.gcs.recorder.ActionLog`: both the
        layers' interface actions and the tracer-only probes."""
        stage = _ACTION_STAGES.get(name)
        if stage is not None:
            if name in ("vs_gprcv", "dvs_gprcv"):
                key, pid = message_key(params[0]), params[2]
            elif name in ("vs_newview", "dvs_newview"):
                key, pid = ("view", params[0].id), params[1]
            else:  # vs_gpsnd / dvs_gpsnd
                key, pid = message_key(params[0]), params[1]
            if key is not None:
                self._emit(key, stage, pid, t)
            return
        stage = _PROBE_STAGES.get(name)
        if stage is None:
            return
        if name in ("to_label", "to_deliver"):
            self._emit(("msg", params[0]), stage, params[1], t)
        elif name in ("cb_label", "cb_deliver"):
            key = message_key(params[0])
            if key is not None:
                self._emit(key, stage, params[1], t)
        elif name in ("to_established", "dvs_register_view"):
            self._emit(("view", params[0]), stage, params[1], t)
        elif name == "vs_seq":
            key = message_key(params[0])
            if key is not None:
                self._emit(key, stage, params[1], t)
        elif name == "vs_round":
            self._emit(("round", params[0]), stage, params[1], t)
        elif name == "vs_form":
            round_id, vid, pid = params
            self._view_round[vid] = round_id
            self._emit(("view", vid), stage, pid, t)

    def wire_event(self, stage, pid, peer, msg, t):
        """A frame crossed the transport (``wire_send``/``wire_recv``)."""
        key = wire_key(msg)
        if key is not None:
            self._emit(key, stage, pid, t, peer=peer)

    # -- Reading -----------------------------------------------------------

    def events(self):
        """Every live event across all rings, in emission order."""
        merged = []
        for pid in sorted(self._rings):
            merged.extend(self._rings[pid].snapshot())
        merged.sort(key=lambda e: e.seq)
        return merged

    def dropped(self):
        return sum(r.dropped for r in self._rings.values())

    def _by_key(self):
        grouped = {}
        for event in self.events():
            grouped.setdefault(event.key, []).append(event)
        return grouped

    @staticmethod
    def _first(events, stage, pid=None, peer=None):
        for event in events:
            if event.stage != stage:
                continue
            if pid is not None and event.pid != pid:
                continue
            if peer is not None and event.peer != peer:
                continue
            return event
        return None

    @classmethod
    def _last(cls, events, stage, pid=None, peer=None):
        return cls._first(list(reversed(events)), stage, pid=pid,
                          peer=peer)

    def deliveries(self):
        """One per-stage breakdown per ``(label, destination)`` pair.

        Tier-agnostic: a row's ``tier`` is ``"to"`` or ``"cb"`` and its
        ordering-layer stage is keyed by that tier name, so a TO
        delivery decomposes as ``wire + vs + dvs + to == total`` and a
        CB delivery as ``wire + vs + dvs + cb == total``.  Stage
        attribution (times in the host's clock unit, seconds):

        - ``to``/``cb`` -- labelling (Label mint / clock stamp) at the
          origin plus confirmation (TO confirm / hold-back release) at
          the destination;
        - ``dvs``  -- the primary filter, both directions;
        - ``wire`` -- transport time of the Data hop (origin ->
          sequencer) plus the Ordered hop (sequencer -> destination),
          with the sequencer identified by the ``vs_seq`` probe; a hop
          that never touched the wire (self-send local loopback, or a
          hop whose endpoints coincide) costs 0;
        - ``vs``   -- the residual, so the four stages sum *exactly*
          to ``total`` per delivery (sequencing, acks and stability
          live here).
        """
        rows = []
        for key, events in self._by_key().items():
            tier = TIERS.get(key[0])
            if tier is None:
                continue
            label = key[1]
            label_ev = self._first(events, tier + "_label")
            delivers = [
                e for e in events if e.stage == tier + "_deliver"
            ]
            if label_ev is None:
                continue
            origin = label_ev.pid
            t0 = label_ev.t
            dvs_send = self._first(events, "dvs_send", pid=origin)
            vs_send = self._first(events, "vs_send", pid=origin)
            seq_ev = self._first(events, "vs_seq")
            sequencer = None if seq_ev is None else seq_ev.pid
            hop1 = None
            if sequencer is not None and sequencer != origin:
                hop1 = (
                    self._first(events, "wire_send", pid=origin,
                                peer=sequencer),
                    self._first(events, "wire_recv", pid=sequencer,
                                peer=origin),
                )
            for deliver in delivers:
                dst = deliver.pid
                vs_del = self._first(events, "vs_deliver", pid=dst)
                dvs_del = self._first(events, "dvs_deliver", pid=dst)
                hop2 = None
                if sequencer is not None and sequencer != dst:
                    # _last: the Ordered frame is the newest wire pair
                    # on this edge (the Data broadcast may share it).
                    hop2 = (
                        self._last(events, "wire_send", pid=sequencer,
                                   peer=dst),
                        self._last(events, "wire_recv", pid=dst,
                                   peer=sequencer),
                    )
                total = _delta(t0, deliver.t)
                tier_time = (
                    _delta(t0, None if dvs_send is None else dvs_send.t)
                    + _delta(
                        None if dvs_del is None else dvs_del.t, deliver.t
                    )
                )
                dvs_time = _delta(
                    None if dvs_send is None else dvs_send.t,
                    None if vs_send is None else vs_send.t,
                ) + _delta(
                    None if vs_del is None else vs_del.t,
                    None if dvs_del is None else dvs_del.t,
                )
                wire_time = 0.0
                for hop in (hop1, hop2):
                    if hop is not None and None not in hop:
                        wire_time += _delta(hop[0].t, hop[1].t)
                rows.append({
                    "tier": tier,
                    "label": label,
                    "origin": origin,
                    "dst": dst,
                    "total": total,
                    "stages": {
                        tier: tier_time,
                        "dvs": dvs_time,
                        "wire": wire_time,
                        "vs": total - tier_time - dvs_time - wire_time,
                    },
                })
        rows.sort(key=lambda r: (r["tier"], str(r["label"]), r["dst"]))
        return rows

    def orphans(self):
        """Deliveries whose span has no ``to_label``/``cb_label`` root
        -- with the rings sized to the run, there must be none."""
        bad = []
        for key, events in self._by_key().items():
            tier = TIERS.get(key[0])
            if tier is None:
                continue
            if self._first(events, tier + "_label") is not None:
                continue
            for event in events:
                if event.stage == tier + "_deliver":
                    bad.append((key[1], event.pid))
        return sorted(bad, key=lambda pair: (str(pair[0]), pair[1]))

    def view_spans(self):
        """One record per attempted/established view."""
        grouped = self._by_key()
        records = []
        for key, events in grouped.items():
            if key[0] != "view":
                continue
            vid = key[1]
            stages = {}
            for event in events:
                if event.stage not in stages:
                    stages[event.stage] = event.t
            round_id = self._view_round.get(vid)
            if round_id is not None:
                for event in grouped.get(("round", round_id), ()):
                    if event.stage == "vs_round":
                        stages.setdefault("vs_round", event.t)
                        break
            known = [t for t in stages.values() if t is not None]
            records.append({
                "view": vid,
                "round": round_id,
                "stages": stages,
                "established_at": sorted(
                    e.pid for e in events if e.stage == "to_established"
                ),
                "duration": (max(known) - min(known)) if known else None,
            })
        records.sort(key=lambda r: str(r["view"]))
        return records

    def stage_summary(self):
        """Aggregate per-stage statistics over all message deliveries."""
        rows = self.deliveries()
        summary = {
            "deliveries": len(rows),
            "deliveries_by_tier": {
                tier: sum(1 for r in rows if r["tier"] == tier)
                for tier in sorted(set(TIERS.values()))
            },
            "messages": len({
                (r["tier"], str(r["label"])) for r in rows
            }),
            "orphans": len(self.orphans()),
            "views": sum(1 for k in self._by_key() if k[0] == "view"),
            "events_dropped": self.dropped(),
            "stages": {},
        }
        for stage in ("wire", "vs", "dvs", "to", "cb", "total"):
            values = [
                r["total"] if stage == "total" else r["stages"][stage]
                for r in rows
                if stage == "total" or stage in r["stages"]
            ]
            if not values:
                continue
            summary["stages"][stage] = {
                "count": len(values),
                "mean_ms": 1e3 * sum(values) / len(values),
                "p50_ms": 1e3 * _percentile(values, 0.50),
                "p95_ms": 1e3 * _percentile(values, 0.95),
                "max_ms": 1e3 * max(values),
            }
        return summary

    # -- Export ------------------------------------------------------------

    @staticmethod
    def _label_json(label):
        """JSON form of a span root: a TO :class:`Label` or a CB
        ``(vid, seqno, origin)`` slot -- the same three coordinates."""
        if isinstance(label, Label):
            return {
                "vid": str(label.id),
                "seqno": label.seqno,
                "origin": label.origin,
            }
        vid, seqno, origin = label
        return {"vid": str(vid), "seqno": seqno, "origin": origin}

    def to_json_dict(self):
        """The full trace as JSON-ready data (spans, views, summary)."""
        deliveries = [
            {
                "tier": row["tier"],
                "label": self._label_json(row["label"]),
                "origin": row["origin"],
                "dst": row["dst"],
                "total_ms": 1e3 * row["total"],
                "stages_ms": {
                    stage: 1e3 * value
                    for stage, value in sorted(row["stages"].items())
                },
            }
            for row in self.deliveries()
        ]
        views = [
            {
                "view": str(record["view"]),
                "round": (
                    None if record["round"] is None
                    else list(record["round"])
                ),
                "stages": {
                    stage: record["stages"][stage]
                    for stage in sorted(record["stages"])
                },
                "established_at": record["established_at"],
                "duration_s": record["duration"],
            }
            for record in self.view_spans()
        ]
        return {
            "ring_size": self.ring_size,
            "events": sum(len(r) for r in self._rings.values()),
            "events_dropped": self.dropped(),
            "summary": self.stage_summary(),
            "deliveries": deliveries,
            "views": views,
            "orphans": [
                {"label": self._label_json(label), "dst": dst}
                for label, dst in self.orphans()
            ],
        }

    def to_json(self):
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True)
