"""Reusable hypothesis strategies for protocol structures.

These feed the property-based tests (tests/property/) and are part of the
public checking API so downstream users can property-test their own
applications over the stack.
"""

from hypothesis import strategies as st

from repro.core.viewids import ViewId
from repro.core.views import View
from repro.to.summaries import Label, Summary

DEFAULT_PROCS = ("p1", "p2", "p3", "p4", "p5")


def process_ids(procs=None):
    return st.sampled_from(list(procs or DEFAULT_PROCS))


def view_ids(max_epoch=10, origins=("", "a", "b", "c")):
    return st.builds(
        ViewId,
        st.integers(min_value=0, max_value=max_epoch),
        st.sampled_from(list(origins)),
    )


def memberships(procs=None, min_size=1):
    return st.frozensets(process_ids(procs), min_size=min_size)


def views(procs=None, max_epoch=10):
    return st.builds(View, view_ids(max_epoch), memberships(procs))


def increasing_view_pools(procs=None, max_views=6, min_size=1):
    """Finite adversary pools with strictly increasing epochs."""
    procs = list(procs or DEFAULT_PROCS)

    def build(member_sets):
        return [
            View(ViewId(epoch + 1, ""), members)
            for epoch, members in enumerate(member_sets)
        ]

    return st.lists(
        memberships(procs, min_size=min_size), max_size=max_views
    ).map(build)


def labels(procs=None, max_epoch=4, max_seqno=4):
    return st.builds(
        Label,
        view_ids(max_epoch, origins=("", "a")),
        st.integers(min_value=1, max_value=max_seqno),
        process_ids(procs),
    )


def summaries(procs=None, payloads=None):
    payloads = payloads or st.integers(min_value=0, max_value=9)
    return st.builds(
        Summary,
        st.frozensets(st.tuples(labels(procs), payloads), max_size=6),
        st.lists(labels(procs), max_size=5, unique=True).map(tuple),
        st.integers(min_value=1, max_value=6),
        view_ids(4, origins=("", "a")),
    )


def gotstates(procs=None):
    return st.dictionaries(
        process_ids(procs), summaries(procs), min_size=1, max_size=4
    )


def configurations(procs=None, max_groups=3):
    """One connectivity configuration: a partition of a subset of procs."""
    procs = list(procs or DEFAULT_PROCS)

    def to_partition(assignment):
        groups = {}
        for pid, group in assignment.items():
            groups.setdefault(group, set()).add(pid)
        return [frozenset(g) for g in groups.values()]

    return st.dictionaries(
        st.sampled_from(procs),
        st.integers(min_value=0, max_value=max_groups - 1),
        min_size=1,
    ).map(to_partition)


def scenarios(procs=None, max_steps=40):
    """Connectivity histories for the membership trackers."""
    return st.lists(configurations(procs), min_size=1, max_size=max_steps)


# -- Nemesis fault plans (chaos testing, repro.faults) -------------------------


def _times(horizon):
    return st.floats(min_value=1.0, max_value=horizon, allow_nan=False,
                     allow_infinity=False)


def _durations(max_duration):
    return st.floats(min_value=1.0, max_value=max_duration, allow_nan=False,
                     allow_infinity=False)


def _links(procs):
    pairs = [
        (src, dst) for src in procs for dst in procs if src != dst
    ]
    return st.one_of(
        st.none(),
        st.frozensets(st.sampled_from(pairs), min_size=1, max_size=3)
        .map(lambda links: tuple(sorted(links))),
    )


def fault_ops(procs=None, horizon=120.0, max_duration=30.0):
    """One timed nemesis op (see :mod:`repro.faults.nemesis`)."""
    from repro.faults.nemesis import FaultOp

    procs = list(procs or DEFAULT_PROCS)
    pid = st.sampled_from(procs)
    groups = st.lists(
        st.integers(min_value=0, max_value=2),
        min_size=len(procs), max_size=len(procs),
    ).map(lambda assignment: _assignment_to_groups(procs, assignment))
    probs = st.floats(min_value=0.05, max_value=0.9)
    kinds = st.one_of(
        st.tuples(st.just("crash"), st.tuples(pid)),
        st.tuples(st.just("recover"), st.tuples(pid)),
        st.tuples(st.just("partition"), st.tuples(groups)),
        st.tuples(st.just("heal"), st.just(())),
        st.tuples(
            st.just("drop"),
            st.tuples(_links(procs), probs, _durations(max_duration)),
        ),
        st.tuples(
            st.just("duplicate"),
            st.tuples(_links(procs), probs,
                      st.floats(min_value=0.5, max_value=8.0),
                      _durations(max_duration)),
        ),
        st.tuples(
            st.just("delay"),
            st.tuples(_links(procs),
                      st.floats(min_value=0.0, max_value=10.0),
                      probs,
                      st.floats(min_value=0.0, max_value=20.0),
                      _durations(max_duration)),
        ),
        st.tuples(
            st.just("oneway"),
            st.tuples(
                _links(procs).filter(lambda links: links is not None),
                _durations(max_duration),
            ),
        ),
    )
    return st.builds(
        lambda at, kind_args: FaultOp(at, kind_args[0], kind_args[1]),
        _times(horizon),
        kinds,
    )


def _assignment_to_groups(procs, assignment):
    groups = {}
    for pid, group in zip(procs, assignment):
        groups.setdefault(group, []).append(pid)
    return tuple(tuple(sorted(g)) for g in groups.values())


def nemesis_plans(procs=None, max_ops=8, horizon=120.0, max_duration=30.0):
    """Whole nemesis plans, for property-testing the chaos harness."""
    from repro.faults.nemesis import NemesisPlan

    return st.lists(
        fault_ops(procs, horizon=horizon, max_duration=max_duration),
        max_size=max_ops,
    ).map(NemesisPlan)
