"""Environment automata and adversary view pools.

Clients close the service interfaces (``*_gpsnd`` / ``*_register`` /
``bcast`` are inputs of the services, so somebody must output them); view
pools feed the specifications' internal view-creation nondeterminism, which
models the network adversary deciding connectivity.
"""

import itertools
import random

from repro.core.views import View, make_view
from repro.core.viewids import ViewId
from repro.ioa.action import act
from repro.ioa.automaton import TransitionAutomaton
from repro.ioa.state import State


def _proc_param_index(action_name):
    """Index of the process parameter for client-facing actions."""
    return {
        "vs_gpsnd": 1,
        "vs_newview": 1,
        "vs_gprcv": 2,
        "vs_safe": 2,
        "dvs_gpsnd": 1,
        "dvs_register": 0,
        "dvs_newview": 1,
        "dvs_gprcv": 2,
        "dvs_safe": 2,
        "bcast": 1,
        "brcv": 2,
        "cbcast": 1,
        "cb_brcv": 2,
        "sx_sendstate": 1,
        "sx_statedelivery": 1,
        "sx_statesafe": 0,
    }.get(action_name)


class _PerProcessDriver(TransitionAutomaton):
    """Base for per-process client drivers."""

    parameterized_signature = True

    def __init__(self, pid, name):
        self.pid = pid
        self.name = name

    def participates(self, action):
        index = _proc_param_index(action.name)
        if index is None:
            return False
        return (
            len(action.params) > index and action.params[index] == self.pid
        )


class VsClientDriver(_PerProcessDriver):
    """Client of the raw VS service at one process.

    Sends a fixed budget of distinct messages ``("m", pid, i)`` through
    ``vs_gpsnd``; absorbs deliveries.
    """

    inputs = frozenset({"vs_newview", "vs_gprcv", "vs_safe"})
    outputs = frozenset({"vs_gpsnd"})

    def __init__(self, pid, budget=3):
        super().__init__(pid, "vs_client:{0}".format(pid))
        self.budget = budget

    def initial_state(self):
        return State(sent=0)

    def pre_vs_gpsnd(self, state, m, p):
        return state.sent < self.budget and m == ("m", self.pid, state.sent)

    def eff_vs_gpsnd(self, state, m, p):
        state.sent += 1

    def cand_vs_gpsnd(self, state):
        if state.sent < self.budget:
            yield act("vs_gpsnd", ("m", self.pid, state.sent), self.pid)


class DvsClientDriver(_PerProcessDriver):
    """Client of DVS (spec or DVS-IMPL) at one process.

    Tracks the current view from ``dvs_newview``; may register the current
    view (once) and send a budget of distinct messages.  Whether and when
    to register is left to the scheduler -- the adversary controls the
    interleaving, as the specification intends.  With ``eager_register``
    the driver refuses to send before registering, modelling a disciplined
    application (like DVS-TO-TO) that completes its state exchange first.
    """

    inputs = frozenset({"dvs_newview", "dvs_gprcv", "dvs_safe"})
    outputs = frozenset({"dvs_gpsnd", "dvs_register"})

    def __init__(self, pid, budget=3, eager_register=False):
        super().__init__(pid, "dvs_client:{0}".format(pid))
        self.budget = budget
        self.eager_register = eager_register

    def initial_state(self):
        return State(view=None, registered_ids=set(), sent=0, delivered=[])

    def eff_dvs_newview(self, state, v, p):
        state.view = v

    def eff_dvs_gprcv(self, state, m, q, p):
        state.delivered.append((m, q))

    def pre_dvs_register(self, state, p):
        return (
            state.view is not None
            and state.view.id not in state.registered_ids
        )

    def eff_dvs_register(self, state, p):
        state.registered_ids.add(state.view.id)

    def cand_dvs_register(self, state):
        if self.pre_dvs_register(state, self.pid):
            yield act("dvs_register", self.pid)

    def pre_dvs_gpsnd(self, state, m, p):
        if state.sent >= self.budget or m != ("m", self.pid, state.sent):
            return False
        if self.eager_register:
            return (
                state.view is not None
                and state.view.id in state.registered_ids
            )
        return True

    def eff_dvs_gpsnd(self, state, m, p):
        state.sent += 1

    def cand_dvs_gpsnd(self, state):
        candidate = ("m", self.pid, state.sent)
        if self.pre_dvs_gpsnd(state, candidate, self.pid):
            yield act("dvs_gpsnd", candidate, self.pid)


class ToClientDriver(_PerProcessDriver):
    """Client of the TO broadcast service at one process.

    Broadcasts a budget of distinct payloads ``("a", pid, i)`` and records
    deliveries (used by the TO trace-property checks).
    """

    inputs = frozenset({"brcv"})
    outputs = frozenset({"bcast"})

    def __init__(self, pid, budget=3):
        super().__init__(pid, "to_client:{0}".format(pid))
        self.budget = budget

    def initial_state(self):
        return State(sent=0, delivered=[])

    def pre_bcast(self, state, a, p):
        return state.sent < self.budget and a == ("a", self.pid, state.sent)

    def eff_bcast(self, state, a, p):
        state.sent += 1

    def cand_bcast(self, state):
        if state.sent < self.budget:
            yield act("bcast", ("a", self.pid, state.sent), self.pid)

    def eff_brcv(self, state, a, q, p):
        state.delivered.append((a, q))


class CbClientDriver(_PerProcessDriver):
    """Client of the CB broadcast service at one process.

    Broadcasts a budget of distinct payloads ``("c", pid, i)`` and
    records deliveries (used by the CB trace-property checks).
    """

    inputs = frozenset({"cb_brcv"})
    outputs = frozenset({"cbcast"})

    def __init__(self, pid, budget=3):
        super().__init__(pid, "cb_client:{0}".format(pid))
        self.budget = budget

    def initial_state(self):
        return State(sent=0, delivered=[])

    def pre_cbcast(self, state, a, p):
        return state.sent < self.budget and a == ("c", self.pid, state.sent)

    def eff_cbcast(self, state, a, p):
        state.sent += 1

    def cand_cbcast(self, state):
        if state.sent < self.budget:
            yield act("cbcast", ("c", self.pid, state.sent), self.pid)

    def eff_cb_brcv(self, state, a, q, p):
        state.delivered.append((a, q))


class SxClientDriver(_PerProcessDriver):
    """Client of the SX-DVS variant at one process.

    Hands the service a snapshot for every view it is told about
    (``sx_sendstate``); the service's ``sx_statedelivery`` /
    ``sx_statesafe`` replace explicit registration.  Also sends a budget
    of distinct payloads, like :class:`DvsClientDriver`.
    """

    inputs = frozenset(
        {"dvs_newview", "dvs_gprcv", "dvs_safe",
         "sx_statedelivery", "sx_statesafe"}
    )
    outputs = frozenset({"dvs_gpsnd", "sx_sendstate"})

    def __init__(self, pid, budget=3):
        super().__init__(pid, "sx_client:{0}".format(pid))
        self.budget = budget

    def initial_state(self):
        return State(
            view=None, sent_state_ids=set(), sent=0,
            delivered=[], bundles=[],
        )

    def eff_dvs_newview(self, state, v, p):
        state.view = v

    def eff_dvs_gprcv(self, state, m, q, p):
        state.delivered.append((m, q))

    def eff_sx_statedelivery(self, state, bundle, p):
        state.bundles.append(bundle)

    def _snapshot(self, state):
        return ("snap", self.pid, state.view.id)

    def pre_sx_sendstate(self, state, x, p):
        return (
            state.view is not None
            and state.view.id not in state.sent_state_ids
            and x == self._snapshot(state)
        )

    def eff_sx_sendstate(self, state, x, p):
        state.sent_state_ids.add(state.view.id)

    def cand_sx_sendstate(self, state):
        if (
            state.view is not None
            and state.view.id not in state.sent_state_ids
        ):
            yield act("sx_sendstate", self._snapshot(state), self.pid)

    def pre_dvs_gpsnd(self, state, m, p):
        return state.sent < self.budget and m == ("m", self.pid, state.sent)

    def eff_dvs_gpsnd(self, state, m, p):
        state.sent += 1

    def cand_dvs_gpsnd(self, state):
        if state.sent < self.budget:
            yield act("dvs_gpsnd", ("m", self.pid, state.sent), self.pid)


# -- Adversary view pools ------------------------------------------------------


def grid_view_pool(universe, max_epoch, min_size=1, origin=""):
    """Every subset of ``universe`` (of size >= min_size) at every epoch.

    Exhaustive pools for the bounded explorer; sizes grow fast, so keep
    ``universe`` and ``max_epoch`` small.
    """
    universe = sorted(universe)
    pool = []
    for epoch in range(1, max_epoch + 1):
        for size in range(min_size, len(universe) + 1):
            for members in itertools.combinations(universe, size):
                pool.append(View(ViewId(epoch, origin), frozenset(members)))
    return pool


def random_view_pool(universe, count, seed=0, min_size=1, origin=""):
    """``count`` random views with strictly increasing epochs.

    Models an adversary that repeatedly partitions and merges the system:
    each proposed view is a uniformly random subset (of size >= min_size).
    """
    rng = random.Random(seed)
    universe = sorted(universe)
    pool = []
    for epoch in range(1, count + 1):
        size = rng.randint(max(min_size, 1), len(universe))
        members = rng.sample(universe, size)
        pool.append(View(ViewId(epoch, origin), frozenset(members)))
    return pool


def majority_view_pool(universe, count, seed=0):
    """Random views that always contain a majority of the universe.

    Under this adversary the *static* majority definition of primary would
    also accept every view -- useful as a control in the E6/E7 studies.
    """
    universe = sorted(universe)
    floor = len(universe) // 2 + 1
    return random_view_pool(universe, count, seed=seed, min_size=floor)


def chain_view_pool(memberships, start_epoch=1, origin=""):
    """A deterministic pool: one view per membership, epochs increasing.

    Handy in unit tests for forcing a specific view sequence, e.g. the
    split/merge scenarios of the Lotem-Keidar-Dolev examples.
    """
    return [
        make_view(ViewId(start_epoch + i, origin), members)
        for i, members in enumerate(memberships)
    ]
