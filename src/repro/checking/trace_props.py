"""Trace-level property checkers.

Where the invariants look at states, these look only at *traces* -- the
externally visible behaviour -- so they apply equally to the specification
automata, the IOA implementations and the concrete runtime stack (whose
event log is converted into the same action vocabulary).

Each checker raises ``AssertionError`` with a diagnostic on violation and
returns a small stats dict on success.
"""

from collections import defaultdict

from repro.core.viewids import vid_gt


def _views_per_process(trace, newview_name):
    views = defaultdict(list)
    for action in trace:
        if action.name == newview_name:
            v, p = action.params
            views[p].append(v)
    return views


def check_view_order(trace, newview_name):
    """Views are reported to each process in increasing identifier order,
    and only to their members."""
    for p, views in _views_per_process(trace, newview_name).items():
        last = None
        for v in views:
            assert p in v.set, (
                "{0} received view {1} it is not a member of".format(p, v)
            )
            assert vid_gt(v.id, last), (
                "{0} received views out of order: {1} after {2}".format(
                    p, v, last
                )
            )
            last = v.id
    return True


def _delivery_analysis(trace, prefix, initial_view):
    """Common within-view delivery analysis for VS-like traces.

    Returns (stats, per-(process,view) delivery sequences).
    """
    current = defaultdict(lambda: None)
    for p in initial_view.set:
        current[p] = initial_view
    sent_in_view = defaultdict(list)  # view id -> [(m, p)] in send order
    delivered = defaultdict(list)  # (q, view id) -> [(m, p)]
    safe = defaultdict(list)  # (q, view id) -> [(m, p)]
    for action in trace:
        name = action.name
        if name == prefix + "_newview":
            v, p = action.params
            current[p] = v
        elif name == prefix + "_gpsnd":
            m, p = action.params
            if current[p] is not None:
                sent_in_view[current[p].id].append((m, p))
        elif name == prefix + "_gprcv":
            m, p, q = action.params
            assert current[q] is not None, (
                "{0} delivered {1!r} with no current view".format(q, m)
            )
            g = current[q].id
            assert q in current[q].set
            delivered[(q, g)].append((m, p))
        elif name == prefix + "_safe":
            m, p, q = action.params
            assert current[q] is not None
            safe[(q, g_of(current, q))].append((m, p))
    return sent_in_view, delivered, safe, current


def g_of(current, q):
    return current[q].id


def check_vs_trace_properties(trace, initial_view, prefix="vs"):
    """The externally visible VS guarantees.

    1. *View order*: newviews per process in increasing id order, members
       only.
    2. *Sending view delivery*: a message delivered at q in view g was
       sent by its sender while in view g, no later than its delivery.
    3. *Common order, gap-free prefixes*: for each view, the delivery
       sequences of the members are prefixes of one common sequence.
    4. *No duplication*: no (message, sender) delivered twice at one
       process in one view (holds when clients send distinct messages).
    5. *Safe follows delivery*: the safe sequence at q in g is a prefix of
       q's delivery sequence in g, and every safe message was delivered to
       every member of g that ever delivered past it.
    """
    check_view_order(trace, prefix + "_newview")
    sent_in_view, delivered, safe, _ = _delivery_analysis(
        trace, prefix, initial_view
    )

    # (2) delivered only if sent in that view (send precedes via replay
    # order: we only recorded sends seen so far in trace order, and the
    # delivery analysis consumed the whole trace; verify membership).
    for (q, g), entries in delivered.items():
        for m, p in entries:
            assert (m, p) in sent_in_view[g], (
                "{0} delivered {1!r} from {2} in view {3} where it was "
                "never sent".format(q, m, p, g)
            )

    # (3) common order per view.
    by_view = defaultdict(list)
    for (q, g), entries in delivered.items():
        by_view[g].append((q, entries))
    for g, sequences in by_view.items():
        longest = max(sequences, key=lambda item: len(item[1]))[1]
        for q, entries in sequences:
            assert longest[: len(entries)] == entries, (
                "deliveries at {0} in view {1} are not a prefix of the "
                "common order: {2} vs {3}".format(q, g, entries, longest)
            )

    # (4) no duplicates.
    for (q, g), entries in delivered.items():
        assert len(set(entries)) == len(entries), (
            "duplicate delivery at {0} in view {1}: {2}".format(
                q, g, entries
            )
        )

    # (5) safe is a prefix of delivered.
    for (q, g), entries in safe.items():
        got = delivered.get((q, g), [])
        assert got[: len(entries)] == entries, (
            "safe sequence at {0} in view {1} is not a prefix of its "
            "deliveries: {2} vs {3}".format(q, g, entries, got)
        )

    return {
        "views": len(by_view),
        "deliveries": sum(len(v) for v in delivered.values()),
        "safe": sum(len(v) for v in safe.values()),
    }


def check_dvs_trace_properties(trace, initial_view):
    """The externally visible DVS guarantees (same shape as VS, plus
    registration sanity: a process only registers views it received)."""
    stats = check_vs_trace_properties(trace, initial_view, prefix="dvs")
    current = {p: initial_view for p in initial_view.set}
    received = defaultdict(set)
    for p in initial_view.set:
        received[p].add(initial_view.id)
    registers = 0
    for action in trace:
        if action.name == "dvs_newview":
            v, p = action.params
            current[p] = v
            received[p].add(v.id)
        elif action.name == "dvs_register":
            (p,) = action.params
            if p in current and current[p] is not None:
                assert current[p].id in received[p]
                registers += 1
    stats["registers"] = registers
    return stats


def check_to_trace_properties(trace):
    """The externally visible TO guarantees (Theorem 6.4's conclusion).

    1. *Integrity & attribution*: every ``brcv(a, q, p)`` is preceded by
       ``bcast(a, q)``.
    2. *No duplication*: no payload delivered twice at one process
       (requires distinct payloads from the drivers).
    3. *Total order with gap-free prefixes*: the per-process delivery
       sequences are pairwise prefix-consistent, i.e. prefixes of one
       common system-wide order.
    """
    broadcast = set()
    deliveries = defaultdict(list)
    for action in trace:
        if action.name == "bcast":
            a, p = action.params
            broadcast.add((a, p))
        elif action.name == "brcv":
            a, q, p = action.params
            assert (a, q) in broadcast, (
                "{0} delivered {1!r} attributed to {2} before/without its "
                "broadcast".format(p, a, q)
            )
            deliveries[p].append((a, q))

    for p, entries in deliveries.items():
        assert len(set(entries)) == len(entries), (
            "duplicate delivery at {0}: {1}".format(p, entries)
        )

    sequences = list(deliveries.values())
    for i, a_seq in enumerate(sequences):
        for b_seq in sequences[i + 1:]:
            shorter, longer = (
                (a_seq, b_seq) if len(a_seq) <= len(b_seq) else (b_seq, a_seq)
            )
            assert longer[: len(shorter)] == shorter, (
                "delivery sequences disagree: {0} vs {1}".format(
                    a_seq, b_seq
                )
            )

    return {
        "broadcasts": len(broadcast),
        "deliveries": sum(len(v) for v in deliveries.values()),
        "max_delivered": max((len(v) for v in deliveries.values()), default=0),
    }


def check_cb_trace_properties(trace):
    """The externally visible CB guarantees (stable case).

    1. *Integrity & attribution*: every ``cb_brcv(a, q, p)`` is preceded
       by ``cbcast(a, q)``.
    2. *No duplication*: no payload delivered twice at one process
       (requires distinct payloads from the drivers).
    3. *Causal order*: when p delivers a broadcast, every broadcast in
       its causal past -- whatever its sender had delivered or itself
       broadcast beforehand -- has already been delivered at p.  This
       implies per-sender gap-free FIFO.

    Causal precedence is reconstructed from the trace interleaving
    itself, so this checker applies to CB *spec* traces and to CB-IMPL
    runs without view changes; across view changes the implementation's
    guarantee is deliberately view-scoped (checked by the CB-IMPL
    invariants and the runtime safety monitor instead).
    """
    ids = {}  # (a, q) -> broadcast id
    past = {}  # id -> frozenset of ids
    knowledge = defaultdict(set)  # process -> ids broadcast or delivered
    delivered_ids = defaultdict(set)
    deliveries = defaultdict(list)
    per_sender = defaultdict(int)
    for action in trace:
        if action.name == "cbcast":
            a, q = action.params
            assert (a, q) not in ids, (
                "{0} broadcast {1!r} twice (drivers must send distinct "
                "payloads)".format(q, a)
            )
            bid = (q, per_sender[q])
            per_sender[q] += 1
            ids[(a, q)] = bid
            past[bid] = frozenset(knowledge[q])
            knowledge[q].add(bid)
        elif action.name == "cb_brcv":
            a, q, p = action.params
            bid = ids.get((a, q))
            assert bid is not None, (
                "{0} delivered {1!r} attributed to {2} before/without "
                "its broadcast".format(p, a, q)
            )
            assert bid not in delivered_ids[p], (
                "duplicate delivery at {0}: {1!r} from {2}".format(p, a, q)
            )
            missing = past[bid] - delivered_ids[p]
            assert not missing, (
                "causal violation at {0}: delivered {1!r} from {2} "
                "before its causal predecessors {3}".format(
                    p, a, q, sorted(missing)
                )
            )
            delivered_ids[p].add(bid)
            knowledge[p].add(bid)
            deliveries[p].append((a, q))

    return {
        "broadcasts": len(ids),
        "deliveries": sum(len(v) for v in deliveries.values()),
        "max_delivered": max(
            (len(v) for v in deliveries.values()), default=0
        ),
    }
