"""Environments, trace properties and harnesses for checking the paper.

The specifications and algorithms are *open* systems; to execute them we
close them with environment automata:

- :mod:`repro.checking.drivers` -- client drivers (send / register /
  broadcast) and view-pool generators that play the network adversary;
- :mod:`repro.checking.harness` -- one-call builders for closed systems:
  VS + clients, DVS spec + clients, DVS-IMPL + clients, TO-IMPL + clients;
- :mod:`repro.checking.trace_props` -- reusable trace-level property
  checkers (the externally visible guarantees of VS, DVS and TO).
"""

from repro.checking import strategies
from repro.checking.drivers import (
    CbClientDriver,
    DvsClientDriver,
    SxClientDriver,
    ToClientDriver,
    VsClientDriver,
    grid_view_pool,
    random_view_pool,
)
from repro.checking.harness import (
    build_closed_cb_impl,
    build_closed_dvs_impl,
    build_closed_full_stack,
    build_closed_sx_dvs_impl,
    build_closed_sx_to_impl,
    build_closed_dvs_spec,
    build_closed_to_impl,
    build_closed_vs_spec,
    default_weights,
)
from repro.checking.isis_property import isis_violations
from repro.checking.trace_props import (
    check_cb_trace_properties,
    check_dvs_trace_properties,
    check_to_trace_properties,
    check_vs_trace_properties,
)

__all__ = [
    "CbClientDriver",
    "DvsClientDriver",
    "SxClientDriver",
    "build_closed_full_stack",
    "build_closed_sx_dvs_impl",
    "build_closed_sx_to_impl",
    "isis_violations",
    "strategies",
    "ToClientDriver",
    "VsClientDriver",
    "build_closed_cb_impl",
    "build_closed_dvs_impl",
    "build_closed_dvs_spec",
    "build_closed_to_impl",
    "build_closed_vs_spec",
    "check_cb_trace_properties",
    "check_dvs_trace_properties",
    "check_to_trace_properties",
    "check_vs_trace_properties",
    "default_weights",
    "grid_view_pool",
    "random_view_pool",
]
