"""The Isis same-messages property, and why DVS does not provide it.

Section 7 (and the introduction's closing remark) single out one property
of Isis that the DVS specification deliberately omits: *processes that
move together from one view to the next receive exactly the same messages
in the first view*.  The paper notes this is "not needed to verify
applications such as the one giving a totally-ordered broadcast".

This module makes that discussion executable:

- :func:`isis_violations` scans a DVS trace for pairs of processes that
  moved together between consecutive views at a process pair yet received
  different message sets in the earlier view;
- the accompanying experiment (tests/checking/test_isis_property.py and
  benchmark E9) *finds* such violations in DVS executions -- confirming
  the omission is real, not hypothetical -- and confirms the TO trace
  properties hold on those same executions, which is the paper's point:
  total order does not need the Isis property.
"""

from collections import defaultdict
from dataclasses import dataclass
from typing import FrozenSet, Tuple


@dataclass(frozen=True)
class IsisViolation:
    """Two processes moved together but diverged in what they received."""

    earlier_view: object
    later_view: object
    first: str
    second: str
    only_first: FrozenSet[Tuple]
    only_second: FrozenSet[Tuple]

    def __str__(self):
        return (
            "{0} and {1} moved {2} -> {3} with different deliveries "
            "(only {0}: {4}; only {1}: {5})".format(
                self.first,
                self.second,
                self.earlier_view.id,
                self.later_view.id,
                sorted(map(str, self.only_first)),
                sorted(map(str, self.only_second)),
            )
        )


def _delivery_history(trace, newview_name, gprcv_name, initial_view):
    """Per process: list of (view, delivered set in that view)."""
    current = {}
    received = defaultdict(set)
    history = defaultdict(list)  # p -> [(view, frozenset of (m, sender))]
    for p in initial_view.set:
        current[p] = initial_view
    for action in trace:
        if action.name == newview_name:
            view, p = action.params
            if p in current:
                history[p].append(
                    (current[p], frozenset(received.pop(p, set())))
                )
            current[p] = view
        elif action.name == gprcv_name:
            m, sender, p = action.params
            received[p].add((m, sender))
    for p, view in current.items():
        history[p].append((view, frozenset(received.pop(p, set()))))
    return history


def isis_violations(trace, initial_view, prefix="dvs"):
    """All Isis-property violations in a DVS (or VS) trace.

    For every pair (p, q) and consecutive view transition ``v -> w`` taken
    by *both* (both members of both views, both moving directly from v to
    w), the sets of messages delivered in v must coincide; violations are
    returned (empty list = property held on this trace).
    """
    history = _delivery_history(
        trace, prefix + "_newview", prefix + "_gprcv", initial_view
    )
    # transitions[(v, w)] -> {p: delivered-in-v}
    transitions = defaultdict(dict)
    for p, entries in history.items():
        for (view, delivered), (next_view, _) in zip(entries, entries[1:]):
            if p in view.set and p in next_view.set:
                transitions[(view, next_view)][p] = delivered

    violations = []
    for (view, next_view), movers in transitions.items():
        pids = sorted(movers)
        for i, p in enumerate(pids):
            for q in pids[i + 1:]:
                if movers[p] != movers[q]:
                    violations.append(
                        IsisViolation(
                            earlier_view=view,
                            later_view=next_view,
                            first=p,
                            second=q,
                            only_first=frozenset(movers[p] - movers[q]),
                            only_second=frozenset(movers[q] - movers[p]),
                        )
                    )
    return violations


def find_isis_counterexample(max_seeds=30, steps=2500):
    """Search DVS-IMPL executions for an Isis-property violation.

    Returns ``(seed, violations, execution)`` for the first seed whose
    run violates the property, or ``None`` if none found in budget --
    the paper expects violations to exist (DVS is weaker than Isis).
    """
    from repro.checking.harness import build_closed_dvs_impl
    from repro.checking.drivers import random_view_pool
    from repro.core.views import make_view
    from repro.ioa.scheduler import run_random

    universe = ["p1", "p2", "p3", "p4"]
    v0 = make_view(0, universe[:3])
    for seed in range(max_seeds):
        pool = random_view_pool(universe, 4, seed=seed + 31, min_size=2)
        system, _ = build_closed_dvs_impl(
            v0, universe, view_pool=pool, budget=3
        )
        execution = run_random(
            system,
            steps,
            seed=seed,
            weights={"vs_createview": 0.08, "dvs_register": 2.0},
        )
        violations = isis_violations(execution.trace(), v0)
        if violations:
            return seed, violations, execution
    return None
