"""Deterministic replay of recorded live executions.

:func:`replay_trace` rebuilds the *unchanged* gcs layer tower (VS ->
DVS -> {TO, CB}) for every process in a
:class:`~repro.obs.record.ReplayTrace`
and feeds the recorded input events back in recorded order, with a
fresh :class:`~repro.faults.monitor.SafetyMonitor` armed on a fresh
:class:`~repro.gcs.recorder.ActionLog`.  Because the layers are
deterministic functions of their input sequence (no timers, clocks or
entropy -- the lint determinism rules guarantee it), two replays of the
same trace produce identical action logs, deliveries and digests: a
nondeterministic live run becomes a deterministic artifact the instant
it is recorded.

The tower's network stand-in is a sink: sends and broadcasts go
nowhere, because every frame the live run actually *delivered* is
already in the trace as a ``recv`` event.  Replay therefore checks the
safety of what happened, not of what might have happened -- exactly the
monitor's job.

:func:`shrink_replay` closes the loop with the generic ddmin shrinker
(:func:`repro.faults.shrink.shrink_plan` is structure-agnostic): a
violating live trace minimizes to a 1-minimal event sequence that still
trips the monitor, i.e. a minimal simulator-checked counterexample.
"""

import hashlib
from dataclasses import dataclass, field
from types import MappingProxyType

from repro.cb.messages import CbCast
from repro.dvs.ablation import NoMajorityDvsLayer
from repro.faults.harness import _canon
from repro.faults.monitor import SafetyMonitor
from repro.faults.shrink import shrink_plan
from repro.gcs.cb_layer import CbLayer, DvsFanout
from repro.gcs.dvs_layer import DvsLayer
from repro.gcs.recorder import ActionLog
from repro.gcs.to_layer import ToLayer
from repro.gcs.vs_stack import VsStackNode
from repro.obs.record import ReplayTrace, TraceError

#: Registry of replayable DVS layer factories.  A trace records which
#: one the live run used (``repro chaos --live --broken`` runs the
#: ablated layer on purpose); replay must rebuild the same tower or the
#: recorded inputs would drive a different algorithm.
DVS_FACTORIES = MappingProxyType({
    "normal": DvsLayer,
    "nomajority": NoMajorityDvsLayer,
})


def dvs_factory_name(factory):
    """The trace-header name for a DVS layer factory."""
    if factory is None:
        return "normal"
    for name, cls in DVS_FACTORIES.items():
        if factory is cls:
            return name
    raise ValueError(
        "dvs factory {0!r} is not replayable (register it in "
        "repro.checking.replay.DVS_FACTORIES)".format(factory)
    )


class _ReplayClock:
    """A settable clock: replay pins it to each event's recorded time,
    so monitor diagnostics and action timestamps match the live run."""

    def __init__(self):
        self.now = 0.0


class _SinkNet:
    """The Network slice a replayed tower sees: time flows, output sinks."""

    class _Handle:
        def cancel(self):
            pass

    def __init__(self, clock):
        self.queue = clock  # Node.now reads net.queue.now

    def send(self, src, dst, msg):
        pass

    def broadcast(self, src, dsts, msg):
        pass

    def set_timer(self, pid, delay, tag):
        return self._Handle()

    def cancel_timer(self, handle):
        handle.cancel()


class _ReplayTower:
    """One process's rebuilt VS->DVS->{TO,CB} towers."""

    def __init__(self, pid, initial_view, member, dvs_cls, recorder, net):
        self.stack = VsStackNode(
            pid, initial_view=initial_view, recorder=recorder,
            member=member,
        )
        self.stack.net = net
        self.dvs = dvs_cls(
            self.stack, initial_view, recorder=recorder, member=member
        )
        self.fanout = DvsFanout(self.dvs)
        self.to = ToLayer(
            self.fanout.port(), initial_view, recorder=recorder,
            member=member,
        )
        self.cb = CbLayer(
            self.fanout.port(claims=CbCast), initial_view,
            recorder=recorder, member=member,
        )
        self.stack.on_start()


@dataclass
class ReplayResult:
    """Outcome of one deterministic replay."""

    trace: ReplayTrace
    violations: list = field(default_factory=list)
    deliveries: dict = field(default_factory=dict)
    digest: str = ""
    errors: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def ok(self):
        return not self.violations


def replay_trace(trace, fail_fast=False):
    """Feed a recorded trace through fresh towers under a fresh monitor.

    Mirrors the live dispatch discipline: layer exceptions are recorded
    per event (``errors``), never propagated, so one bad event cannot
    mask later ones; events for processes with no (live) tower -- e.g.
    after the shrinker removed their ``start`` -- are skipped, which
    keeps every ddmin candidate a valid input.
    """
    if trace.dvs not in DVS_FACTORIES:
        raise TraceError(
            "trace needs unknown dvs factory {0!r}".format(trace.dvs)
        )
    dvs_cls = DVS_FACTORIES[trace.dvs]
    clock = _ReplayClock()
    net = _SinkNet(clock)
    log = ActionLog(clock=lambda: clock.now)
    monitor = SafetyMonitor(
        trace.initial_view, fail_fast=fail_fast
    ).attach(log)
    towers = {}
    errors = []
    dispatched = skipped = 0
    for index, event in enumerate(trace.events):
        clock.now = event.t
        pid, kind, data = event.pid, event.kind, event.data
        if kind == "start":
            if pid in towers:
                # A re-start of a live pid is an amnesiac rejoin: the
                # monitor forgets the old incarnation first, as the
                # live cluster's restart() does.
                monitor.restart_process(pid)
            member = data[0] if data else None
            towers[pid] = _ReplayTower(
                pid, trace.initial_view, member, dvs_cls, log, net
            )
            dispatched += 1
            continue
        if kind == "nemesis":
            continue
        tower = towers.get(pid)
        if tower is None:
            skipped += 1
            continue
        if kind == "stop":
            towers.pop(pid, None)
            dispatched += 1
            continue
        try:
            if kind == "recv":
                tower.stack.on_message(data[0], data[1])
            elif kind == "conn":
                tower.stack.on_connectivity(frozenset(data[0]))
            elif kind == "timer":
                tower.stack.on_timer(data[0])
            elif kind == "bcast":
                tower.to.bcast(data[0])
            elif kind == "cbcast":
                tower.cb.cbcast(data[0])
            dispatched += 1
        except Exception as exc:
            errors.append((index, pid, kind, exc))
    deliveries = {}
    for action in log.actions:
        if action.name == "brcv":
            payload, origin, pid = action.params
            deliveries.setdefault(pid, []).append((payload, origin))
    digest = hashlib.sha256()
    for time, action in log.timed_actions():
        digest.update(_canon((time, action.name, action.params)).encode())
    stats = dict(monitor.stats())
    stats.update({
        "events": len(trace.events),
        "dispatched": dispatched,
        "skipped": skipped,
        "actions": len(log.actions),
        "layer_errors": len(errors),
    })
    return ReplayResult(
        trace=trace,
        violations=list(monitor.violations),
        deliveries=deliveries,
        digest=digest.hexdigest(),
        errors=errors,
        stats=stats,
    )


def check_replay_determinism(trace):
    """Replay twice; return the (identical) results or raise.

    This is the acceptance gate for the recording cut: if anything
    nondeterministic leaked into the layers, the two digests diverge.
    """
    first = replay_trace(trace)
    second = replay_trace(trace)
    if first.digest != second.digest:
        raise AssertionError(
            "replay is nondeterministic: digests {0} != {1}".format(
                first.digest, second.digest
            )
        )
    if first.deliveries != second.deliveries:
        raise AssertionError("replay is nondeterministic: deliveries differ")
    return first, second


def shrink_replay(trace, max_probes=300, prop=None):
    """ddmin a violating trace to a 1-minimal event sequence.

    ``prop`` (optional) pins the violated property name, so shrinking
    cannot wander onto a *different* violation and minimize that one
    instead.  Returns ``(minimal_trace, probes, final_result)``.
    """

    def fails(candidate):
        result = replay_trace(candidate)
        if prop is None:
            return bool(result.violations)
        return any(v.prop == prop for v in result.violations)

    minimal, probes = shrink_plan(trace, fails, max_probes=max_probes)
    return minimal, probes, replay_trace(minimal)
