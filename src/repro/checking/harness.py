"""Closed-system builders: service + algorithm + clients + adversary.

Each builder returns a closed :class:`~repro.ioa.composition.Composition`
(every action locally controlled by some component) ready for
:func:`repro.ioa.scheduler.run_random` or the bounded explorer, plus the
sorted process list.
"""

from repro.cb.dvs_to_cb import DvsToCb
from repro.cb.impl import app_component_name as cb_app_component_name
from repro.checking.drivers import (
    CbClientDriver,
    DvsClientDriver,
    ToClientDriver,
    VsClientDriver,
)
from repro.dvs.impl import VS_EXTERNAL_ACTIONS, process_component_name
from repro.dvs.spec import DVSSpec
from repro.dvs.vs_to_dvs import VsToDvs
from repro.ioa.composition import Composition
from repro.to.dvs_to_to import DvsToTo
from repro.to.impl import DVS_EXTERNAL_ACTIONS, app_component_name
from repro.vs.spec import VSSpec


def default_weights():
    """Scheduler weights that keep random runs lively.

    View management events are rare relative to data traffic in real
    systems; these weights bias the random scheduler the same way, so that
    views have time to be attempted, registered and used before the
    adversary proposes the next one.
    """
    return {
        "vs_createview": 0.25,
        "vs_newview": 1.0,
        "dvs_createview": 0.25,
        "dvs_newview": 2.0,
        "dvs_register": 2.0,
        "dvs_garbage_collect": 1.5,
        "bcast": 1.0,
    }


def build_closed_vs_spec(initial_view, universe, view_pool=(), budget=3):
    """VS spec + one VS client per process."""
    universe = sorted(set(universe) | set(initial_view.set))
    vs = VSSpec(initial_view, universe=universe, view_pool=view_pool)
    clients = [VsClientDriver(p, budget=budget) for p in universe]
    system = Composition([vs] + clients, name="closed_vs")
    return system, universe


def build_closed_dvs_spec(
    initial_view, universe, view_pool=(), budget=3, eager_register=False
):
    """DVS spec + one DVS client per process."""
    universe = sorted(set(universe) | set(initial_view.set))
    dvs = DVSSpec(initial_view, universe=universe, view_pool=view_pool)
    clients = [
        DvsClientDriver(p, budget=budget, eager_register=eager_register)
        for p in universe
    ]
    system = Composition([dvs] + clients, name="closed_dvs")
    return system, universe


def build_closed_dvs_impl(
    initial_view,
    universe,
    view_pool=(),
    budget=3,
    eager_register=False,
    filter_factory=VsToDvs,
):
    """DVS-IMPL (VS + filters) + DVS clients, VS actions hidden.

    ``filter_factory`` lets the ablation experiments substitute broken
    variants of ``VS-TO-DVS_p``.
    """
    universe = sorted(set(universe) | set(initial_view.set))
    vs = VSSpec(initial_view, universe=universe, view_pool=view_pool)
    filters = [
        filter_factory(p, initial_view, name=process_component_name(p))
        for p in universe
    ]
    clients = [
        DvsClientDriver(p, budget=budget, eager_register=eager_register)
        for p in universe
    ]
    system = Composition(
        [vs] + filters + clients,
        hidden=VS_EXTERNAL_ACTIONS,
        name="closed_dvs_impl",
    )
    return system, universe


def build_closed_to_impl(initial_view, universe, view_pool=(), budget=2):
    """TO-IMPL (DVS spec + applications) + TO clients, DVS actions hidden."""
    universe = sorted(set(universe) | set(initial_view.set))
    dvs = DVSSpec(initial_view, universe=universe, view_pool=view_pool)
    apps = [
        DvsToTo(p, initial_view, name=app_component_name(p))
        for p in universe
    ]
    clients = [ToClientDriver(p, budget=budget) for p in universe]
    system = Composition(
        [dvs] + apps + clients,
        hidden=DVS_EXTERNAL_ACTIONS,
        name="closed_to_impl",
    )
    return system, universe


def build_closed_cb_impl(initial_view, universe, view_pool=(), budget=2):
    """CB-IMPL (DVS spec + applications) + CB clients, DVS actions hidden."""
    universe = sorted(set(universe) | set(initial_view.set))
    dvs = DVSSpec(initial_view, universe=universe, view_pool=view_pool)
    apps = [
        DvsToCb(p, initial_view, name=cb_app_component_name(p))
        for p in universe
    ]
    clients = [CbClientDriver(p, budget=budget) for p in universe]
    system = Composition(
        [dvs] + apps + clients,
        hidden=DVS_EXTERNAL_ACTIONS,
        name="closed_cb_impl",
    )
    return system, universe


def build_closed_sx_dvs_impl(initial_view, universe, view_pool=(), budget=3):
    """The SX-DVS implementation (VS + SX filters) + SX clients."""
    from repro.checking.drivers import SxClientDriver
    from repro.dvs.state_exchange import VsToSxDvs

    universe = sorted(set(universe) | set(initial_view.set))
    vs = VSSpec(initial_view, universe=universe, view_pool=view_pool)
    filters = [
        VsToSxDvs(p, initial_view, name=process_component_name(p))
        for p in universe
    ]
    clients = [SxClientDriver(p, budget=budget) for p in universe]
    system = Composition(
        [vs] + filters + clients,
        hidden=VS_EXTERNAL_ACTIONS,
        name="closed_sx_dvs_impl",
    )
    return system, universe


SX_EXTERNAL_ACTIONS = frozenset(
    {"dvs_gpsnd", "dvs_gprcv", "dvs_safe", "dvs_newview",
     "sx_sendstate", "sx_statedelivery", "sx_statesafe"}
)


def build_closed_sx_to_impl(initial_view, universe, view_pool=(), budget=2):
    """The simplified TO application over the SX-DVS *specification*."""
    from repro.dvs.state_exchange import SXDVSSpec
    from repro.to.sx_total_order import SxTotalOrder

    universe = sorted(set(universe) | set(initial_view.set))
    sxdvs = SXDVSSpec(initial_view, universe=universe, view_pool=view_pool)
    apps = [
        SxTotalOrder(p, initial_view, name="sx_to:{0}".format(p))
        for p in universe
    ]
    clients = [ToClientDriver(p, budget=budget) for p in universe]
    system = Composition(
        [sxdvs] + apps + clients,
        hidden=SX_EXTERNAL_ACTIONS,
        name="closed_sx_to_impl",
    )
    return system, universe


def build_closed_full_stack(initial_view, universe, view_pool=(), budget=2):
    """The whole tower: TO clients over DVS-TO-TO over VS-TO-DVS over VS."""
    universe = sorted(set(universe) | set(initial_view.set))
    vs = VSSpec(initial_view, universe=universe, view_pool=view_pool)
    filters = [
        VsToDvs(p, initial_view, name=process_component_name(p))
        for p in universe
    ]
    apps = [
        DvsToTo(p, initial_view, name=app_component_name(p))
        for p in universe
    ]
    clients = [ToClientDriver(p, budget=budget) for p in universe]
    system = Composition(
        [vs] + filters + apps + clients,
        hidden=VS_EXTERNAL_ACTIONS | DVS_EXTERNAL_ACTIONS,
        name="closed_full_stack",
    )
    return system, universe
