"""One live process of the stack: the VS→DVS→{TO,CB} towers on real
sockets.

:class:`RuntimeNode` hosts the *unchanged* layer stack of
:mod:`repro.gcs` -- the same :class:`~repro.gcs.vs_stack.VsStackNode`,
:class:`~repro.gcs.dvs_layer.DvsLayer`,
:class:`~repro.gcs.to_layer.ToLayer` and
:class:`~repro.gcs.cb_layer.CbLayer` objects the simulator drives, with
both ordering towers sharing the DVS layer through a
:class:`~repro.gcs.cb_layer.DvsFanout` -- behind a duck-typed stand-in
for :class:`repro.net.simulator.Network`:

- ``send``/``broadcast`` go through per-peer reconnecting TCP links
  (:class:`~repro.runtime.transport.PeerLink`);
- ``set_timer``/``cancel_timer`` map onto ``loop.call_later``;
- ``now`` reads a monotonic clock started at node boot;
- ``on_connectivity`` is fed by the heartbeat estimator
  (:class:`~repro.runtime.heartbeat.ConnectivityEstimator`) instead of
  the simulator's oracle.

Nothing above the transport knows it left the simulator.
"""

import asyncio
from collections import deque

from repro.cb.messages import CbCast
from repro.gcs.cb_layer import CbLayer, DvsFanout
from repro.gcs.dvs_layer import DvsLayer
from repro.gcs.to_layer import ToLayer
from repro.gcs.vs_stack import VsStackNode
from repro.runtime.codec import (
    CodecError,
    Heartbeat,
    Hello,
    encode_frame,
    validate_message,
)
from repro.runtime.heartbeat import ConnectivityEstimator
from repro.runtime.transport import Listener, PeerLink, QUEUE_LIMIT

#: Cap on the per-node layer-error buffer.  Errors are diagnostics:
#: keeping the newest ``ERROR_LIMIT`` preserves what tests and
#: operators look at while bounding what a hostile peer can grow.
ERROR_LIMIT = 256


class MonotonicClock:
    """Seconds since construction, read from the loop's monotonic clock
    (the same clock ``call_later`` uses, so timers and ``now`` agree)."""

    def __init__(self, loop):
        self._loop = loop
        self._t0 = loop.time()

    @property
    def now(self):
        return self._loop.time() - self._t0


class _RuntimeNet:
    """The slice of the simulator ``Network`` interface a hosted
    :class:`~repro.net.simulator.Node` actually calls."""

    def __init__(self, node):
        self._node = node

    @property
    def queue(self):
        # ``Node.now`` reads ``net.queue.now``; the clock fills that shape.
        return self._node.clock

    def send(self, src, dst, msg):
        self._node._transport_send(dst, msg)

    def broadcast(self, src, dsts, msg):
        self._node._transport_broadcast(dsts, msg)

    def set_timer(self, pid, delay, tag):
        return self._node._set_timer(delay, tag)

    def cancel_timer(self, handle):
        handle.cancel()


class RuntimeNode:
    """One process of the live deployment.

    ``book`` maps process ids to ``(host, port)`` pairs and is read
    *live*: the owner may mutate it (e.g. when a peer restarts on a new
    port) and links pick the change up on their next connect attempt.
    This node's own entry is written into the book when its listener
    binds (``port=0`` requests an OS-assigned port).

    ``member=False`` builds the whole tower in the fresh-joiner
    configuration (see the gcs layers): the amnesiac-restart path.
    """

    def __init__(self, pid, book, initial_view, recorder=None,
                 listener=None, cb_listener=None, member=None,
                 host="127.0.0.1", port=0,
                 hb_interval=0.05, hb_timeout=None, queue_limit=QUEUE_LIMIT,
                 obs=None, faultnet=None, wiretap=None, dvs_factory=None):
        self.pid = pid
        self.book = book
        self.initial_view = initial_view
        self.log = recorder
        #: Shared cluster-wide fault interposer (``repro.runtime.faultnet``)
        #: consulted on every frame sent and received; ``None`` = no faults.
        self._faultnet = faultnet
        #: Shared trace recorder capturing this node's stack inputs.
        self._wiretap = wiretap
        self._member = member
        self._obs = obs
        self._ins = None
        if obs is not None:
            metrics = obs.metrics
            base = "runtime.{0}.".format(pid)
            # Get-or-create: a restarted incarnation keeps accumulating
            # into the same per-pid series.
            self._ins = {
                "frames_out": metrics.counter(base + "transport.frames_out"),
                "bytes_out": metrics.counter(base + "transport.bytes_out"),
                "frames_in": metrics.counter(base + "transport.frames_in"),
                "bytes_in": metrics.counter(base + "transport.bytes_in"),
                "drops": metrics.counter(base + "transport.drops"),
                "queue_drops": metrics.counter(
                    base + "transport.queue_drops"
                ),
                "connects": metrics.counter(base + "transport.reconnects"),
                "queue_depth": metrics.gauge(base + "transport.queue_depth"),
                "flaps": metrics.counter(base + "connectivity.flaps"),
            }
        self._host = host
        self._port = port
        self._hb_interval = hb_interval
        self._hb_timeout = hb_timeout
        self._queue_limit = queue_limit
        self.clock = None
        self.stack = VsStackNode(
            pid, initial_view=initial_view, recorder=recorder,
            member=member,
        )
        self.stack.net = _RuntimeNet(self)
        dvs_cls = DvsLayer if dvs_factory is None else dvs_factory
        self.dvs = dvs_cls(
            self.stack, initial_view, recorder=recorder, member=member
        )
        self.fanout = DvsFanout(self.dvs)
        self.to = ToLayer(
            self.fanout.port(), initial_view, listener=listener,
            recorder=recorder, member=member,
        )
        self.cb = CbLayer(
            self.fanout.port(claims=CbCast), initial_view,
            listener=cb_listener, recorder=recorder, member=member,
        )
        #: Exceptions raised by the hosted layers while handling events;
        #: they are recorded (not propagated) so one bad frame cannot
        #: take the transport down, and tests assert the buffer is
        #: empty.  Bounded: every received frame can append here, so an
        #: unbounded list would let a hostile peer grow it forever
        #: (DVS021); the cap keeps the newest errors.
        self.errors = deque(maxlen=ERROR_LIMIT)
        self.dropped_unroutable = 0
        #: Frames dropped by :meth:`_validate_inbound`: unknown sender
        #: or a payload that fails the wire-schema check.
        self.dropped_invalid = 0
        self._links = {}
        self._listener = None
        self._estimator = None
        self._timers = set()
        self._loop = None
        self._started = False
        self._stopped = False

    # -- Lifecycle ---------------------------------------------------------

    async def start(self, clock=None):
        """Bind the listener, publish the address, start links and
        heartbeats.  Must run on the event loop that will own the node."""
        loop = asyncio.get_running_loop()
        self._loop = loop
        self.clock = clock if clock is not None else MonotonicClock(loop)
        self._listener = Listener(
            self._on_frame, host=self._host, port=self._port,
            on_error=self.errors.append,
            on_bytes=self._count_bytes_in if self._ins else None,
        )
        await self._listener.start()
        self.book[self.pid] = (self._host, self._listener.port)
        for peer in sorted(self.book):
            if peer != self.pid:
                self._ensure_link(peer)
        self._estimator = ConnectivityEstimator(
            self.pid,
            peers=self._peer_ids,
            clock=self.clock,
            send_heartbeats=self._send_heartbeats,
            notify=self._on_component,
            interval=self._hb_interval,
            timeout=self._hb_timeout,
            on_error=self.errors.append,
        )
        self._estimator.start()
        self._started = True
        self._tap("start", self._member)
        self.stack.on_start()
        return self

    async def stop(self):
        """Tear everything down; hosted layer state is left readable."""
        if not self._stopped and self._started:
            self._tap("stop")
        self._stopped = True
        if self._estimator is not None:
            await self._estimator.stop()
        for timer in list(self._timers):
            timer.cancel()
        self._timers.clear()
        for link in self._links.values():
            await link.close()
        if self._listener is not None:
            await self._listener.close()

    @property
    def port(self):
        return self._listener.port if self._listener is not None else None

    def _peer_ids(self):
        return [p for p in sorted(self.book) if p != self.pid]

    def _ensure_link(self, peer):
        if peer not in self._links:
            self._links[peer] = PeerLink(
                self.pid, peer,
                resolve=lambda p=peer: self.book[p],
                queue_limit=self._queue_limit,
                on_connect=self._count_connect if self._ins else None,
                on_drop=self._count_drop if self._ins else None,
                on_queue_drop=(
                    self._count_queue_drop if self._ins else None
                ),
                on_error=self.errors.append,
            ).start()
        return self._links[peer]

    # -- Metric callbacks (no-ops unless ``obs`` was supplied) -------------

    def _count_bytes_in(self, nbytes):
        self._ins["bytes_in"].inc(nbytes)

    def _count_connect(self, peer):
        self._ins["connects"].inc()

    def _count_drop(self, peer):
        self._ins["drops"].inc()

    def _count_queue_drop(self, peer):
        self._ins["queue_drops"].inc()

    # -- Trace capture (no-op unless ``wiretap`` was supplied) -------------

    def _tap(self, kind, *data):
        if self._wiretap is not None and self.clock is not None:
            self._wiretap.record(self.clock.now, self.pid, kind, *data)

    # -- Downcalls from the hosted stack -----------------------------------

    def _transport_send(self, dst, msg):
        if self._stopped:
            return
        if dst == self.pid:
            # Local loopback: dispatch asynchronously so a self-send
            # behaves like any other message (never reentrant).
            self._loop.call_soon(self._local_deliver, msg)
            return
        if dst not in self.book:
            self.dropped_unroutable += 1
            return
        try:
            frame = encode_frame((self.pid, msg))
        except CodecError as exc:
            self.errors.append(exc)
            return
        self._send_encoded(dst, msg, frame)

    def _transport_broadcast(self, dsts, msg):
        """Fan ``msg`` out, encoding the frame *once* for all peers.

        The per-destination ``send`` path used to re-encode the
        identical ``(pid, msg)`` envelope for every link -- pure waste
        on the hottest path (every Ordered/SafeNote broadcast and every
        heartbeat round).  The self-send still short-circuits through
        the local queue without touching the codec.
        """
        if self._stopped:
            return
        frame = None
        for dst in dsts:
            if dst == self.pid:
                self._loop.call_soon(self._local_deliver, msg)
                continue
            if dst not in self.book:
                self.dropped_unroutable += 1
                continue
            if frame is None:
                try:
                    frame = encode_frame((self.pid, msg))
                except CodecError as exc:
                    self.errors.append(exc)
                    return
            self._send_encoded(dst, msg, frame)

    def _send_encoded(self, dst, msg, frame):
        if self._faultnet is not None:
            delays = self._faultnet.outbound(self.pid, dst, self.clock.now)
            if delays is not None:
                # A matching fault decided this frame's fate: [] drops
                # it, otherwise each entry queues one copy after its
                # delay (0.0 = now).  Delayed copies re-check nothing
                # at fire time except node shutdown -- blocking is the
                # receiver's job, as in the simulator.
                for delay in delays:
                    if delay > 0.0:
                        self._loop.call_later(
                            delay, self._flush_frame, dst, msg, frame
                        )
                    else:
                        self._flush_frame(dst, msg, frame)
                return
        self._flush_frame(dst, msg, frame)

    def _flush_frame(self, dst, msg, frame):
        if self._stopped:
            return
        link = self._ensure_link(dst)
        link.send_frame(frame)
        if self._ins is not None:
            self._ins["frames_out"].inc()
            self._ins["bytes_out"].inc(len(frame))
            self._ins["queue_depth"].set(link.queue_depth())
        if self._obs is not None:
            self._obs.wire_event(
                "wire_send", self.pid, dst, msg, self.clock.now
            )

    def _local_deliver(self, msg):
        if not self._stopped:
            self._dispatch(self.pid, msg)

    def _set_timer(self, delay, tag):
        handle = self._loop.call_later(
            delay, lambda: self._fire_timer(handle, tag)
        )
        self._timers.add(handle)
        return handle

    def _fire_timer(self, handle, tag):
        self._timers.discard(handle)
        if not self._stopped:
            self._tap("timer", tag)
            try:
                self.stack.on_timer(tag)
            except Exception as exc:
                self.errors.append(exc)

    def _send_heartbeats(self):
        peers = self._peer_ids()
        if not peers:
            return
        # One beacon encode per round, not per peer (the same
        # encode-once discipline as _transport_broadcast).
        beacon = Heartbeat()
        frame = encode_frame((self.pid, beacon))
        for peer in peers:
            self._send_encoded(peer, beacon, frame)

    # -- Upcalls from transport and estimator ------------------------------

    def _validate_inbound(self, src, msg):
        """Gate for every frame that reaches this node.

        The transport handshake only proves the peer *claimed* ``src``;
        the bytes behind it are attacker-controlled.  Frames from
        senders outside the address book, or whose payload fails the
        shallow wire-schema check, are counted and dropped before they
        touch the estimator or the hosted automaton stack.
        """
        if src not in self.book:
            self.dropped_invalid += 1
            return False
        if not validate_message(msg):
            self.dropped_invalid += 1
            return False
        return True

    def _on_frame(self, src, msg):
        if self._stopped:
            return
        if not self._validate_inbound(src, msg):
            return
        if self._faultnet is not None and self._faultnet.blocked(
            src, self.pid
        ):
            # Delivery-time veto (partitions, one-way blocks): the frame
            # is dropped *before* the estimator hears it, so a blocked
            # peer's heartbeats go dark and suspicion follows, exactly
            # as under the simulator's connectivity oracle.
            self._faultnet.note_blocked_recv()
            return
        self._estimator.heard(src)
        if self._ins is not None:
            self._ins["frames_in"].inc()
        if isinstance(msg, (Hello, Heartbeat)):
            return
        if self._obs is not None:
            self._obs.wire_event(
                "wire_recv", self.pid, src, msg, self.clock.now
            )
        self._dispatch(src, msg)

    def _dispatch(self, src, msg):
        self._tap("recv", src, msg)
        try:
            self.stack.on_message(src, msg)
        except Exception as exc:
            self.errors.append(exc)

    def _on_component(self, component):
        if self._stopped:
            return
        if self._ins is not None:
            self._ins["flaps"].inc()
        self._tap("conn", tuple(sorted(component)))
        try:
            self.stack.on_connectivity(component)
        except Exception as exc:
            self.errors.append(exc)

    # -- Observation -------------------------------------------------------

    def stats(self):
        links = {
            peer: {
                "connects": link.connects,
                "sent": link.sent,
                "dropped": link.dropped,
            }
            for peer, link in sorted(self._links.items())
        }
        return {
            "pid": self.pid,
            "port": self.port,
            "errors": len(self.errors),
            "dropped_unroutable": self.dropped_unroutable,
            "dropped_invalid": self.dropped_invalid,
            "links": links,
        }
