"""Versioned wire codec with length-prefixed framing.

A frame on the wire is ``<length:4 bytes big-endian> <version:1 byte>
<body>`` where the body is a canonical JSON document describing one
Python value.  The encoding is a closed, type-tagged scheme -- *not*
pickle -- so a malformed or hostile peer can never make the reader
execute anything; the worst a bad frame can do is raise
:class:`CodecError`, which the transport answers by dropping the
connection (the fair-lossy behaviour the layers above already tolerate).

Every value is encoded as a JSON array ``[tag, ...]``:

========  =====================================================
``"z"``   ``None``
``"b"``   bool          ``["b", true]``
``"i"``   int           ``["i", 42]``
``"f"``   finite float  ``["f", 2.5]`` (NaN/inf are unencodable)
``"s"``   str           ``["s", "..."]``
``"y"``   bytes         ``["y", "<base64>"]``
``"t"``   tuple         ``["t", [...]]``
``"l"``   list          ``["l", [...]]``
``"fz"``  frozenset     ``["fz", [...]]`` (canonically sorted)
``"st"``  set           ``["st", [...]]`` (canonically sorted)
``"d"``   dict          ``["d", [[k, v], ...]]`` (sorted by key)
``"@"``   dataclass     ``["@", "ClassName", [field values]]``
========  =====================================================

The ``"@"`` tag covers exactly the message dataclasses of the stack
(:data:`WIRE_TYPES`): the VS wire messages, the DVS protocol messages,
the TO labels/summaries, the CB casts, views and view identifiers, and
the runtime's own control messages.  Sets and dictionaries are serialized in a
canonical order so that encoding is deterministic: the same value always
produces the same bytes, which keeps wire logs diffable across runs.
"""

import base64
import json
import re
import struct
from dataclasses import dataclass, fields
from types import MappingProxyType

from repro.cb.messages import CbCast
from repro.core.messages import InfoMsg, RegisteredMsg
from repro.core.viewids import ViewId
from repro.core.views import View
from repro.dvs.vs_to_dvs import AckMsg
from repro.gcs.messages import (
    Ack,
    Collect,
    Data,
    Install,
    Ordered,
    SafeNote,
    StateReply,
)
from repro.to.summaries import Label, Summary

#: Bumped on any incompatible change to the frame or body layout, and
#: on any extension of the type registry (a peer speaking an older
#: version would reject the new ``"@"`` references as unknown types, so
#: additions are versioned too).  Version history:
#:
#: - ``1`` -- the original registry (VS/DVS/TO messages plus runtime
#:   control frames);
#: - ``2`` -- adds :class:`~repro.cb.messages.CbCast` for the causal
#:   broadcast tier.  Bodies are otherwise identical, so version-1
#:   frames decode unchanged (see :data:`SUPPORTED_WIRE_VERSIONS`).
WIRE_VERSION = 2

#: Body versions this decoder accepts.  Encoding always stamps
#: :data:`WIRE_VERSION`; decoding tolerates the older layouts that are
#: strict subsets of the current one, so mixed-version clusters keep
#: talking during a rolling upgrade.
SUPPORTED_WIRE_VERSIONS = (1, 2)

#: Frames longer than this are rejected before buffering (a garbage
#: length prefix must not make the reader allocate gigabytes).
MAX_FRAME = 1 << 24

_HEADER = struct.Struct(">I")


class CodecError(ValueError):
    """A value could not be encoded, or a frame could not be decoded."""


@dataclass(frozen=True)
class Hello:
    """Handshake: the first frame on every connection names the dialer."""

    pid: str


@dataclass(frozen=True)
class Heartbeat:
    """Periodic liveness beacon feeding the connectivity estimator."""


#: Every dataclass the codec can carry, by construction order of fields.
WIRE_TYPES = (
    ViewId, View,
    InfoMsg, RegisteredMsg, AckMsg,
    Collect, StateReply, Install, Data, Ordered, Ack, SafeNote,
    Label, Summary,
    CbCast,
    Hello, Heartbeat,
)

_BY_NAME = MappingProxyType({cls.__name__: cls for cls in WIRE_TYPES})
_REGISTERED = frozenset(WIRE_TYPES)

#: The pinned wire schema: class name -> ordered ``(field, annotation)``
#: pairs exactly as declared on the dataclass.  Field order is the
#: encoded order (the ``"@"`` tag carries positional values), so this
#: literal is a contract: renaming, retyping or reordering a field of
#: any registered dataclass without updating it here (and bumping
#: :data:`WIRE_VERSION` when the layout changes) is wire drift.  Both
#: :func:`schema_drift` and the static DVS015 rule check it.
WIRE_SCHEMA = MappingProxyType({
    "ViewId": (
        ("epoch", "int"),
        ("origin", "str"),
    ),
    "View": (
        ("id", "ViewId"),
        ("members", "FrozenSet[str]"),
    ),
    "InfoMsg": (
        ("act", "View"),
        ("amb", "FrozenSet[View]"),
    ),
    "RegisteredMsg": (),
    "AckMsg": (
        ("count", "int"),
    ),
    "Collect": (
        ("round_id", "Tuple[str, int]"),
        ("members", "frozenset"),
    ),
    "StateReply": (
        ("round_id", "Tuple[str, int]"),
        ("max_epoch", "int"),
    ),
    "Install": (
        ("round_id", "Tuple[str, int]"),
        ("view", "View"),
    ),
    "Data": (
        ("vid", "ViewId"),
        ("payload", "object"),
        ("sender", "str"),
    ),
    "Ordered": (
        ("vid", "ViewId"),
        ("seq", "int"),
        ("payload", "object"),
        ("sender", "str"),
    ),
    "Ack": (
        ("vid", "ViewId"),
        ("seq", "int"),
    ),
    "SafeNote": (
        ("vid", "ViewId"),
        ("seq", "int"),
    ),
    "Label": (
        ("id", "ViewId"),
        ("seqno", "int"),
        ("origin", "str"),
    ),
    "Summary": (
        ("con", "FrozenSet[Tuple[Label, object]]"),
        ("ord", "Tuple[Label, ...]"),
        ("next", "int"),
        ("high", "ViewId"),
    ),
    "CbCast": (
        ("vid", "ViewId"),
        ("clock", "Tuple[Tuple[str, int], ...]"),
        ("payload", "object"),
        ("origin", "str"),
    ),
    "Hello": (
        ("pid", "str"),
    ),
    "Heartbeat": (),
})


_DOTTED_NAME = re.compile(r"\b(?:\w+\.)+(\w+)")


def _annotation_name(annotation):
    """Render a live annotation the way the source declares it: bare
    class names, no ``typing.`` or module qualification."""
    if isinstance(annotation, type):
        text = annotation.__name__
    elif isinstance(annotation, str):
        text = annotation
    else:
        text = str(annotation)
    return _DOTTED_NAME.sub(r"\1", text)


def schema_drift():
    """Differences between :data:`WIRE_SCHEMA` and the live dataclasses.

    Returns a sorted list of human-readable drift descriptions (empty
    when the pin is faithful).  The runtime counterpart of the static
    DVS015 rule: ``tests/runtime/test_codec.py`` asserts it is empty,
    so a field rename/retype fails fast even without running the
    linter.
    """
    problems = []
    for cls in WIRE_TYPES:
        name = cls.__name__
        pinned = WIRE_SCHEMA.get(name)
        if pinned is None:
            problems.append("{0}: not pinned in WIRE_SCHEMA".format(name))
            continue
        live = tuple(
            (f.name, _annotation_name(f.type)) for f in fields(cls)
        )
        if live != tuple(pinned):
            problems.append(
                "{0}: declared fields {1!r} != pinned {2!r}".format(
                    name, live, tuple(pinned)
                )
            )
    for name in WIRE_SCHEMA:
        if name not in _BY_NAME:
            problems.append(
                "{0}: pinned in WIRE_SCHEMA but not in WIRE_TYPES".format(
                    name
                )
            )
    return sorted(problems)


def _annotation_ok(value, annotation):
    """Shallow check of ``value`` against a pinned annotation string.

    Containers are checked by outer type only (``FrozenSet[str]`` ->
    frozenset); ``object`` accepts anything.  Deep element validation
    is the decoder's job -- this guards the *reconstructed* message
    against forged field types the positional ``"@"`` decoding cannot
    rule out (a string where a sequence number belongs decodes fine).
    """
    base = annotation.split("[", 1)[0].strip()
    if base == "object":
        return True
    if base == "bool":
        return isinstance(value, bool)
    if base == "int":
        return isinstance(value, int) and not isinstance(value, bool)
    if base == "float":
        return isinstance(value, (int, float)) and not isinstance(
            value, bool
        )
    if base == "str":
        return isinstance(value, str)
    if base == "bytes":
        return isinstance(value, bytes)
    if base in ("FrozenSet", "frozenset"):
        return isinstance(value, frozenset)
    if base in ("Tuple", "tuple"):
        return isinstance(value, tuple)
    if base in ("Optional",):
        return True
    registered = _BY_NAME.get(base)
    if registered is not None:
        return isinstance(value, registered)
    return True


def validate_message(msg):
    """Whether a decoded wire message is schema-faithful.

    ``True`` iff ``msg`` is an instance of a registered wire type and
    every field shallow-matches its pinned :data:`WIRE_SCHEMA`
    annotation.  The receive path gates on this before a frame touches
    the hosted automaton stack: decoding guarantees well-formed
    *encoding*, not well-typed *content*, and any TCP client controls
    the content.
    """
    cls = type(msg)
    if cls not in _REGISTERED:
        return False
    pinned = WIRE_SCHEMA.get(cls.__name__)
    if pinned is None:
        return False
    declared = fields(cls)
    if len(declared) != len(pinned):
        return False
    for f, (name, annotation) in zip(declared, pinned):
        if f.name != name:
            return False
        if not _annotation_ok(getattr(msg, f.name), annotation):
            return False
    return True


def _canonical(packed):
    """A sort key making set/dict encodings deterministic."""
    return json.dumps(packed, separators=(",", ":"), sort_keys=True)


def _pack(value):
    """Recursively translate ``value`` into the tagged JSON scheme."""
    if value is None:
        return ["z"]
    if isinstance(value, bool):
        return ["b", value]
    if isinstance(value, int):
        return ["i", value]
    if isinstance(value, float):
        return ["f", value]
    if isinstance(value, str):
        return ["s", value]
    if isinstance(value, (bytes, bytearray)):
        return ["y", base64.b64encode(bytes(value)).decode("ascii")]
    if isinstance(value, tuple):
        return ["t", [_pack(item) for item in value]]
    if isinstance(value, list):
        return ["l", [_pack(item) for item in value]]
    if isinstance(value, frozenset):
        return ["fz", sorted((_pack(i) for i in value), key=_canonical)]
    if isinstance(value, set):
        return ["st", sorted((_pack(i) for i in value), key=_canonical)]
    if isinstance(value, dict):
        pairs = [[_pack(k), _pack(v)] for k, v in value.items()]
        pairs.sort(key=lambda pair: _canonical(pair[0]))
        return ["d", pairs]
    if type(value) in _REGISTERED:
        packed = [_pack(getattr(value, f.name)) for f in fields(value)]
        return ["@", type(value).__name__, packed]
    raise CodecError(
        "unencodable value of type {0}".format(type(value).__name__)
    )


def _need(condition, detail):
    if not condition:
        raise CodecError("malformed body: {0}".format(detail))


def _unpack(node):
    """Inverse of :func:`_pack`; strict, raising :class:`CodecError`."""
    _need(isinstance(node, list) and node, "expected a tagged array")
    tag = node[0]
    _need(isinstance(tag, str), "tag must be a string")
    if tag == "z":
        _need(len(node) == 1, "null takes no payload")
        return None
    _need(len(node) >= 2, "tag {0!r} needs a payload".format(tag))
    payload = node[1]
    if tag == "b":
        _need(len(node) == 2 and isinstance(payload, bool), "bad bool")
        return payload
    if tag == "i":
        _need(
            len(node) == 2
            and isinstance(payload, int)
            and not isinstance(payload, bool),
            "bad int",
        )
        return payload
    if tag == "f":
        _need(
            len(node) == 2 and isinstance(payload, (int, float))
            and not isinstance(payload, bool),
            "bad float",
        )
        return float(payload)
    if tag == "s":
        _need(len(node) == 2 and isinstance(payload, str), "bad str")
        return payload
    if tag == "y":
        _need(len(node) == 2 and isinstance(payload, str), "bad bytes")
        try:
            return base64.b64decode(payload.encode("ascii"), validate=True)
        except (ValueError, UnicodeEncodeError):
            raise CodecError("malformed body: bad base64")
    if tag in ("t", "l", "fz", "st"):
        _need(len(node) == 2 and isinstance(payload, list),
              "bad sequence payload")
        items = [_unpack(item) for item in payload]
        if tag == "t":
            return tuple(items)
        if tag == "l":
            return items
        try:
            return frozenset(items) if tag == "fz" else set(items)
        except TypeError:
            raise CodecError("malformed body: unhashable set element")
    if tag == "d":
        _need(len(node) == 2 and isinstance(payload, list), "bad dict")
        result = {}
        for pair in payload:
            _need(isinstance(pair, list) and len(pair) == 2,
                  "bad dict entry")
            try:
                result[_unpack(pair[0])] = _unpack(pair[1])
            except TypeError:
                raise CodecError("malformed body: unhashable dict key")
        return result
    if tag == "@":
        _need(len(node) == 3 and isinstance(payload, str),
              "bad dataclass reference")
        cls = _BY_NAME.get(payload)
        _need(cls is not None, "unknown type {0!r}".format(payload))
        values = node[2]
        declared = fields(cls)
        _need(
            isinstance(values, list) and len(values) == len(declared),
            "wrong field count for {0}".format(payload),
        )
        try:
            return cls(*[_unpack(item) for item in values])
        except CodecError:
            raise
        except Exception as exc:
            raise CodecError(
                "cannot rebuild {0}: {1}".format(payload, exc)
            )
    raise CodecError("malformed body: unknown tag {0!r}".format(tag))


# -- Body encoding -----------------------------------------------------------


def encode(value):
    """Encode one value into a version-prefixed body (no length header)."""
    packed = _pack(value)
    try:
        body = json.dumps(
            packed, separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
    except ValueError as exc:
        raise CodecError("unencodable value: {0}".format(exc))
    return bytes([WIRE_VERSION]) + body


def decode(data):
    """Decode a body produced by :func:`encode`."""
    if not isinstance(data, (bytes, bytearray)) or len(data) < 2:
        raise CodecError("truncated body")
    if data[0] not in SUPPORTED_WIRE_VERSIONS:
        raise CodecError(
            "unsupported wire version {0} (speaking {1}, accepting {2})"
            .format(data[0], WIRE_VERSION, SUPPORTED_WIRE_VERSIONS)
        )
    try:
        document = json.loads(bytes(data[1:]).decode("utf-8"))
        return _unpack(document)
    except CodecError:
        raise
    except (UnicodeDecodeError, ValueError):
        raise CodecError("body is not valid UTF-8 JSON")
    except RecursionError:
        raise CodecError("body nesting exceeds the decoder's depth limit")


# -- Framing -----------------------------------------------------------------


def encode_frame(value):
    """One complete wire frame: length header plus encoded body."""
    body = encode(value)
    if len(body) > MAX_FRAME:
        raise CodecError(
            "frame of {0} bytes exceeds MAX_FRAME".format(len(body))
        )
    return _HEADER.pack(len(body)) + body


def decode_frame(data):
    """Decode exactly one frame; trailing or missing bytes are errors."""
    if len(data) < _HEADER.size:
        raise CodecError("truncated frame header")
    (length,) = _HEADER.unpack_from(data)
    if length > MAX_FRAME:
        raise CodecError("frame length {0} exceeds MAX_FRAME".format(length))
    body = data[_HEADER.size:]
    if len(body) < length:
        raise CodecError(
            "truncated frame: header promises {0} bytes, got {1}".format(
                length, len(body)
            )
        )
    if len(body) > length:
        raise CodecError("trailing bytes after frame")
    return decode(body)


class FrameDecoder:
    """Incremental frame reassembly for a TCP byte stream.

    Feed arbitrary chunks; complete frames come back decoded, partial
    frames wait in the buffer.  A malformed length or body raises
    :class:`CodecError` -- the caller drops the connection; the decoder
    itself never crashes on truncation (TCP segmentation is normal).
    """

    def __init__(self, max_frame=MAX_FRAME):
        self._buffer = bytearray()
        self._max_frame = max_frame
        #: Observability counters: raw bytes absorbed and complete
        #: frames decoded over this decoder's lifetime.
        self.bytes_fed = 0
        self.frames_decoded = 0

    @property
    def pending(self):
        """Bytes buffered awaiting a complete frame (0 at a boundary)."""
        return len(self._buffer)

    def feed(self, data):
        """Absorb ``data``; return the list of completed frame values."""
        self._buffer.extend(data)
        self.bytes_fed += len(data)
        messages = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return messages
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > self._max_frame:
                raise CodecError(
                    "frame length {0} exceeds limit {1}".format(
                        length, self._max_frame
                    )
                )
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return messages
            body = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            messages.append(decode(body))
            self.frames_decoded += 1
