"""In-process loopback deployment: N live nodes on 127.0.0.1.

:class:`RuntimeCluster` is the live analogue of
:class:`repro.gcs.cluster.Cluster`: it spins up one
:class:`~repro.runtime.node.RuntimeNode` per process on a private
asyncio event loop (running in a background thread), all talking real
TCP through OS-assigned loopback ports, sharing one
:class:`~repro.gcs.recorder.ActionLog` with the online
:class:`~repro.faults.monitor.SafetyMonitor` armed on it.  Tests,
benchmarks and examples drive it synchronously; every call is
marshalled onto the loop thread, and every wait carries a hard timeout
so an asyncio hang fails loudly instead of stalling the suite.

The monitor runs with ``fail_fast=False``: on live traffic a violation
is recorded (``cluster.violations``) rather than raised from inside a
socket callback, and :meth:`check` turns any accumulated violation or
layer error into an assertion.

``kill``/``restart`` model a crash plus an *amnesiac* rejoin: the
restarted node is a fresh process reusing the id (new port, empty
state); it re-enters through the membership protocol and rebuilds its
application state by replaying the confirmed total order.
"""

import asyncio
import threading
import time

from repro.core.viewids import ViewId
from repro.core.views import View
from repro.faults.monitor import SafetyMonitor
from repro.gcs.recorder import ActionLog
from repro.gcs.to_layer import NORMAL
from repro.runtime.node import MonotonicClock, RuntimeNode

#: Default hard bound (seconds) on any single marshalled call.
CALL_TIMEOUT = 30.0


class RuntimeCluster:
    """A live N-node loopback cluster with a synchronous facade.

    ``app_factory`` (optional) builds one application object per node,
    e.g. ``lambda node: KvReplica(node.to)``; it is re-invoked on
    restart so the fresh incarnation starts with fresh state.
    ``cb_app_factory`` is the same hook for the causal tier, e.g.
    ``lambda node: PresenceBoard(node.cb)`` -- a node can host both.
    """

    def __init__(self, processes, host="127.0.0.1", monitor=True,
                 app_factory=None, cb_app_factory=None, initial_view=None,
                 hb_interval=0.05,
                 hb_timeout=0.25, queue_limit=4096, obs=None,
                 nemesis=None, faultnet=None, fault_seed=0,
                 dvs_factory=None, record=False):
        self.processes = sorted(processes)
        if initial_view is None:
            initial_view = View(ViewId(0, ""), frozenset(self.processes))
        self.initial_view = initial_view
        self._host = host
        self._hb_interval = hb_interval
        self._hb_timeout = hb_timeout
        self._queue_limit = queue_limit
        self._app_factory = app_factory
        self._cb_app_factory = cb_app_factory
        self._dvs_factory = dvs_factory
        self._clock = None
        if obs is True:
            from repro.obs import Observability

            obs = Observability()
        #: Optional :class:`repro.obs.Observability`: spans + metrics,
        #: fed on the loop thread, read through the marshalled
        #: snapshot methods below.
        self.obs = obs
        self.log = ActionLog(clock=self._log_now, tracer=obs)
        self.monitor = None
        if monitor:
            if monitor is True:
                monitor = SafetyMonitor(self.initial_view, fail_fast=False)
            self.monitor = monitor.attach(self.log)
        #: Shared fault interposer + scheduled nemesis, mirroring the
        #: simulator cluster's ``nemesis=`` hook: pass a
        #: :class:`~repro.faults.nemesis.NemesisPlan` (or op list, or a
        #: prebuilt :class:`~repro.runtime.faultnet.LiveNemesis`) and it
        #: is armed on the event loop when the cluster starts.
        if nemesis is not None or faultnet is not None:
            from repro.runtime.faultnet import FaultNet, LiveNemesis

            if faultnet is None:
                faultnet = FaultNet(seed=fault_seed)
            if nemesis is not None and not isinstance(nemesis, LiveNemesis):
                nemesis = LiveNemesis(nemesis, faultnet=faultnet)
        self.faultnet = faultnet
        self.nemesis = nemesis
        #: Trace capture (``record=True`` or a prebuilt
        #: :class:`~repro.obs.record.TraceRecorder`): every stack input
        #: is recorded so the run replays deterministically offline.
        if record:
            from repro.obs.record import TraceRecorder

            if record is True:
                record = TraceRecorder()
            self.log.observers.append(record.on_action)
        self.wiretap = record or None
        self._book = {}
        self._nodes = {}
        self._apps = {}
        self._cb_apps = {}
        self._loop = None
        self._thread = None

    def _log_now(self):
        return self._clock.now if self._clock is not None else None

    # -- Lifecycle ---------------------------------------------------------

    def start(self, timeout=CALL_TIMEOUT):
        """Boot the loop thread and every node; returns self."""
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-runtime-loop",
            daemon=True,
        )
        self._thread.start()
        self._call(self._start_all, timeout=timeout)
        return self

    async def _start_all(self):
        self._clock = MonotonicClock(asyncio.get_running_loop())
        for pid in self.processes:
            node = self._build_node(pid, member=None)
            self._nodes[pid] = node
            await node.start(clock=self._clock)
            if self._app_factory is not None:
                self._apps[pid] = self._app_factory(node)
            if self._cb_app_factory is not None:
                self._cb_apps[pid] = self._cb_app_factory(node)
        if self.nemesis is not None:
            self.nemesis.arm(self)

    @property
    def clock(self):
        # Benign race: GIL-atomic reference read; the clock is written
        # once at startup and is itself thread-safe.
        return self._clock  # lint: ignore[DVS012]

    def _build_node(self, pid, member):
        return RuntimeNode(
            pid, self._book, initial_view=self.initial_view,
            recorder=self.log, member=member, host=self._host,
            hb_interval=self._hb_interval, hb_timeout=self._hb_timeout,
            queue_limit=self._queue_limit, obs=self.obs,
            faultnet=self.faultnet, wiretap=self.wiretap,
            dvs_factory=self._dvs_factory,
        )

    def stop(self, timeout=CALL_TIMEOUT):
        """Stop every node, then the loop and its thread."""
        if self._loop is None:
            return
        self._call(self._stop_all, timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)
        self._loop.close()
        self._loop = None

    async def _stop_all(self):
        for node in self._nodes.values():
            await node.stop()

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False

    # -- Marshalling -------------------------------------------------------

    def _call(self, fn, *args, timeout=CALL_TIMEOUT):
        """Run ``fn`` (sync or async) on the loop thread; hard timeout."""

        async def runner():
            result = fn(*args)
            if asyncio.iscoroutine(result):
                result = await result
            return result

        future = asyncio.run_coroutine_threadsafe(runner(), self._loop)
        try:
            return future.result(timeout)
        except TimeoutError:
            future.cancel()
            raise

    # -- Fault injection ---------------------------------------------------

    def kill(self, pid, timeout=CALL_TIMEOUT):
        """Crash ``pid``: close its sockets and discard the node."""
        self._call(self._kill_async, pid, timeout=timeout)
        return self

    async def _kill_async(self, pid):
        # The pops happen on the loop thread, where _start_all and
        # _restart_async write the same dicts.
        node = self._nodes.pop(pid)
        self._apps.pop(pid, None)
        self._cb_apps.pop(pid, None)
        await node.stop()

    def restart(self, pid, timeout=CALL_TIMEOUT):
        """Rejoin ``pid`` as a fresh amnesiac incarnation (new port)."""
        if self.monitor is not None:
            self.monitor.restart_process(pid)
        self._call(self._restart_async, pid, timeout=timeout)
        return self

    async def _restart_async(self, pid):
        node = self._build_node(pid, member=False)
        self._nodes[pid] = node
        await node.start(clock=self._clock)
        if self._app_factory is not None:
            self._apps[pid] = self._app_factory(node)
        if self._cb_app_factory is not None:
            self._cb_apps[pid] = self._cb_app_factory(node)

    # -- Nemesis surface (called on the loop thread) -----------------------

    async def nemesis_kill(self, pid):
        """Crash op from a :class:`~repro.runtime.faultnet.LiveNemesis`;
        tolerates an already-dead target (plans may race restarts)."""
        if pid in self._nodes:
            await self._kill_async(pid)

    async def nemesis_revive(self, pid):
        """Recover op: live recovery is always an *amnesiac* rejoin (a
        fresh process reusing the id), unlike the simulator's resume of
        the old state -- the monitor forgets the old incarnation first."""
        if pid in self._nodes:
            return
        if self.monitor is not None:
            self.monitor.restart_process(pid)
        await self._restart_async(pid)

    def note_nemesis(self, op):
        """Annotate the trace with an applied fault op (loop thread)."""
        # Only ever called from LiveNemesis timers on the loop thread,
        # after _start_all set the clock (the engine cannot see that).
        if self.wiretap is not None and self._clock is not None:  # lint: ignore[DVS012]
            self.wiretap.record(
                self._clock.now, "*", "nemesis", op.describe()  # lint: ignore[DVS012]
            )

    # -- Client surface ----------------------------------------------------

    def bcast(self, pid, payload, ordering="to", timeout=CALL_TIMEOUT):
        """Broadcast through ``pid`` with the chosen ordering strength:
        ``"to"`` (totally ordered) or ``"cb"`` (causally ordered)."""
        if ordering == "to":
            # The node lookup must happen inside the marshalled
            # callable: evaluating self._nodes[pid].to here would read
            # loop-owned state on the caller thread.
            call = lambda: self._nodes[pid].to.bcast(payload)  # noqa: E731
        elif ordering == "cb":
            call = lambda: self._nodes[pid].cb.cbcast(payload)  # noqa: E731
        else:
            raise ValueError(
                "unknown ordering {0!r} (expected 'to' or 'cb')".format(
                    ordering
                )
            )
        self._call(call, timeout=timeout)
        return self

    def call_node(self, pid, fn, timeout=CALL_TIMEOUT):
        """Run ``fn(node)`` on the loop thread and return its result."""
        return self._call(lambda: fn(self._nodes[pid]), timeout=timeout)

    def call_app(self, pid, fn, timeout=CALL_TIMEOUT):
        """Run ``fn(app)`` on the loop thread and return its result."""
        return self._call(lambda: fn(self._apps[pid]), timeout=timeout)

    def call_cb_app(self, pid, fn, timeout=CALL_TIMEOUT):
        """Run ``fn(cb_app)`` on the loop thread and return its result."""
        return self._call(lambda: fn(self._cb_apps[pid]), timeout=timeout)

    def app(self, pid):
        # Benign race: a single GIL-atomic dict lookup, and the only
        # loop-side writers key it by pid before the caller can know it.
        return self._apps[pid]  # lint: ignore[DVS012]

    def cb_app(self, pid):
        # Benign race: same single GIL-atomic dict lookup as app().
        return self._cb_apps[pid]  # lint: ignore[DVS012]

    def live(self):
        """Ids of the currently running nodes, sorted."""
        # Benign race: a GIL-atomic snapshot of the key set; callers
        # treat it as advisory (membership may move right after).
        return sorted(self._nodes)  # lint: ignore[DVS012]

    # -- Waiting -----------------------------------------------------------

    def wait_until(self, predicate, timeout=CALL_TIMEOUT, poll=0.02,
                   what="condition"):
        """Poll ``predicate`` (evaluated on the loop thread) until true.

        Raises ``TimeoutError`` naming ``what`` on expiry -- the hang
        guard every integration test leans on.
        """
        # Wall clock is the point: this is the real-time hang guard on
        # the caller's thread, outside the simulated world (DESIGN.md §9).
        deadline = time.monotonic() + timeout  # lint: ignore[DVS006]
        while True:
            if self._call(predicate, timeout=timeout):
                return self
            if time.monotonic() >= deadline:  # lint: ignore[DVS006]
                raise TimeoutError(
                    "timed out after {0:.1f}s waiting for {1}".format(
                        timeout, what
                    )
                )
            time.sleep(poll)

    def wait_formation(self, pids=None, timeout=CALL_TIMEOUT):
        """Wait until every expected node has established the primary
        view consisting of exactly ``pids`` (default: all live nodes)."""
        # Benign race: GIL-atomic key-set snapshot fixing the target
        # membership; the predicate itself runs marshalled on the loop.
        expected = frozenset(
            pids if pids is not None else self._nodes  # lint: ignore[DVS012]
        )

        def formed():
            for pid in expected:
                node = self._nodes.get(pid)
                if node is None:
                    return False
                to = node.to
                if (
                    to.status != NORMAL
                    or to.current is None
                    or to.current.set != expected
                ):
                    return False
            return True

        return self.wait_until(
            formed, timeout=timeout,
            what="primary view over {0}".format(sorted(expected)),
        )

    # -- Observation -------------------------------------------------------

    def delivered(self, pid):
        """All totally ordered deliveries recorded at ``pid`` -- across
        every incarnation (the shared log never forgets)."""
        return self._call(lambda: [
            (a.params[0], a.params[1])
            for a in self.log.actions
            if a.name == "brcv" and a.params[2] == pid
        ])

    def delivery_count(self, pid):
        """Deliveries of the *current* incarnation of ``pid``."""
        return self.call_node(pid, lambda node: node.to.nextreport - 1)

    def cb_delivered(self, pid):
        """All causally ordered deliveries recorded at ``pid`` -- across
        every incarnation (the shared log never forgets)."""
        return self._call(lambda: [
            (a.params[0].payload, a.params[1])
            for a in self.log.actions
            if a.name == "cb_brcv" and a.params[2] == pid
        ])

    def cb_delivery_count(self, pid):
        """CB deliveries of the *current* incarnation of ``pid``."""
        return self.call_node(pid, lambda node: node.cb.deliveries)

    @property
    def violations(self):
        return list(self.monitor.violations) if self.monitor else []

    def errors(self):
        """Layer exceptions recorded by any live node."""
        return self._call(lambda: {
            pid: list(node.errors)
            for pid, node in sorted(self._nodes.items())
            if node.errors
        })

    def check(self):
        """Assert the run is clean: no monitor violations, no errors."""
        errors = self.errors()
        assert not errors, "layer errors: {0!r}".format(errors)
        assert self.monitor is None or self.monitor.ok, (
            "safety violations: "
            + "; ".join(v.summary() for v in self.monitor.violations)
        )
        return self

    def stats(self):
        return self._call(lambda: {
            pid: node.stats() for pid, node in sorted(self._nodes.items())
        })

    # -- Trace capture (requires ``record=``) ------------------------------

    def _require_wiretap(self):
        if self.wiretap is None:
            raise ValueError(
                "cluster built without record= (pass record=True to "
                "capture a replayable trace)"
            )
        return self.wiretap

    def _dvs_name(self):
        """The trace-header name of the hosted DVS layer factory.

        Must agree with :data:`repro.checking.replay.DVS_FACTORIES`
        (resolved locally so the runtime never imports the checking
        stack and its hypothesis dependency)."""
        from repro.gcs.dvs_layer import DvsLayer

        if self._dvs_factory is None or self._dvs_factory is DvsLayer:
            return "normal"
        from repro.dvs.ablation import NoMajorityDvsLayer

        if self._dvs_factory is NoMajorityDvsLayer:
            return "nomajority"
        raise ValueError(
            "dvs_factory {0!r} has no replayable trace name".format(
                self._dvs_factory
            )
        )

    def snapshot_trace(self, timeout=CALL_TIMEOUT):
        """The events recorded so far, as an immutable
        :class:`~repro.obs.record.ReplayTrace` (loop-thread snapshot).

        May also be called after :meth:`stop` (the loop is gone but so
        are the writers), which is how a chaos harness grabs the final
        trace."""
        wiretap = self._require_wiretap()

        def snap():
            return wiretap.trace(
                self.processes, self.initial_view, dvs=self._dvs_name(),
            )

        if self._loop is None:
            return snap()
        return self._call(snap, timeout=timeout)

    def save_trace(self, path, timeout=CALL_TIMEOUT):
        """Serialize the recorded trace to ``path``; returns the trace."""
        trace = self.snapshot_trace(timeout=timeout)
        trace.save(path)
        return trace

    # -- Observability (requires ``obs=``) ---------------------------------

    def _require_obs(self):
        if self.obs is None:
            raise ValueError(
                "cluster built without obs= (pass obs=True to arm "
                "tracing and metrics)"
            )
        return self.obs

    def metrics_snapshot(self, timeout=CALL_TIMEOUT):
        """The metrics registry, snapshotted on the loop thread."""
        obs = self._require_obs()
        return self._call(obs.metrics.snapshot, timeout=timeout)

    def trace_snapshot(self, timeout=CALL_TIMEOUT):
        """The full stitched trace (spans, views, per-stage summary) as
        JSON-ready data, read on the loop thread."""
        obs = self._require_obs()
        return self._call(obs.tracer.to_json_dict, timeout=timeout)

    def obs_snapshot(self, timeout=CALL_TIMEOUT):
        """Metrics + trace summary + derived gcs statistics."""
        obs = self._require_obs()
        return self._call(obs.snapshot, timeout=timeout)
