"""Fault injection for the live TCP runtime.

The simulator executes :class:`~repro.faults.nemesis.NemesisPlan`
schedules by construction -- faults transform the scheduler's copy
lists.  On real sockets there is no scheduler to transform, so this
module interposes at the transport boundary of every
:class:`~repro.runtime.node.RuntimeNode` instead:

- on the *send* side, :meth:`FaultNet.outbound` runs the same
  :class:`~repro.faults.models.LinkFault` objects the simulator
  installs over an encoded frame's copy list -- loss drops the frame
  before it reaches the :class:`~repro.runtime.transport.PeerLink`,
  duplication queues extra copies, jitter and latency spikes defer the
  queueing through ``loop.call_later``;
- on the *receive* side, :meth:`FaultNet.blocked` vetoes delivery for
  partitioned or one-way-blocked links, mirroring the simulator's
  delivery-time semantics (frames in flight across a freshly blocked
  link are lost, and a blocked peer's heartbeats become invisible, so
  the connectivity estimator suspects it exactly as the oracle would).

One :class:`FaultNet` is shared by every node of a
:class:`~repro.runtime.cluster.RuntimeCluster` and lives on the
cluster's event loop thread; all randomness draws from its seeded RNG,
so two live runs with the same ``(fault_seed, plan)`` make the same
drop/delay decisions (the network itself stays nondeterministic --
determinism on live runs comes from trace replay, not from the run).

:class:`LiveNemesis` is the live twin of
:class:`~repro.faults.nemesis.Nemesis`: it executes a plan against a
running cluster -- ``crash``/``recover`` ops kill and revive nodes,
``partition``/``heal`` rewrite the component map, windowed ops install
and remove fault models -- using ``loop.call_later`` where the
simulator used its event queue.
"""

import asyncio
import random

from repro.faults.nemesis import Nemesis, NemesisPlan

#: Delays below this are flushed inline rather than via the loop: a
#: ``call_later(0)`` would still reorder the frame behind every ready
#: callback, which is *more* disruption than the plan asked for.
_INLINE_DELAY = 1e-6


class FaultNet:
    """Cluster-wide fault state consulted by every node's transport.

    The interface deliberately mirrors the fault slice of
    :class:`repro.net.simulator.Network` (``partition``/``heal``/
    ``install_fault``/``remove_fault`` plus a seeded ``rng``), so
    :class:`~repro.faults.models.LinkFault` objects plug in unchanged:
    their ``transform`` methods only touch ``net.rng``.

    ``fifo=True`` (default) serializes delayed copies per directed pair
    through a channel clock, exactly like the simulator: jitter then
    stretches inter-arrival gaps without reordering a pair's frames.
    ``fifo=False`` lets large jitter reorder frames -- a strictly
    harsher adversary than TCP itself provides.
    """

    def __init__(self, seed=0, fifo=True):
        self.rng = random.Random(seed)
        self.fifo = fifo
        self.faults = []
        self._component_of = {}
        self._channel_clock = {}
        # Counters (read via stats(); all mutated on the loop thread).
        self.injected_drops = 0
        self.injected_copies = 0
        self.delayed_sends = 0
        self.blocked_recvs = 0

    # -- Topology (the Network fault interface) ----------------------------

    def partition(self, groups):
        """Install a symmetric component partition.

        Processes not named in any group land in component 0 together,
        matching the simulator's partition map semantics.
        """
        component_of = {}
        for index, group in enumerate(groups):
            for pid in group:
                component_of[pid] = index
        self._component_of = component_of

    def heal(self):
        self._component_of = {}

    def install_fault(self, fault):
        self.faults.append(fault)
        return fault

    def remove_fault(self, fault):
        if fault in self.faults:
            self.faults.remove(fault)

    # -- Transport interposition -------------------------------------------

    def blocked(self, src, dst):
        """Delivery veto for ``src -> dst`` (partitions + one-way blocks),
        checked by the *receiver* so in-flight frames are lost too."""
        if self._component_of.get(src, 0) != self._component_of.get(dst, 0):
            return True
        return any(f.blocks_delivery(src, dst) for f in self.faults)

    def note_blocked_recv(self):
        self.blocked_recvs += 1

    def outbound(self, src, dst, now):
        """Fault decision for one frame about to be queued on a link.

        Returns ``None`` when no fault matches (the caller takes its
        fast path unchanged), else the list of extra delays (seconds
        from ``now``) at which to queue each surviving copy -- ``[]``
        means the frame is dropped outright.
        """
        matching = [f for f in self.faults if f.applies(src, dst)]
        if not matching:
            return None
        copies = [0.0]
        for fault in matching:
            copies = fault.transform(self, src, dst, copies)
            if not copies:
                self.injected_drops += 1
                return []
        if len(copies) > 1:
            self.injected_copies += len(copies) - 1
        delays = []
        for extra in copies:
            at = now + extra
            if self.fifo:
                earliest = self._channel_clock.get((src, dst), 0.0)
                at = max(at, earliest)
                self._channel_clock[(src, dst)] = at
            delay = at - now
            if delay > _INLINE_DELAY:
                self.delayed_sends += 1
            delays.append(max(0.0, delay))
        return delays

    # -- Observation -------------------------------------------------------

    def stats(self):
        return {
            "active_faults": len(self.faults),
            "partitioned": bool(self._component_of),
            "injected_drops": self.injected_drops,
            "injected_copies": self.injected_copies,
            "delayed_sends": self.delayed_sends,
            "blocked_recvs": self.blocked_recvs,
        }


class LiveNemesis:
    """Executes a :class:`NemesisPlan` against a live cluster.

    Op times are seconds on the cluster clock (which starts at ~0 when
    the cluster boots); :meth:`arm` must run on the cluster's event
    loop, which :meth:`RuntimeCluster._start_all` guarantees.
    """

    def __init__(self, plan, faultnet=None):
        self.plan = plan if isinstance(plan, NemesisPlan) else NemesisPlan(plan)
        self.faultnet = faultnet
        self.applied = []
        #: In-flight crash/recover tasks: a strong reference keeps them
        #: collectable only after completion, and the done-callback
        #: surfaces their exceptions into :attr:`errors` instead of
        #: letting the loop swallow them (DVS017).
        self.tasks = set()
        self.errors = []

    def arm(self, cluster):
        loop = asyncio.get_running_loop()
        if self.faultnet is None:
            self.faultnet = cluster.faultnet
        for op in self.plan:
            delay = max(0.0, op.at - cluster.clock.now)
            loop.call_later(delay, self._apply, cluster, loop, op)
        return self

    def _apply(self, cluster, loop, op):
        self.applied.append(op)
        cluster.note_nemesis(op)
        kind, args = op.kind, op.args
        if kind == "crash":
            self._track(asyncio.ensure_future(cluster.nemesis_kill(args[0])))
        elif kind == "recover":
            self._track(
                asyncio.ensure_future(cluster.nemesis_revive(args[0]))
            )
        elif kind == "partition":
            self.faultnet.partition([set(g) for g in args[0]])
        elif kind == "heal":
            self.faultnet.heal()
        else:
            fault, duration = Nemesis._build_fault(kind, args)
            self.faultnet.install_fault(fault)
            loop.call_later(duration, self.faultnet.remove_fault, fault)

    def _track(self, task):
        self.tasks.add(task)
        task.add_done_callback(self._reap)

    def _reap(self, task):
        self.tasks.discard(task)
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None:
            self.errors.append(exc)
