"""Heartbeat-based connectivity estimation for the live runtime.

The simulator gives every node a *connectivity oracle*: whenever the
partition map changes, each alive node is told its exact component.  On
real sockets no such oracle exists, so this module estimates it: every
node beacons a :class:`~repro.runtime.codec.Heartbeat` to all peers on a
fixed interval, treats a peer as connected while *any* traffic from it
arrived within a timeout, and reports the resulting component through
the same ``on_connectivity`` upcall the oracle used.

The substitution is safe by construction (DESIGN.md §9): the stack's
safety proofs never rely on the oracle being accurate or consistent
across nodes -- connectivity reports only decide *when* membership
rounds start, never what the layers do with the views that result.  Two
nodes may transiently disagree about the component; the coordinator's
round simply supersedes itself.  Accuracy buys liveness, not safety.

A ``grace`` period delays the *first* report so a booting node hears its
peers before concluding it is alone (otherwise every start would mint a
useless singleton view).
"""

import asyncio


class ConnectivityEstimator:
    """Tracks peer liveness and reports component changes.

    ``peers`` is a zero-argument callable returning the current iterable
    of peer ids (so a deployment whose address book grows is picked up);
    ``clock`` exposes ``.now`` (seconds, monotonic); ``send_heartbeats``
    emits one beacon to every peer; ``notify`` receives the frozenset
    component (always containing ``pid``) whenever the estimate changes.
    """

    def __init__(self, pid, peers, clock, send_heartbeats, notify,
                 interval=0.05, timeout=None, grace=None, on_error=None):
        self.pid = pid
        self._peers = peers
        self._clock = clock
        self._send_heartbeats = send_heartbeats
        self._notify = notify
        self._on_error = on_error
        self.interval = interval
        self.timeout = 4 * interval if timeout is None else timeout
        self.grace = self.timeout if grace is None else grace
        self._last_heard = {}
        self._reported = None
        self._started_at = None
        self._task = None

    # -- Evidence ----------------------------------------------------------

    def heard(self, src):
        """Any frame from ``src`` proves it alive and reachable."""
        self._last_heard[src] = self._clock.now

    def component(self):
        """The current estimate: self plus every recently-heard peer."""
        horizon = self._clock.now - self.timeout
        alive = {
            peer
            for peer in self._peers()
            # A never-heard peer is never "alive" -- early on, any
            # sentinel time would sit inside the horizon and fabricate
            # connectivity to peers that were never there.
            if self._last_heard.get(peer) is not None
            and self._last_heard[peer] >= horizon
        }
        alive.add(self.pid)
        return frozenset(alive)

    # -- Reporting ---------------------------------------------------------

    def poll(self):
        """One tick: prune, beacon, then report the component if it
        changed."""
        if self._started_at is None:
            self._started_at = self._clock.now
        # Evidence for peers no longer in the address book is dropped:
        # without this, ``_last_heard`` grows without bound over churn
        # in a long-lived deployment, and a peer that is removed and
        # later re-added would be resurrected by its *stale* timestamps
        # instead of having to prove itself alive again.
        known = set(self._peers())
        for peer in sorted(self._last_heard):
            if peer not in known:
                del self._last_heard[peer]
        self._send_heartbeats()
        if self._clock.now - self._started_at < self.grace:
            return None
        estimate = self.component()
        if estimate != self._reported:
            self._reported = estimate
            self._notify(estimate)
        return estimate

    # -- Driving -----------------------------------------------------------

    def start(self):
        """Run :meth:`poll` forever on the current event loop."""

        async def run():
            while True:
                self.poll()
                await asyncio.sleep(self.interval)

        self._task = asyncio.ensure_future(run())
        return self

    async def stop(self):
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            except Exception as exc:
                # A real teardown error must surface, not vanish into a
                # dead except arm (CancelledError is a BaseException).
                if self._on_error is not None:
                    self._on_error(exc)
                else:
                    raise
