"""Live deployment runtime: the simulated stack on real sockets.

This package hosts the *unchanged* layer stack of :mod:`repro.gcs` --
VS membership, the DVS layer, totally ordered broadcast -- behind an
asyncio TCP transport that satisfies the same upcall/downcall contract
the simulator provides (``send``/``broadcast``/``set_timer``/``now``
down, ``on_start``/``on_message``/``on_timer``/``on_connectivity`` up).
The one semantic substitution is the connectivity oracle: where the
simulator tells each node its exact partition component, the runtime
estimates it from heartbeats (see DESIGN.md §9 for why that is safe).

Layers: :mod:`~repro.runtime.codec` (versioned wire format and
framing), :mod:`~repro.runtime.transport` (reconnecting peer links and
the accept side), :mod:`~repro.runtime.heartbeat` (connectivity
estimation), :mod:`~repro.runtime.node` (one live process),
:mod:`~repro.runtime.cluster` (the in-process loopback harness tests
and benchmarks drive), :mod:`~repro.runtime.serve` (the ``repro
serve`` command).
"""

from repro.runtime.codec import (
    MAX_FRAME,
    WIRE_TYPES,
    WIRE_VERSION,
    CodecError,
    FrameDecoder,
    Heartbeat,
    Hello,
    decode,
    decode_frame,
    encode,
    encode_frame,
)
from repro.runtime.cluster import RuntimeCluster
from repro.runtime.heartbeat import ConnectivityEstimator
from repro.runtime.node import MonotonicClock, RuntimeNode
from repro.runtime.transport import Listener, PeerLink

__all__ = [
    "MAX_FRAME",
    "WIRE_TYPES",
    "WIRE_VERSION",
    "CodecError",
    "ConnectivityEstimator",
    "FrameDecoder",
    "Heartbeat",
    "Hello",
    "Listener",
    "MonotonicClock",
    "PeerLink",
    "RuntimeCluster",
    "RuntimeNode",
    "decode",
    "decode_frame",
    "encode",
    "encode_frame",
]
