"""Implementation of ``repro serve``: run the stack on real sockets.

Two modes share the wire protocol and the hosted layer stack:

``repro serve`` (loopback demo, the default)
    Boots an in-process :class:`~repro.runtime.cluster.RuntimeCluster`
    of N nodes on 127.0.0.1, drives a replicated key-value workload
    through totally ordered broadcast *and* a presence/typing channel
    through causal broadcast (each node hosts both towers; the client
    picks the ordering strength per send) -- optionally killing and
    rejoining one node mid-run -- and prints the per-node outcome plus
    the online safety monitor's verdict.  Exit status reflects that
    verdict, so the command doubles as a smoke test of the live path.

``repro serve --pid n1 --bind HOST:PORT --peer n2=HOST:PORT ...``
    Runs *one* node of a real multi-process deployment in the
    foreground until ``--duration`` elapses (or forever), printing view
    changes and applied commands as they happen.  Start one process per
    peer with matching books and they find each other through the
    handshake + heartbeat machinery; kill any of them and the survivors
    reform, exactly as in the loopback demo.
"""

import asyncio
import time

from repro.apps.kv_store import KvReplica
from repro.apps.presence import PresenceBoard
from repro.core.viewids import ViewId
from repro.core.views import View
from repro.runtime.cluster import RuntimeCluster
from repro.runtime.node import RuntimeNode


def _parse_endpoint(spec):
    host, _, port = spec.rpartition(":")
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise SystemExit(
            "bad endpoint {0!r}: expected HOST:PORT".format(spec)
        )


def _parse_peers(specs):
    book = {}
    for spec in specs:
        pid, sep, endpoint = spec.partition("=")
        if not sep or not pid:
            raise SystemExit(
                "bad --peer {0!r}: expected PID=HOST:PORT".format(spec)
            )
        book[pid] = _parse_endpoint(endpoint)
    return book


# -- Loopback demo -----------------------------------------------------------


def run_loopback(processes=3, requests=60, kill=True, hb_interval=0.05,
                 hb_timeout=0.25, timeout=30.0, metrics_json=None,
                 trace_json=None, echo=print):
    """The self-contained demo: N live nodes, a KV workload over TO, a
    presence channel over CB, one crash.

    ``metrics_json``/``trace_json`` arm the observability layer and
    write its snapshots to the given paths when the run finishes.
    Returns the number of safety violations (0 on a clean run).
    """
    pids = ["n{0}".format(i + 1) for i in range(processes)]
    victim = pids[-1]
    first = requests // 2 if kill and processes > 2 else requests
    observe = metrics_json is not None or trace_json is not None
    cluster = RuntimeCluster(
        pids,
        app_factory=lambda node: KvReplica(node.to),
        cb_app_factory=lambda node: PresenceBoard(node.cb),
        hb_interval=hb_interval,
        hb_timeout=hb_timeout,
        obs=True if observe else None,
    )
    with cluster:
        echo("serving {0} nodes on 127.0.0.1 (ports {1})".format(
            processes,
            ", ".join(str(cluster.call_node(p, lambda n: n.port))
                      for p in pids),
        ))
        cluster.wait_formation(timeout=timeout)
        echo("primary view formed over {0}".format(pids))

        _presence_round(cluster, pids, "online", timeout)
        echo("presence board converged over CB ({0} all online)".format(
            pids))
        sent = _drive(cluster, pids, 0, first, timeout)
        if first < requests:
            echo("killing {0} mid-run...".format(victim))
            cluster.kill(victim)
            survivors = [p for p in pids if p != victim]
            cluster.wait_formation(survivors, timeout=timeout)
            echo("survivors {0} reformed and keep serving".format(
                survivors))
            sent += _drive(cluster, survivors, sent, requests - sent,
                           timeout)
            echo("restarting {0} (fresh state, same id)...".format(victim))
            cluster.restart(victim)
            cluster.wait_formation(pids, timeout=timeout)
            _wait_applied(cluster, pids, sent, timeout)
            echo("{0} rejoined and caught up via state transfer".format(
                victim))
            _presence_round(cluster, pids, "back", timeout)
            echo("presence board repaired after rejoin "
                 "(fresh announcements over CB)")

        for pid in cluster.live():
            echo("  {0}: {1} commands applied, kv size {2}, "
                 "presence {3}/{4}".format(
                     pid,
                     cluster.call_app(pid, lambda app: app.log_length),
                     cluster.call_app(pid, lambda app: len(app.snapshot())),
                     cluster.call_cb_app(
                         pid, lambda app: len(app.board())),
                     len(pids),
                 ))
        if observe:
            _export_observability(
                cluster, metrics_json, trace_json, echo
            )
        violations = cluster.violations
        errors = cluster.errors()
    if errors:
        echo("LAYER ERRORS: {0!r}".format(errors))
        return 1
    if violations:
        for violation in violations:
            echo("SAFETY VIOLATION: {0}".format(violation.summary()))
        return len(violations)
    echo("safety monitor: {0} requests ordered, no violations".format(
        sent))
    return 0


def _export_observability(cluster, metrics_json, trace_json, echo):
    import json

    trace = cluster.trace_snapshot()
    echo("tracing: {0} message span(s), {1} view span(s), "
         "{2} orphan(s)".format(
             trace["summary"]["messages"], len(trace["views"]),
             trace["summary"]["orphans"]))
    if metrics_json:
        snapshot = cluster.obs_snapshot()
        with open(metrics_json, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        echo("metrics snapshot written to {0}".format(metrics_json))
    if trace_json:
        with open(trace_json, "w", encoding="utf-8") as handle:
            json.dump(trace, handle, indent=2, sort_keys=True)
            handle.write("\n")
        echo("trace JSON written to {0}".format(trace_json))


def _presence_round(cluster, pids, status, timeout):
    """Every node announces ``status`` over CB and flips a typing
    indicator; wait until every board shows every member at ``status``
    and nobody typing (start-then-stop arrives in that order: per-sender
    causal FIFO)."""
    for pid in pids:
        cluster.call_cb_app(pid, lambda app: app.typing(True))
        cluster.call_cb_app(
            pid, lambda app, s=status: app.announce(s)
        )
        cluster.call_cb_app(pid, lambda app: app.typing(False))

    def converged():
        return all(
            cluster.cb_app(p).status_of(q) == status
            for p in pids for q in pids
        ) and all(not cluster.cb_app(p).typing_now() for p in pids)

    cluster.wait_until(
        converged, timeout=timeout,
        what="presence board convergence on {0}".format(sorted(pids)),
    )


def _drive(cluster, pids, start, count, timeout):
    """Issue ``count`` uniquely keyed puts round-robin across ``pids``
    and wait until every replica has applied all of them."""
    for i in range(start, start + count):
        pid = pids[i % len(pids)]
        cluster.call_app(
            pid,
            lambda app, i=i, pid=pid: app.put(
                "k{0}".format(i % 10), "v{0}@{1}".format(i, pid)
            ),
        )
    _wait_applied(cluster, pids, start + count, timeout)
    return count


def _wait_applied(cluster, pids, total, timeout):
    cluster.wait_until(
        lambda: all(
            cluster.app(pid).log_length >= total for pid in pids
        ),
        timeout=timeout,
        what="{0} commands applied on {1}".format(total, sorted(pids)),
    )


# -- Single real node --------------------------------------------------------


def run_single(pid, bind, peers, duration=None, hb_interval=0.5,
               hb_timeout=None, echo=print):
    """Run one live node in the foreground (Ctrl-C to stop)."""
    host, port = _parse_endpoint(bind)
    book = _parse_peers(peers)
    book[pid] = (host, port)
    members = frozenset(book)
    initial_view = View(ViewId(0, ""), members)

    async def main():
        node = RuntimeNode(
            pid, book, initial_view=initial_view, host=host, port=port,
            hb_interval=hb_interval, hb_timeout=hb_timeout,
        )
        app = KvReplica(node.to)
        await node.start()
        echo("{0} listening on {1}:{2}; peers: {3}".format(
            pid, host, node.port,
            ", ".join("{0}={1}:{2}".format(p, *book[p])
                      for p in sorted(book) if p != pid) or "(none)",
        ))
        # Wall clock is the point: --duration bounds a live server's
        # real runtime, outside the simulated world (DESIGN.md §9).
        started = time.monotonic()  # lint: ignore[DVS006]
        last_view, last_applied = None, 0
        try:
            while (duration is None
                   or time.monotonic() - started < duration):  # lint: ignore[DVS006]
                await asyncio.sleep(hb_interval)
                view = node.to.current
                if view is not None and view.id != last_view:
                    last_view = view.id
                    echo("{0}: primary view {1} over {2}".format(
                        pid, view.id, sorted(view.set)))
                if app.log_length > last_applied:
                    for cmd, origin, _ in app.applied[last_applied:]:
                        echo("{0}: applied {1!r} from {2}".format(
                            pid, cmd, origin))
                    last_applied = app.log_length
        finally:
            await node.stop()
            echo("{0}: stopped ({1} commands applied)".format(
                pid, app.log_length))

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return 0


# -- CLI entry ---------------------------------------------------------------


def cmd_serve(args):
    if args.pid is not None:
        if not args.bind:
            raise SystemExit("--pid requires --bind HOST:PORT")
        return run_single(
            args.pid, args.bind, args.peer, duration=args.duration,
            hb_interval=args.hb_interval, hb_timeout=args.hb_timeout,
        )
    return run_loopback(
        processes=args.processes,
        requests=args.requests,
        kill=not args.no_kill,
        hb_interval=args.hb_interval,
        hb_timeout=args.hb_timeout or 0.25,
        timeout=args.timeout,
        metrics_json=getattr(args, "metrics_json", None),
        trace_json=getattr(args, "trace_json", None),
    )
