"""One-call live chaos runs: the real-TCP twin of
:func:`repro.faults.harness.run_chaos`.

:func:`run_live_chaos` boots a :class:`~repro.runtime.cluster.
RuntimeCluster`, arms the same :class:`~repro.faults.nemesis.
NemesisPlan` DSL against real sockets through
:class:`~repro.runtime.faultnet.LiveNemesis`, drives a round-robin
broadcast workload on the wall clock while the faults play out, and
returns a :class:`LiveChaosResult` carrying the monitor's verdict plus
the recorded :class:`~repro.obs.record.ReplayTrace` -- the artifact
that makes the nondeterministic run checkable offline
(:mod:`repro.checking.replay`).

Times in a live plan are wall-clock *seconds* (a simulator plan in
abstract time units converts with ``plan.scaled(...)``), so live plans
are short: a few seconds of partitions, latency and loss exercise the
same protocol paths hundreds of simulated units do.
"""

import time
from dataclasses import dataclass, field

from repro.faults.nemesis import NemesisPlan
from repro.runtime.cluster import RuntimeCluster


@dataclass
class LiveChaosResult:
    """Outcome of one live chaos run."""

    processes: tuple
    plan: NemesisPlan
    violations: list = field(default_factory=list)
    trace: object = None
    stats: dict = field(default_factory=dict)

    @property
    def ok(self):
        return not self.violations


def run_live_chaos(
    processes,
    plan=None,
    duration=None,
    broadcast_interval=0.25,
    settle_time=1.5,
    formation_timeout=30.0,
    dvs_factory=None,
    hb_interval=0.05,
    hb_timeout=0.25,
    fault_seed=0,
    record=True,
    host="127.0.0.1",
):
    """Run the live stack under a nemesis plan with an armed monitor.

    The cluster forms first (tolerantly: a plan that disrupts formation
    itself is legal), then the workload broadcasts one unique payload
    every ``broadcast_interval`` seconds from the live nodes in
    rotation -- alternating the ordering tier, even ticks through TO
    and odd ticks through CB, so both towers face the same faults --
    until ``duration`` (default: the plan's horizon plus a settle
    margin) has elapsed, then the run settles and stops.  Violations
    are collected, never raised (``fail_fast=False``).
    """
    processes = tuple(sorted(processes))
    plan = plan if isinstance(plan, NemesisPlan) else NemesisPlan(plan or ())
    if duration is None:
        duration = plan.horizon + 2.0
    cluster = RuntimeCluster(
        processes,
        host=host,
        nemesis=plan,
        dvs_factory=dvs_factory,
        record=record,
        fault_seed=fault_seed,
        hb_interval=hb_interval,
        hb_timeout=hb_timeout,
    )
    counter = 0
    cluster.start()
    try:
        try:
            cluster.wait_formation(timeout=formation_timeout)
        except TimeoutError:
            # The plan may forbid formation (e.g. an immediate
            # partition); the workload below skips dead/unformed nodes.
            pass
        # The pacing below is the whole point of a *live* run: real
        # seconds elapse while sockets, heartbeats and the fault
        # schedule race each other (DESIGN.md §9, §12).
        deadline = time.monotonic() + duration  # lint: ignore[DVS006]
        while time.monotonic() < deadline:  # lint: ignore[DVS006]
            pids = cluster.live()
            if pids:
                pid = pids[counter % len(pids)]
                ordering = "to" if counter % 2 == 0 else "cb"
                try:
                    cluster.bcast(pid, ("w", pid, counter),
                                  ordering=ordering)
                except KeyError:
                    pass  # the node died between live() and the call
            counter += 1
            time.sleep(broadcast_interval)
        time.sleep(settle_time)
        node_stats = cluster.stats()
    finally:
        cluster.stop()
    stats = dict(cluster.monitor.stats()) if cluster.monitor else {}
    stats.update({
        "workload_bcasts": counter,
        "plan_ops": len(plan),
        "nodes": node_stats,
    })
    if cluster.faultnet is not None:
        stats["faultnet"] = cluster.faultnet.stats()
    trace = cluster.snapshot_trace() if record else None
    if trace is not None:
        stats["trace_events"] = len(trace)
    return LiveChaosResult(
        processes=processes,
        plan=plan,
        violations=cluster.violations,
        trace=trace,
        stats=stats,
    )
