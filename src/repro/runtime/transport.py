"""Asyncio TCP transport: reconnecting peer links and the accept side.

Topology mirrors the simulator's directed channels: every ordered pair
of processes gets its own TCP connection, dialed by the sender.  A
:class:`PeerLink` owns the outbound half of one such channel -- a
bounded send queue, a connect/retry loop with jittered exponential
backoff, and per-link counters.  A :class:`Listener` owns the inbound
half -- it accepts connections, demands a :class:`~repro.runtime.codec.
Hello` handshake, reassembles frames and hands ``(src, msg)`` pairs to
its callback.

Loss semantics are deliberately the simulator's fair-lossy channel: a
frame queued while the peer is down is flushed on reconnect, the oldest
frames are dropped when the queue is full, and anything in flight when a
connection dies is simply lost.  The layers above (membership, ordering,
recovery) were built for exactly that adversary, so none of them change.

Backoff semantics: a *successful connect does not reset the backoff*.
TCP accept proves only that the peer's listener queue took the SYN -- a
crash-looping peer (or a half-open listener) accepts and instantly dies,
and resetting on accept would turn every such peer into a tight redial
loop at ``retry_min``.  The backoff resets to ``retry_min`` only once
the connection has *survived* ``stable_after`` seconds (default:
``retry_max``); until then each dial, successful or not, keeps growing
the delay toward ``retry_max``.
"""

import asyncio
import random

from repro.runtime.codec import (
    CodecError,
    FrameDecoder,
    Hello,
    encode_frame,
)

#: Default bound on a link's outbound queue (frames).
QUEUE_LIMIT = 4096

_READ_CHUNK = 1 << 16


class PeerLink:
    """The reconnecting outbound connection to one peer.

    ``resolve`` is a zero-argument callable returning the peer's current
    ``(host, port)``; it is consulted on *every* connection attempt, so
    a peer that restarts on a new port is picked up without tearing the
    link down.  A ``KeyError``/``OSError`` from resolution counts as a
    failed attempt and is retried with backoff.
    """

    def __init__(self, local_pid, peer_pid, resolve,
                 queue_limit=QUEUE_LIMIT, retry_min=0.05, retry_max=1.0,
                 stable_after=None, on_connect=None, on_drop=None,
                 on_queue_drop=None, on_error=None):
        self.local_pid = local_pid
        self.peer_pid = peer_pid
        self._resolve = resolve
        self._queue_limit = queue_limit
        self._retry_min = retry_min
        self._retry_max = retry_max
        # A connection is "healthy" (and resets the backoff) only after
        # surviving this long -- see the module docstring.
        self._stable_after = (
            retry_max if stable_after is None else stable_after
        )
        self._on_connect = on_connect
        self._on_drop = on_drop
        self._on_queue_drop = on_queue_drop
        self._on_error = on_error
        # Backoff jitter avoids N nodes hammering a rebooting peer in
        # lockstep; real-transport entropy is fine here (DESIGN.md §9).
        self._jitter = random.Random()  # lint: ignore[DVS007]
        self._queue = None
        self._task = None
        self._closed = False
        self.connects = 0
        self.sent = 0
        self.dropped = 0
        #: Drops caused specifically by queue overflow (drop-oldest);
        #: a subset of ``dropped``, which also counts closed-link drops.
        self.queue_drops = 0

    def start(self):
        """Begin dialing; must be called on the event loop."""
        self._queue = asyncio.Queue(maxsize=self._queue_limit)
        self._task = asyncio.ensure_future(self._run())
        return self

    def send(self, msg):
        """Encode and queue ``msg`` for the peer (fair-lossy: full queue
        drops the oldest frame, a closed link drops silently)."""
        if self._closed or self._queue is None:
            self._drop()
            return
        self.send_frame(encode_frame((self.local_pid, msg)))

    def send_frame(self, frame):
        """Queue an already-encoded frame.  This is the fan-out path:
        a broadcast encodes its frame once and hands the same bytes to
        every link instead of re-encoding per destination."""
        if self._closed or self._queue is None:
            self._drop()
            return
        if self._queue.full():
            self._queue.get_nowait()
            self._drop(overflow=True)
        self._queue.put_nowait(frame)

    def _drop(self, overflow=False):
        self.dropped += 1
        if overflow:
            self.queue_drops += 1
            if self._on_queue_drop is not None:
                self._on_queue_drop(self.peer_pid)
        if self._on_drop is not None:
            self._on_drop(self.peer_pid)

    def queue_depth(self):
        """Frames currently waiting in the outbound queue."""
        return self._queue.qsize() if self._queue is not None else 0

    async def _run(self):
        backoff = self._retry_min
        loop = asyncio.get_running_loop()
        while not self._closed:
            try:
                host, port = self._resolve()
                reader, writer = await asyncio.open_connection(host, port)
            except (KeyError, OSError, ValueError):
                await asyncio.sleep(
                    backoff * (1.0 + self._jitter.random())
                )
                backoff = min(backoff * 2, self._retry_max)
                continue
            self.connects += 1
            if self._on_connect is not None:
                self._on_connect(self.peer_pid)
            connected_at = loop.time()
            try:
                writer.write(
                    encode_frame((self.local_pid, Hello(self.local_pid)))
                )
                await writer.drain()
                while True:
                    frame = await self._queue.get()
                    writer.write(frame)
                    await writer.drain()
                    self.sent += 1
                    # drain() returning proves nothing about peer
                    # receipt (the kernel buffers); only surviving a
                    # stable interval marks the link healthy.
                    if (
                        backoff != self._retry_min
                        and loop.time() - connected_at
                        >= self._stable_after
                    ):
                        backoff = self._retry_min
            except (OSError, ConnectionError):
                pass  # the peer went away; reconnect below
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (OSError, ConnectionError):
                    pass
            if self._closed:
                return
            if loop.time() - connected_at >= self._stable_after:
                backoff = self._retry_min
            else:
                # The connection died young (crash-looping peer,
                # half-open listener): keep backing off so the redial
                # rate stays bounded.
                await asyncio.sleep(
                    backoff * (1.0 + self._jitter.random())
                )
                backoff = min(backoff * 2, self._retry_max)

    async def close(self):
        self._closed = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            except Exception as exc:
                # A real teardown error must surface, not vanish into a
                # dead except arm (CancelledError is a BaseException).
                if self._on_error is not None:
                    self._on_error(exc)
                else:
                    raise


class Listener:
    """The accept side: one TCP server feeding decoded frames upward.

    ``on_frame(src, msg)`` is invoked on the event loop for every frame
    after the connection's :class:`Hello`.  Protocol violations -- a
    malformed frame, a missing handshake, a frame whose envelope names a
    different sender than the handshake -- drop that one connection and
    never propagate; an exception *from the callback* also only kills
    the offending connection, after being reported through
    ``on_error(exc)``.
    """

    def __init__(self, on_frame, host="127.0.0.1", port=0, on_error=None,
                 on_bytes=None):
        self._on_frame = on_frame
        self._on_error = on_error
        self._on_bytes = on_bytes
        self.host = host
        self.port = port
        self._server = None
        self._writers = set()
        self.accepted = 0
        self.rejected = 0
        self.bytes_in = 0

    async def start(self):
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def _handle(self, reader, writer):
        self.accepted += 1
        self._writers.add(writer)
        decoder = FrameDecoder()
        src = None
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    return
                self.bytes_in += len(data)
                if self._on_bytes is not None:
                    self._on_bytes(len(data))
                try:
                    frames = decoder.feed(data)
                except CodecError:
                    self.rejected += 1
                    return
                for envelope in frames:
                    if not (
                        isinstance(envelope, tuple)
                        and len(envelope) == 2
                        and isinstance(envelope[0], str)
                    ):
                        self.rejected += 1
                        return
                    sender, msg = envelope
                    if src is None:
                        if not isinstance(msg, Hello) or msg.pid != sender:
                            self.rejected += 1
                            return
                        src = sender
                    if sender != src:
                        self.rejected += 1
                        return
                    try:
                        self._on_frame(src, msg)
                    except Exception as exc:
                        if self._on_error is not None:
                            self._on_error(exc)
                        return
        except asyncio.CancelledError:
            # Event-loop shutdown while blocked in read: finish the
            # task normally so asyncio's stream protocol callback does
            # not log a spurious traceback at interpreter teardown.
            return
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, OSError, ConnectionError):
                pass

    async def close(self):
        """Stop accepting *and* drop every established connection --
        ``Server.close`` alone leaves accepted sockets alive, which
        would let a peer keep writing to a dead node forever without
        ever noticing it should redial."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._writers):
            writer.close()
