"""Workloads, metrics and reporting for the quantitative experiments.

- :mod:`repro.analysis.scenarios` -- connectivity-history generators
  (random partitions over a fixed population; drifting populations with
  permanent departures and fresh joins);
- :mod:`repro.analysis.availability` -- running primary trackers over a
  scenario and collecting availability / safety metrics (experiment E6);
- :mod:`repro.analysis.report` -- plain-text table rendering used by the
  benchmark harnesses to print paper-style result tables.
"""

from repro.analysis.availability import (
    AvailabilityResult,
    compare_trackers,
    run_tracker,
)
from repro.analysis.execution_stats import (
    RunStats,
    action_mix,
    delivery_completeness,
    delivery_latencies,
    summarize_trace,
    view_lifecycles,
)
from repro.analysis.report import render_table
from repro.analysis.sweeps import (
    SweepPoint,
    ascii_series,
    crossover_point,
    sweep_drift_rate,
    sweep_register_lag,
)
from repro.analysis.scenarios import (
    drifting_population,
    random_churn,
    split_merge_cycle,
)

__all__ = [
    "AvailabilityResult",
    "RunStats",
    "SweepPoint",
    "ascii_series",
    "crossover_point",
    "sweep_drift_rate",
    "sweep_register_lag",
    "action_mix",
    "delivery_completeness",
    "delivery_latencies",
    "summarize_trace",
    "view_lifecycles",
    "compare_trackers",
    "drifting_population",
    "random_churn",
    "render_table",
    "run_tracker",
    "split_merge_cycle",
]
