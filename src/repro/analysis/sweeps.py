"""Parameter sweeps: availability as a function of churn parameters.

E6's tables compare rules at fixed parameters; the sweeps trace the whole
curve -- where the static and dynamic rules cross over as the population
drifts faster, and how registration lag prices availability.  These are
the figure-shaped results of the reproduction.
"""

from dataclasses import dataclass

from repro.analysis.availability import run_tracker
from repro.analysis.scenarios import drifting_population, random_churn
from repro.membership.trackers import (
    DynamicVotingTracker,
    StaticMajorityTracker,
)


@dataclass
class SweepPoint:
    """One sweep sample: parameter value and per-rule availability."""

    parameter: float
    static: float
    dynamic: float

    def row(self):
        return [
            "{0:.3f}".format(self.parameter),
            "{0:.3f}".format(self.static),
            "{0:.3f}".format(self.dynamic),
        ]


def sweep_drift_rate(
    universe,
    leave_probs,
    steps=400,
    seed=0,
    join_ratio=0.75,
    repeats=3,
):
    """Availability vs. departure rate, averaged over ``repeats`` seeds.

    ``join_ratio`` scales the join probability relative to the leave
    probability (a shrinking-but-replenished population).
    """
    from repro.core.views import View
    from repro.core.viewids import ViewId

    v0 = View(ViewId(0, ""), frozenset(universe))
    points = []
    for leave_prob in leave_probs:
        static_total = 0.0
        dynamic_total = 0.0
        for r in range(repeats):
            scenario = drifting_population(
                universe,
                steps,
                seed=seed + r * 101,
                leave_prob=leave_prob,
                join_prob=leave_prob * join_ratio,
            )
            static_total += run_tracker(
                "static", StaticMajorityTracker(v0), scenario
            ).availability
            dynamic_total += run_tracker(
                "dynamic", DynamicVotingTracker(v0), scenario
            ).availability
        points.append(
            SweepPoint(
                parameter=leave_prob,
                static=static_total / repeats,
                dynamic=dynamic_total / repeats,
            )
        )
    return points


def sweep_register_lag(
    universe, lags, steps=400, seed=0, partition_prob=0.5, repeats=3
):
    """Availability vs. registration lag, on a fixed population.

    Quantifies the cost of slow state exchange: until a primary is
    registered, it stays ambiguous and constrains its successors.
    The "static" column is the lag-independent baseline.
    """
    from repro.core.views import View
    from repro.core.viewids import ViewId

    v0 = View(ViewId(0, ""), frozenset(universe))
    points = []
    for lag in lags:
        static_total = 0.0
        dynamic_total = 0.0
        for r in range(repeats):
            scenario = random_churn(
                universe,
                steps,
                seed=seed + r * 31,
                partition_prob=partition_prob,
            )
            static_total += run_tracker(
                "static", StaticMajorityTracker(v0), scenario
            ).availability
            dynamic_total += run_tracker(
                "dynamic",
                DynamicVotingTracker(v0, register_lag=lag),
                scenario,
            ).availability
        points.append(
            SweepPoint(
                parameter=float(lag),
                static=static_total / repeats,
                dynamic=dynamic_total / repeats,
            )
        )
    return points


def crossover_point(points):
    """The first parameter value at which dynamic availability exceeds
    static, or None if it never does."""
    for point in points:
        if point.dynamic > point.static:
            return point.parameter
    return None


def ascii_series(points, width=40):
    """A tiny ASCII plot of a sweep (two series), for terminal output."""
    lines = []
    for point in points:
        static_bar = int(point.static * width)
        dynamic_bar = int(point.dynamic * width)
        lines.append(
            "{0:>7.3f}  S|{1:<{w}}| {2:.2f}".format(
                point.parameter, "#" * static_bar, point.static, w=width
            )
        )
        lines.append(
            "         D|{0:<{w}}| {1:.2f}".format(
                "#" * dynamic_bar, point.dynamic, w=width
            )
        )
    return "\n".join(lines)
