"""Statistics over executions and traces.

Used by the benchmark harness and the examples to report what a run
actually did: action mixes, view lifecycle (proposed/attempted/registered),
per-view delivery counts, and time-to-primary measurements for the runtime
cluster.
"""

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class ViewLifecycle:
    """What happened to one view across a run."""

    view: object
    reported_to: set = field(default_factory=set)
    registered_by: set = field(default_factory=set)
    deliveries: int = 0

    @property
    def totally_attempted(self):
        return self.view.set <= self.reported_to

    @property
    def totally_registered(self):
        return self.view.set <= self.registered_by


def action_mix(actions):
    """Counter of action names."""
    return Counter(a.name for a in actions)


def view_lifecycles(trace, initial_view, prefix="dvs"):
    """Per-view lifecycle extracted from a service trace."""
    lifecycles = {initial_view: ViewLifecycle(initial_view)}
    lifecycles[initial_view].reported_to = set(initial_view.set)
    lifecycles[initial_view].registered_by = set(initial_view.set)
    current = {p: initial_view for p in initial_view.set}
    for action in trace:
        if action.name == prefix + "_newview":
            view, p = action.params
            lifecycles.setdefault(view, ViewLifecycle(view))
            lifecycles[view].reported_to.add(p)
            current[p] = view
        elif action.name == prefix + "_register":
            (p,) = action.params
            view = current.get(p)
            if view is not None:
                lifecycles[view].registered_by.add(p)
        elif action.name == prefix + "_gprcv":
            _, _, p = action.params
            view = current.get(p)
            if view is not None:
                lifecycles[view].deliveries += 1
    return lifecycles


@dataclass
class RunStats:
    """Aggregated statistics of a service trace."""

    actions: Dict[str, int]
    views_reported: int
    views_totally_attempted: int
    views_totally_registered: int
    deliveries: int
    safes: int

    def rows(self):
        return [
            ["actions", sum(self.actions.values())],
            ["views reported", self.views_reported],
            ["views totally attempted", self.views_totally_attempted],
            ["views totally registered", self.views_totally_registered],
            ["client deliveries", self.deliveries],
            ["safe indications", self.safes],
        ]


def summarize_trace(trace, initial_view, prefix="dvs"):
    """Build :class:`RunStats` from a service trace."""
    mix = action_mix(trace)
    lifecycles = view_lifecycles(trace, initial_view, prefix)
    reported = [
        lc for lc in lifecycles.values() if lc.reported_to
    ]
    return RunStats(
        actions=dict(mix),
        views_reported=len(reported),
        views_totally_attempted=sum(
            1 for lc in reported if lc.totally_attempted
        ),
        views_totally_registered=sum(
            1 for lc in reported if lc.totally_registered
        ),
        deliveries=mix.get(prefix + "_gprcv", 0),
        safes=mix.get(prefix + "_safe", 0),
    )


def delivery_latencies(cluster):
    """Simulated-time broadcast-to-delivery latencies from a cluster log.

    Pairs each ``bcast`` with the ``brcv`` of the same payload at each
    process using the action log's timestamps.  Returns a list of
    ``(payload, process, latency)`` tuples; requires distinct payloads.
    """
    send_times = {}
    latencies = []
    for time, action in cluster.log.timed_actions():
        if action.name == "bcast":
            send_times.setdefault(action.params[0], time)
        elif action.name == "brcv":
            payload, _, pid = action.params
            if payload in send_times:
                latencies.append(
                    (payload, pid, time - send_times[payload])
                )
    return latencies


def delivery_completeness(cluster):
    """Fraction of (broadcast, process) pairs delivered by end of run."""
    delivered = defaultdict(set)
    broadcasts = set()
    for action in cluster.log.actions:
        if action.name == "bcast":
            broadcasts.add(action.params[0])
        elif action.name == "brcv":
            delivered[action.params[2]].add(action.params[0])
    total = len(broadcasts) * len(cluster.processes)
    if total == 0:
        return 1.0
    done = sum(
        1
        for payload in broadcasts
        for pid in cluster.processes
        if payload in delivered[pid]
    )
    return done / total
