"""Connectivity-history generators.

A *scenario* is a list of configurations; a configuration is a list of
disjoint frozensets partitioning the processes alive at that step.  The
generators are deterministic in their seed.
"""

import random


def _random_partition(rng, alive, max_groups):
    """Partition ``alive`` into 1..max_groups nonempty random groups."""
    alive = sorted(alive)
    if not alive:
        return []
    groups_count = rng.randint(1, min(max_groups, len(alive)))
    groups = [set() for _ in range(groups_count)]
    shuffled = alive[:]
    rng.shuffle(shuffled)
    # Guarantee nonempty groups, then scatter the rest.
    for index in range(groups_count):
        groups[index].add(shuffled[index])
    for pid in shuffled[groups_count:]:
        groups[rng.randrange(groups_count)].add(pid)
    return [frozenset(g) for g in groups]


def random_churn(universe, steps, seed=0, partition_prob=0.4, max_groups=3):
    """Random partitions and merges over a fixed population.

    With probability ``partition_prob`` a step repartitions the universe;
    otherwise the whole universe is one component.
    """
    rng = random.Random(seed)
    universe = sorted(universe)
    scenario = []
    for _ in range(steps):
        if rng.random() < partition_prob:
            scenario.append(_random_partition(rng, universe, max_groups))
        else:
            scenario.append([frozenset(universe)])
    return scenario


def drifting_population(
    initial,
    steps,
    seed=0,
    leave_prob=0.03,
    join_prob=0.02,
    partition_prob=0.3,
    max_groups=3,
    min_alive=3,
):
    """A population that evolves: permanent departures and fresh joins.

    This is the regime the paper motivates dynamic primaries for
    (Section 1: "for high availability in a system where processes can
    join and leave routinely").  Departed processes never return; joined
    processes get fresh identifiers.  The alive set never drops below
    ``min_alive``.
    """
    rng = random.Random(seed)
    alive = sorted(initial)
    fresh_counter = 0
    scenario = []
    for _ in range(steps):
        # Drift.
        for pid in list(alive):
            if len(alive) > min_alive and rng.random() < leave_prob:
                alive.remove(pid)
        if rng.random() < join_prob:
            fresh_counter += 1
            alive.append("q{0}".format(fresh_counter))
            alive.sort()
        # Connectivity.
        if rng.random() < partition_prob:
            scenario.append(_random_partition(rng, alive, max_groups))
        else:
            scenario.append([frozenset(alive)])
    return scenario


def split_merge_cycle(universe, cycles, splits=None):
    """A deterministic scenario: repeatedly split into fixed halves, merge.

    ``splits`` defaults to halving the (sorted) universe.  Useful for
    tests and for the paper-style walk-through examples.
    """
    universe = sorted(universe)
    if splits is None:
        mid = len(universe) // 2
        splits = [universe[:mid], universe[mid:]]
    splits = [frozenset(s) for s in splits if s]
    scenario = []
    for _ in range(cycles):
        scenario.append(list(splits))
        scenario.append([frozenset(universe)])
    return scenario
