"""Plain-text table rendering for benchmark and experiment output."""


def render_table(headers, rows, title=None):
    """Render an aligned ASCII table; returns the string."""
    headers = [str(h) for h in headers]
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells):
        return "  ".join(
            cell.ljust(widths[index]) for index, cell in enumerate(cells)
        ).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in rows)
    return "\n".join(parts)
