"""Running primary trackers over connectivity scenarios (experiment E6)."""

from dataclasses import dataclass


@dataclass
class AvailabilityResult:
    """Summary of one tracker over one scenario."""

    name: str
    steps: int
    steps_with_primary: int
    primaries_formed: int
    disjoint_incidents: int

    @property
    def availability(self):
        return self.steps_with_primary / self.steps if self.steps else 0.0

    def row(self):
        return [
            self.name,
            "{0:.3f}".format(self.availability),
            str(self.primaries_formed),
            str(self.disjoint_incidents),
        ]


def run_tracker(name, tracker, scenario):
    """Feed every configuration of ``scenario`` to ``tracker``."""
    formed = 0
    for configuration in scenario:
        formed += len(tracker.observe(configuration))
    return AvailabilityResult(
        name=name,
        steps=len(scenario),
        steps_with_primary=tracker.steps_with_primary,
        primaries_formed=formed,
        disjoint_incidents=tracker.disjoint_primary_incidents(),
    )


def compare_trackers(named_trackers, scenario):
    """Run several trackers over the *same* scenario; return results.

    ``named_trackers`` is an iterable of (name, tracker) pairs.  Trackers
    are stateful and single-use; build fresh ones per comparison.
    """
    return [
        run_tracker(name, tracker, scenario)
        for name, tracker in named_trackers
    ]
