"""Automaton states and canonical fingerprints.

States are mutable attribute containers.  Transitions never mutate the
current state: :meth:`repro.ioa.automaton.Automaton.apply` deep-copies the
state and runs the effect on the copy.  Model checking and refinement
checking compare states through :func:`fingerprint`, a canonical recursive
freeze of the state's attributes (dicts sorted by key, sets sorted, lists
turned into tuples).
"""

import copy
from dataclasses import fields, is_dataclass


class State:
    """A mutable bag of named attributes with value-style equality.

    Subclasses (or plain instances) hold automaton variables as attributes.
    Equality and hashing go through :func:`fingerprint`, so two states with
    equal contents compare equal even when their containers differ in order
    (e.g. sets, dict insertion order).
    """

    def __init__(self, **attrs):
        for key, value in attrs.items():
            setattr(self, key, value)

    def copy(self):
        """Return a deep copy, safe to mutate without affecting ``self``."""
        return copy.deepcopy(self)

    def attributes(self):
        """The state variables as a plain dict."""
        return dict(self.__dict__)

    def fingerprint(self):
        return fingerprint(self.__dict__)

    def __eq__(self, other):
        if not isinstance(other, State):
            return NotImplemented
        return self.fingerprint() == other.fingerprint()

    def __hash__(self):
        return hash(self.fingerprint())

    def __repr__(self):
        items = ", ".join(
            "{0}={1!r}".format(k, v) for k, v in sorted(self.__dict__.items())
        )
        return "{0}({1})".format(type(self).__name__, items)


def fingerprint(value):
    """Canonical hashable encoding of ``value``.

    Handles the containers used throughout the reproduction: dicts, sets,
    frozensets, lists, tuples, dataclasses, :class:`State` and scalars.
    Dict entries and set elements are sorted by the repr of their own
    fingerprints, which yields a total order even over heterogeneous keys.
    """
    if isinstance(value, State):
        return ("state", type(value).__name__, fingerprint(value.__dict__))
    custom = getattr(value, "fingerprint", None)
    if custom is not None and callable(custom) and not isinstance(value, type):
        return custom()
    if isinstance(value, dict):
        items = [(fingerprint(k), fingerprint(v)) for k, v in value.items()]
        items.sort(key=lambda kv: repr(kv[0]))
        return ("dict", tuple(items))
    if isinstance(value, (set, frozenset)):
        elements = sorted((fingerprint(v) for v in value), key=repr)
        return ("set", tuple(elements))
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(fingerprint(v) for v in value))
    if is_dataclass(value) and not isinstance(value, type):
        if getattr(value, "__hash__", None) is not None:
            return value
        pairs = tuple(
            (f.name, fingerprint(getattr(value, f.name)))
            for f in fields(value)
        )
        return ("dc", type(value).__name__, pairs)
    return value
