"""Transition metadata for precondition/effect automata.

:class:`~repro.ioa.automaton.TransitionAutomaton` subclasses carry
their whole protocol in source form: the signature names the actions,
``pre_`` methods read the state fields that gate each action and
``eff_`` methods write the fields the action updates.  This module
makes that structure available as data -- to the static analyzer
(``repro lint``'s spec-conformance passes project the automata into
checkable protocols) and to runtime introspection.

Two layers:

- pure-AST extractors (:func:`state_reads`, :func:`state_writes`,
  :func:`is_none_guarded`) that work on ``ast.FunctionDef`` nodes, so
  the linter can reuse them without importing the automata; and
- :func:`automaton_metadata`, which introspects a live automaton class
  (via ``inspect.getsource``) and returns one
  :class:`TransitionInfo` per action in the signature.

The ``none_guarded`` flag captures the spec idiom that makes an input
action a silent no-op outside its enabling state -- e.g.
``DVSSpec.eff_dvs_gpsnd``::

    g = state.current_viewid.get(p)
    if g is not None:
        state.pending.at((p, g)).append(m)

Every write to the state is dominated by an ``is (not) None`` test, so
performing the action while the enabling field is unset drops it on
the floor.  Implementations layered over such a spec must therefore
guard the corresponding downcall -- which is exactly what rule DVS022
checks.
"""

import ast
import inspect
import textwrap
from dataclasses import dataclass

#: Action kinds, as strings (decoupled from :class:`repro.ioa.action.Kind`
#: so AST-only consumers need no runtime imports).
KINDS = ("input", "output", "internal")

#: The handler prefixes of the TransitionAutomaton dispatch contract.
PRE_PREFIX = "pre_"
EFF_PREFIX = "eff_"


@dataclass(frozen=True)
class TransitionInfo:
    """Statically extracted facts about one action of one automaton."""

    action: str
    kind: str
    #: Whether a ``pre_`` method exists (absent means always enabled).
    guarded: bool
    #: State fields the precondition reads.
    pre_reads: tuple
    #: State fields the effect writes or mutates.
    eff_writes: tuple
    #: Whether every state write in the effect is dominated by an
    #: ``is (not) None`` test -- the "silent no-op outside the enabling
    #: state" idiom.
    none_guarded: bool


@dataclass(frozen=True)
class AutomatonInfo:
    """The full transition table of one automaton class."""

    name: str
    inputs: frozenset
    outputs: frozenset
    internals: frozenset
    #: Action name -> :class:`TransitionInfo`.
    transitions: dict

    @property
    def externals(self):
        return self.inputs | self.outputs

    def none_guarded_actions(self):
        """Actions whose effect silently no-ops outside the enabling
        state, in name order."""
        return tuple(sorted(
            name for name, info in self.transitions.items()
            if info.none_guarded
        ))


def _state_param(func):
    """The name of the state parameter of a handler (the first
    parameter after ``self``), or ``None`` for malformed handlers."""
    args = func.args.posonlyargs + func.args.args
    if len(args) < 2:
        return None
    return args[1].arg


def state_reads(func, state=None):
    """State fields read by ``func`` (attribute loads off the state
    parameter), in first-seen order."""
    state = state or _state_param(func)
    if state is None:
        return ()
    seen = []
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Name)
            and node.value.id == state
            and node.attr not in seen
        ):
            seen.append(node.attr)
    return tuple(seen)


def _write_target_field(node, state):
    """The state field a store/mutation target touches, or ``None``.

    ``state.x = v`` and ``state.x[k] = v`` and ``state.x.y = v`` all
    touch field ``x``; deeper subscripts fold to the first hop.
    """
    first = None
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            first = node.attr
        node = node.value
    if isinstance(node, ast.Name) and node.id == state:
        return first
    return None


#: Container methods that only read; calling one through a state field
#: is not a mutation (``state.current_viewid.get(p)`` is the canonical
#: enabling-state *read* of the none-guard idiom).
_READ_METHODS = frozenset({
    "get", "keys", "values", "items", "copy", "index", "count",
    "issubset", "issuperset", "union", "intersection", "difference",
})


def _state_write_nodes(func, state):
    """``(field, ast node)`` pairs for every write/mutation of a state
    field inside ``func``, including mutator-method calls like
    ``state.created.add(v)`` (read-only accessors are exempt)."""
    writes = []
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                elts = (
                    target.elts
                    if isinstance(target, (ast.Tuple, ast.List))
                    else [target]
                )
                for elt in elts:
                    field = _write_target_field(elt, state)
                    if field is not None:
                        writes.append((field, node))
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in _READ_METHODS:
                continue
            field = _write_target_field(node.func.value, state)
            if field is not None:
                writes.append((field, node))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                field = _write_target_field(target, state)
                if field is not None:
                    writes.append((field, node))
    return writes


def state_writes(func, state=None):
    """State fields written or mutated by ``func``, in first-seen
    order (a method call through a state field counts: the effect
    style mutates containers in place)."""
    state = state or _state_param(func)
    if state is None:
        return ()
    seen = []
    for field, _ in _state_write_nodes(func, state):
        if field not in seen:
            seen.append(field)
    return tuple(seen)


def _is_none_test(test):
    """Whether ``test`` is a single ``X is None`` / ``X is not None``
    comparison."""
    return (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], (ast.Is, ast.IsNot))
        and any(
            isinstance(side, ast.Constant) and side.value is None
            for side in (test.left, test.comparators[0])
        )
    )


def _terminates(body):
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue)
    )


def is_none_guarded(func, state=None):
    """Whether every state write in ``func`` is dominated by an
    ``is (not) None`` test.

    Two dominating shapes are recognised: a write nested (at any
    depth) inside an ``if <none-test>:`` branch, and an early bail-out
    ``if <none-test>: return`` earlier in the enclosing suite.
    Functions that never write state are not none-guarded (there is
    nothing to drop).
    """
    state = state or _state_param(func)
    if state is None:
        return False
    writes = _state_write_nodes(func, state)
    if not writes:
        return False
    parents = {}
    for node in ast.walk(func):
        for child in ast.iter_child_nodes(node):
            parents[child] = node

    def enclosing_stmt(node):
        while node is not None and not isinstance(node, ast.stmt):
            node = parents.get(node)
        return node

    def dominated(node):
        # Shape 1: an ancestor ``if`` with a None test.
        probe = node
        while probe is not None and probe is not func:
            parent = parents.get(probe)
            if isinstance(parent, ast.If) and _is_none_test(parent.test):
                return True
            probe = parent
        # Shape 2: a preceding ``if <none-test>: return`` in any
        # enclosing suite.
        probe = enclosing_stmt(node)
        while probe is not None and probe is not func:
            parent = parents.get(probe)
            body = getattr(parent, "body", None)
            if isinstance(body, list) and probe in body:
                for earlier in body[: body.index(probe)]:
                    if (
                        isinstance(earlier, ast.If)
                        and _is_none_test(earlier.test)
                        and _terminates(earlier.body)
                    ):
                        return True
            probe = enclosing_stmt(parents.get(probe))
        return False

    return all(dominated(node) for _, node in writes)


def _handler_ast(method):
    """Parse a bound/unbound handler back to its ``FunctionDef``."""
    try:
        source = textwrap.dedent(inspect.getsource(method))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError):
        return None
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
    return None


def transition_info(action, kind, pre_func=None, eff_func=None):
    """Build a :class:`TransitionInfo` from handler ASTs (either may
    be ``None``)."""
    pre_reads = state_reads(pre_func) if pre_func is not None else ()
    eff_writes = state_writes(eff_func) if eff_func is not None else ()
    none_guarded = (
        is_none_guarded(eff_func) if eff_func is not None else False
    )
    return TransitionInfo(
        action=action,
        kind=kind,
        guarded=pre_func is not None,
        pre_reads=pre_reads,
        eff_writes=eff_writes,
        none_guarded=none_guarded,
    )


def automaton_metadata(automaton_cls):
    """The :class:`AutomatonInfo` of a live
    :class:`~repro.ioa.automaton.TransitionAutomaton` subclass,
    extracted by source introspection (MRO-resolved, so inherited
    handlers count)."""
    inputs = frozenset(automaton_cls.inputs)
    outputs = frozenset(automaton_cls.outputs)
    internals = frozenset(automaton_cls.internals)
    transitions = {}
    for kind, names in (
        ("input", inputs), ("output", outputs), ("internal", internals),
    ):
        for name in sorted(names):
            pre = getattr(automaton_cls, PRE_PREFIX + name, None)
            eff = getattr(automaton_cls, EFF_PREFIX + name, None)
            transitions[name] = transition_info(
                name,
                kind,
                pre_func=_handler_ast(pre) if pre is not None else None,
                eff_func=_handler_ast(eff) if eff is not None else None,
            )
    return AutomatonInfo(
        name=automaton_cls.__name__,
        inputs=inputs,
        outputs=outputs,
        internals=internals,
        transitions=transitions,
    )
