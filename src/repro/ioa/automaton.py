"""The I/O automaton base classes.

Two levels are provided:

- :class:`Automaton`: the abstract interface -- a signature, an initial
  state, an enabling predicate, a transition function and an enumerator of
  locally controlled candidate actions.
- :class:`TransitionAutomaton`: a convenience base that dispatches actions
  by name to ``pre_<name>`` / ``eff_<name>`` methods and enumerates
  candidates from ``cand_<name>`` generators, mirroring the
  precondition/effect style of the paper's figures.
"""

from abc import ABC, abstractmethod

from repro.ioa.action import Kind
from repro.ioa.errors import ActionNotEnabled, UnknownAction


class Automaton(ABC):
    """An I/O automaton without fairness (as in the paper, Section 2)."""

    #: Human-readable name, used in composition and error messages.
    name = "automaton"

    @abstractmethod
    def initial_state(self):
        """Return the (unique) initial state."""

    @abstractmethod
    def action_kind(self, action):
        """Classify ``action``: a :class:`Kind`, or ``None`` if not in the
        signature."""

    @abstractmethod
    def is_enabled(self, state, action):
        """Whether ``action`` may be performed from ``state``.

        Input actions are always enabled (input-enabledness); output and
        internal actions are enabled iff their precondition holds.
        """

    @abstractmethod
    def transition(self, state, action):
        """Mutate ``state`` in place according to the effect of ``action``.

        Callers normally use :meth:`apply`, which copies first.
        """

    @abstractmethod
    def controlled_candidates(self, state):
        """Yield locally controlled (output/internal) actions that are
        enabled in ``state``.

        The enumeration must be complete enough for the intended analyses:
        every action the analyses need to explore must eventually be
        yielded.  Enumerations may over-approximate; callers re-check
        :meth:`is_enabled`.
        """

    # -- Derived helpers ---------------------------------------------------

    def apply(self, state, action):
        """Return the state after performing ``action`` from ``state``.

        Raises :class:`UnknownAction` if the action is not in the signature
        and :class:`ActionNotEnabled` if a locally controlled action's
        precondition fails.
        """
        kind = self.action_kind(action)
        if kind is None:
            raise UnknownAction(
                "{0} has no action {1}".format(self.name, action)
            )
        if kind is not Kind.INPUT and not self.is_enabled(state, action):
            raise ActionNotEnabled(
                "{0}: {1} not enabled".format(self.name, action)
            )
        successor = state.copy()
        self.transition(successor, action)
        return successor

    def is_external(self, action):
        kind = self.action_kind(action)
        return kind is not None and kind.is_external

    def enabled_controlled(self, state):
        """List the enabled locally controlled actions (deduplicated)."""
        seen = set()
        result = []
        for action in self.controlled_candidates(state):
            if action in seen:
                continue
            seen.add(action)
            if self.is_enabled(state, action):
                result.append(action)
        return result


class TransitionAutomaton(Automaton):
    """Precondition/effect automata in the style of the paper's figures.

    Subclasses declare the signature as three class-level sets of action
    *names*::

        inputs = {"dvs_gpsnd", "dvs_register"}
        outputs = {"dvs_gprcv", "dvs_safe", "dvs_newview"}
        internals = {"dvs_createview", "dvs_order"}

    and implement, for each locally controlled action name, an optional
    precondition ``pre_<name>(state, *params) -> bool`` (absent means
    ``True``), an effect ``eff_<name>(state, *params)`` mutating ``state``,
    and a candidate generator ``cand_<name>(state)`` yielding
    :class:`~repro.ioa.action.Action` instances.  Input actions only need an
    effect.
    """

    inputs = frozenset()
    outputs = frozenset()
    internals = frozenset()

    #: Set True by per-process automata whose signatures are carved up by
    #: action *parameters* (e.g. ``dvs_newview(v, p)`` belongs to the
    #: automaton at p only).  Relaxes the name-level compatibility check in
    #: compositions; instance-level compatibility is enforced at apply time.
    parameterized_signature = False

    def participates(self, action):
        """Whether this instance's signature contains this specific action.

        Per-process automata override this to claim only the actions whose
        process-index parameter matches their own id.
        """
        return True

    def action_kind(self, action):
        if not self.participates(action):
            return None
        if action.name in self.inputs:
            return Kind.INPUT
        if action.name in self.outputs:
            return Kind.OUTPUT
        if action.name in self.internals:
            return Kind.INTERNAL
        return None

    def is_enabled(self, state, action):
        kind = self.action_kind(action)
        if kind is None:
            return False
        if kind is Kind.INPUT:
            return True
        pre = getattr(self, "pre_" + action.name, None)
        if pre is None:
            return True
        return bool(pre(state, *action.params))

    def transition(self, state, action):
        if self.action_kind(action) is None:
            raise UnknownAction(
                "{0} has no action {1}".format(self.name, action)
            )
        eff = getattr(self, "eff_" + action.name, None)
        if eff is not None:
            eff(state, *action.params)

    def controlled_candidates(self, state):
        for name in sorted(self.outputs | self.internals):
            generator = getattr(self, "cand_" + name, None)
            if generator is None:
                continue
            for action in generator(state):
                yield action
