"""Mechanized refinement (single-valued simulation) checking.

The paper proves Theorem 5.9 (DVS-IMPL implements DVS) by exhibiting a
function F from implementation states to specification states and showing
(Lemmas 5.7, 5.8) that

1. F maps initial states to initial states, and
2. for every step ``(s, pi, s')`` of the implementation there is an
   execution fragment ``alpha`` of the specification from ``F(s)`` to
   ``F(s')`` with ``trace(alpha) = trace(pi)``.

:class:`RefinementChecker` performs exactly this check, mechanically, along
concrete executions: for each step it searches for a matching specification
fragment.  The search first tries caller-supplied *hints* (the fragments the
paper's proof constructs, e.g. ``CREATEVIEW(v)`` followed by
``NEWVIEW(v)_p``), then falls back to a bounded breadth-first search over
the specification's enabled actions.
"""

from collections import deque

from repro.ioa.errors import ActionNotEnabled, RefinementFailure, UnknownAction


class RefinementChecker:
    """Check that ``mapping`` is a refinement from ``impl`` to ``spec``.

    Parameters
    ----------
    impl, spec:
        The implementation and specification automata.  ``spec`` is treated
        as open: its input actions are always enabled.
    mapping:
        Function from implementation states to specification states (the
        paper's F, Figure 4).
    hints:
        Optional ``hints(step, abstract_state) -> iterable of action
        sequences``; each sequence is tried verbatim before the generic
        search.  Hints encode the constructive part of the paper's proof.
    max_depth:
        Bound on the fragment length explored by the fallback search.
    """

    def __init__(self, impl, spec, mapping, hints=None, max_depth=3):
        self.impl = impl
        self.spec = spec
        self.mapping = mapping
        self.hints = hints
        self.max_depth = max_depth

    # -- Condition 1: initial states ---------------------------------------

    def check_initial(self, impl_initial=None):
        """F maps the implementation's initial state to spec's (Lemma 5.7)."""
        state = (
            impl_initial
            if impl_initial is not None
            else self.impl.initial_state()
        )
        abstract = self.mapping(state)
        expected = self.spec.initial_state()
        if abstract.fingerprint() != expected.fingerprint():
            raise RefinementFailure(
                _PseudoStep("initial"),
                abstract,
                expected,
                "F(initial) differs from the specification's initial state",
            )
        return abstract

    # -- Condition 2: step correspondence -----------------------------------

    def check_step(self, step):
        """Find a spec fragment matching ``step`` (Lemma 5.8); return it.

        The fragment is returned as the list of specification actions.
        Raises :class:`RefinementFailure` when none exists within the
        search bound.
        """
        abstract_from = self.mapping(step.state)
        abstract_to = self.mapping(step.next_state)
        required = (
            [step.action] if self.spec.action_kind(step.action) is not None
            and self.spec.is_external(step.action) else []
        )

        if self.hints is not None:
            for candidate in self.hints(step, abstract_from):
                if self._fragment_matches(
                    abstract_from, candidate, abstract_to, required
                ):
                    return list(candidate)

        fragment = self._search(abstract_from, abstract_to, required)
        if fragment is None:
            raise RefinementFailure(
                step,
                abstract_from,
                abstract_to,
                "no fragment of depth <= {0} with trace {1}".format(
                    self.max_depth, [str(a) for a in required]
                ),
            )
        return fragment

    def check_execution(self, execution, on_step=None):
        """Check the whole execution; return total abstract actions used."""
        self.check_initial(execution.initial_state)
        total = 0
        for step in execution.steps:
            fragment = self.check_step(step)
            total += len(fragment)
            if on_step is not None:
                on_step(step, fragment)
        return total

    # -- Internals -----------------------------------------------------------

    def _try_apply(self, state, action):
        """Apply a spec action if possible; return the new state or None."""
        kind = self.spec.action_kind(action)
        if kind is None:
            return None
        try:
            return self.spec.apply(state, action)
        except (ActionNotEnabled, UnknownAction):
            return None

    def _fragment_matches(self, start, actions, goal, required):
        """Run ``actions`` from ``start``; succeed if the result equals
        ``goal`` and the external projection equals ``required``."""
        state = start
        externals = []
        for action in actions:
            state = self._try_apply(state, action)
            if state is None:
                return False
            if self.spec.is_external(action):
                externals.append(action)
        if externals != required:
            return False
        return state.fingerprint() == goal.fingerprint()

    def _search(self, start, goal, required):
        """Bounded BFS over spec fragments from ``start`` to ``goal``.

        Nodes are (state, externals-consumed).  Successor actions are the
        spec's enabled locally controlled actions plus (when not yet
        consumed) the single required external action.
        """
        goal_print = goal.fingerprint()
        start_node = (start, 0)
        if (
            start.fingerprint() == goal_print
            and not required
        ):
            return []
        queue = deque([(start_node, [])])
        visited = {(start.fingerprint(), 0)}
        while queue:
            (state, consumed), path = queue.popleft()
            if len(path) >= self.max_depth:
                continue
            candidates = list(self.spec.enabled_controlled(state))
            if consumed < len(required):
                candidates.append(required[consumed])
            for action in candidates:
                is_required = (
                    consumed < len(required)
                    and action == required[consumed]
                )
                if self.spec.is_external(action) and not is_required:
                    continue
                next_state = self._try_apply(state, action)
                if next_state is None:
                    continue
                next_consumed = consumed + (1 if is_required else 0)
                next_path = path + [action]
                if (
                    next_state.fingerprint() == goal_print
                    and next_consumed == len(required)
                ):
                    return next_path
                key = (next_state.fingerprint(), next_consumed)
                if key in visited:
                    continue
                visited.add(key)
                queue.append(((next_state, next_consumed), next_path))
        return None


class _PseudoStep:
    """Stand-in step for initial-state failures."""

    def __init__(self, label):
        self.action = label
        self.state = None
        self.next_state = None
