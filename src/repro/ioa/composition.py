"""Parallel composition and hiding of I/O automata.

Components synchronize on shared action names: when the composition performs
an action, every component whose signature contains the action performs it
simultaneously.  An action is an *output* of the composition if it is an
output of some component, an *input* if it is an input of some component and
an output of none, and *internal* if internal to some component.  Hiding
reclassifies selected output names as internal, exactly as the paper hides
the VS actions inside DVS-IMPL and the DVS actions inside TO-IMPL.
"""

from repro.ioa.action import Kind
from repro.ioa.automaton import Automaton
from repro.ioa.errors import ActionNotEnabled, CompositionError, UnknownAction
from repro.ioa.state import State


class CompositionState(State):
    """State of a composition: one sub-state per component, by name."""

    def __init__(self, parts):
        super().__init__(parts=parts)

    def part(self, component_name):
        """The sub-state of the named component."""
        return self.parts[component_name]

    def __getitem__(self, component_name):
        return self.parts[component_name]


class Composition(Automaton):
    """The composition of compatible I/O automata, with optional hiding."""

    def __init__(self, components, hidden=(), name="composition"):
        """``components``: iterable of automata with distinct ``name``s.

        ``hidden``: action *names* to reclassify from output to internal
        (the composition analogue of the paper's "with all the external
        actions of VS hidden").
        """
        self.name = name
        self.components = list(components)
        self._by_name = {}
        for component in self.components:
            if component.name in self._by_name:
                raise CompositionError(
                    "duplicate component name {0!r}".format(component.name)
                )
            self._by_name[component.name] = component
        self.hidden = frozenset(hidden)
        self._check_compatibility()

    def _check_compatibility(self):
        """Lynch-Tuttle compatibility.

        Checked at the level of action names for components with name-level
        signatures.  Components whose signature is carved up by action
        parameters (``parameterized_signature``) are exempt here; for them
        compatibility is enforced per action instance in
        :meth:`action_kind`.
        """
        plain = [
            c
            for c in self.components
            if not getattr(c, "parameterized_signature", False)
        ]
        outputs_seen = {}
        for component in plain:
            for action_name in component.outputs:
                if action_name in outputs_seen:
                    raise CompositionError(
                        "action {0!r} is an output of both {1!r} and "
                        "{2!r}".format(
                            action_name,
                            outputs_seen[action_name],
                            component.name,
                        )
                    )
                outputs_seen[action_name] = component.name
        for component in plain:
            for other in plain:
                if other is component:
                    continue
                shared = component.internals & (
                    other.inputs | other.outputs | other.internals
                )
                if shared:
                    raise CompositionError(
                        "internal actions {0} of {1!r} appear in the "
                        "signature of {2!r}".format(
                            sorted(shared), component.name, other.name
                        )
                    )

    def _classify(self, action):
        """Per-instance classification with compatibility enforcement."""
        owners = []
        participants = 0
        internal_owner = None
        for component in self.components:
            kind = component.action_kind(action)
            if kind is None:
                continue
            participants += 1
            if kind is Kind.OUTPUT:
                owners.append(component.name)
            elif kind is Kind.INTERNAL:
                internal_owner = component.name
        if len(owners) > 1:
            raise CompositionError(
                "action {0} is an output of {1}".format(action, owners)
            )
        if internal_owner is not None and participants > 1:
            raise CompositionError(
                "internal action {0} of {1!r} is shared".format(
                    action, internal_owner
                )
            )
        return participants, bool(owners), internal_owner is not None

    def component(self, component_name):
        return self._by_name[component_name]

    # -- Automaton interface ----------------------------------------------

    @property
    def inputs(self):
        names = set()
        outs = set()
        for component in self.components:
            names |= set(component.inputs)
            outs |= set(component.outputs)
        return frozenset(names - outs)

    @property
    def outputs(self):
        names = set()
        for component in self.components:
            names |= set(component.outputs)
        return frozenset(names - self.hidden)

    @property
    def internals(self):
        names = set(self.hidden)
        for component in self.components:
            names |= set(component.internals)
        return frozenset(names)

    def initial_state(self):
        return CompositionState(
            {c.name: c.initial_state() for c in self.components}
        )

    def action_kind(self, action):
        participants, has_output, has_internal = self._classify(action)
        if participants == 0:
            return None
        if action.name in self.hidden:
            return Kind.INTERNAL
        if has_output:
            return Kind.OUTPUT
        if has_internal:
            return Kind.INTERNAL
        return Kind.INPUT

    def is_enabled(self, state, action):
        """Enabled iff every participating component is willing.

        Components for which the action is an input are always willing; the
        (unique) component owning it as output/internal must satisfy its
        precondition.
        """
        found = False
        for component in self.components:
            kind = component.action_kind(action)
            if kind is None:
                continue
            found = True
            if kind is not Kind.INPUT:
                if not component.is_enabled(state.part(component.name), action):
                    return False
        return found

    def transition(self, state, action):
        found = False
        for component in self.components:
            if component.action_kind(action) is None:
                continue
            found = True
            component.transition(state.parts[component.name], action)
        if not found:
            raise UnknownAction(
                "{0} has no action {1}".format(self.name, action)
            )

    def apply(self, state, action):
        kind = self.action_kind(action)
        if kind is None:
            raise UnknownAction(
                "{0} has no action {1}".format(self.name, action)
            )
        if not self.is_enabled(state, action):
            if kind is Kind.INPUT:
                # Input of the whole composition: always enabled.
                pass
            else:
                raise ActionNotEnabled(
                    "{0}: {1} not enabled".format(self.name, action)
                )
        successor = state.copy()
        self.transition(successor, action)
        return successor

    def controlled_candidates(self, state):
        for component in self.components:
            for action in component.controlled_candidates(
                state.part(component.name)
            ):
                yield action

    def enabled_controlled(self, state):
        """Enabled locally controlled actions of the *whole* composition.

        A component's output may be blocked here only by that component's
        own precondition (inputs of others are always enabled), so checking
        against the composition is equivalent -- but we check globally for
        robustness against ill-formed components.
        """
        seen = set()
        result = []
        for action in self.controlled_candidates(state):
            if action in seen:
                continue
            seen.add(action)
            if self.is_enabled(state, action):
                result.append(action)
        return result
