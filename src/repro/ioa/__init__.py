"""Executable I/O automata (Lynch-Tuttle), the paper's formal substrate.

The paper describes all of its services and algorithms as I/O automata
(Section 2: "We describe our services and algorithms using the I/O automaton
model of Lynch and Tuttle (without fairness)").  This package provides an
executable version of that model:

- :class:`~repro.ioa.automaton.Automaton` -- automata with preconditions,
  effects and action signatures;
- :class:`~repro.ioa.composition.Composition` -- parallel composition that
  synchronizes on shared action names, plus hiding;
- :class:`~repro.ioa.execution.Execution` -- executions, steps and traces;
- :mod:`~repro.ioa.scheduler` -- nondeterministic schedulers that resolve
  the choice among enabled locally controlled actions;
- :mod:`~repro.ioa.invariants` -- invariant checking along executions;
- :mod:`~repro.ioa.refinement` -- mechanized single-valued simulation
  ("refinement") checking, i.e. the proof technique of Theorem 5.9;
- :mod:`~repro.ioa.model_check` -- bounded exhaustive exploration for small
  configurations.
"""

from repro.ioa.action import Action, Kind, act
from repro.ioa.automaton import Automaton, TransitionAutomaton
from repro.ioa.composition import Composition
from repro.ioa.errors import (
    ActionNotEnabled,
    CompositionError,
    InvariantViolation,
    RefinementFailure,
    UnknownAction,
)
from repro.ioa.execution import Execution, Step
from repro.ioa.invariants import InvariantSuite, check_invariants
from repro.ioa.metadata import (
    AutomatonInfo,
    TransitionInfo,
    automaton_metadata,
)
from repro.ioa.model_check import BoundedExplorer, ExplorationResult
from repro.ioa.refinement import RefinementChecker
from repro.ioa.renaming import Renamed
from repro.ioa.scheduler import (
    FairScheduler,
    RandomScheduler,
    run_fair,
    run_random,
)
from repro.ioa.state import State, fingerprint

__all__ = [
    "Action",
    "ActionNotEnabled",
    "Automaton",
    "AutomatonInfo",
    "BoundedExplorer",
    "Composition",
    "CompositionError",
    "Execution",
    "ExplorationResult",
    "InvariantSuite",
    "InvariantViolation",
    "Kind",
    "FairScheduler",
    "RandomScheduler",
    "Renamed",
    "RefinementChecker",
    "RefinementFailure",
    "State",
    "Step",
    "TransitionAutomaton",
    "TransitionInfo",
    "UnknownAction",
    "act",
    "automaton_metadata",
    "check_invariants",
    "fingerprint",
    "run_fair",
    "run_random",
]
