"""Bounded exhaustive exploration of closed automata.

For small universes (2-3 processes, 1-2 client messages, a handful of view
identifiers) the reachable state spaces of the paper's automata are small
enough to enumerate.  :class:`BoundedExplorer` performs breadth-first search
over canonical state fingerprints, checking an invariant suite at every
state, and optionally collecting statistics (diameter, counts by action).

This complements the randomized checking: randomized runs go deep on large
configurations, the explorer goes *complete* on small ones.
"""

from collections import deque
from dataclasses import dataclass, field
from typing import Dict

from repro.ioa.errors import InvariantViolation


@dataclass
class ExplorationResult:
    """Outcome of a bounded exploration."""

    states_visited: int = 0
    transitions: int = 0
    frontier_truncated: bool = False
    max_depth_reached: int = 0
    action_counts: Dict[str, int] = field(default_factory=dict)
    violation: object = None
    counterexample: object = None

    @property
    def complete(self):
        """Whether the whole reachable space was covered."""
        return not self.frontier_truncated

    def summary(self):
        return (
            "{0} states, {1} transitions, depth {2}, {3}".format(
                self.states_visited,
                self.transitions,
                self.max_depth_reached,
                "complete" if self.complete else "truncated",
            )
        )


class BoundedExplorer:
    """Breadth-first reachability with invariant checking.

    Parameters
    ----------
    automaton:
        A *closed* automaton (all behaviour locally controlled).
    invariants:
        Optional :class:`~repro.ioa.invariants.InvariantSuite`.
    max_states / max_depth:
        Exploration bounds; exceeding either sets ``frontier_truncated``.
    stop_on_violation:
        When True (default) a violated invariant aborts the search and is
        recorded, together with the path from the initial state, in
        ``violation`` / ``counterexample``.  When False the search raises.
    """

    def __init__(
        self,
        automaton,
        invariants=None,
        max_states=100000,
        max_depth=None,
        stop_on_violation=True,
    ):
        self.automaton = automaton
        self.invariants = invariants
        self.max_states = max_states
        self.max_depth = max_depth
        self.stop_on_violation = stop_on_violation

    def explore(self):
        result = ExplorationResult()
        initial = self.automaton.initial_state()
        if not self._check(initial, [], result):
            return result
        queue = deque([(initial, 0, [])])
        visited = {initial.fingerprint()}
        result.states_visited = 1
        while queue:
            state, depth, path = queue.popleft()
            result.max_depth_reached = max(result.max_depth_reached, depth)
            if self.max_depth is not None and depth >= self.max_depth:
                result.frontier_truncated = True
                continue
            for action in self.automaton.enabled_controlled(state):
                next_state = self.automaton.apply(state, action)
                result.transitions += 1
                result.action_counts[action.name] = (
                    result.action_counts.get(action.name, 0) + 1
                )
                key = next_state.fingerprint()
                if key in visited:
                    continue
                visited.add(key)
                next_path = path + [action]
                if not self._check(next_state, next_path, result):
                    return result
                result.states_visited += 1
                if result.states_visited >= self.max_states:
                    result.frontier_truncated = True
                    return result
                queue.append((next_state, depth + 1, next_path))
        return result

    def _check(self, state, path, result):
        """Check invariants; record or raise on violation.

        Returns False when exploration should stop.
        """
        if self.invariants is None:
            return True
        try:
            self.invariants.check_state(state)
        except InvariantViolation as violation:
            if not self.stop_on_violation:
                raise
            result.violation = violation
            result.counterexample = path
            return False
        return True
