"""Actions of I/O automata.

An action is a name together with a tuple of parameters, e.g. the paper's
``DVS-NEWVIEW(v)_p`` becomes ``Action("dvs_newview", (v, p))``.  Subscripted
process indices are passed as ordinary trailing parameters.  Names use
underscores (valid Python identifiers) instead of the paper's hyphens so that
:class:`~repro.ioa.automaton.TransitionAutomaton` can dispatch to methods
named ``pre_<name>`` / ``eff_<name>``.
"""

import enum
from dataclasses import dataclass
from typing import Tuple


class Kind(enum.Enum):
    """Classification of an action within an automaton's signature."""

    INPUT = "input"
    OUTPUT = "output"
    INTERNAL = "internal"

    @property
    def is_external(self):
        """Whether actions of this kind appear in traces."""
        return self is not Kind.INTERNAL


@dataclass(frozen=True)
class Action:
    """An action instance: a name plus hashable parameters."""

    name: str
    params: Tuple = ()

    def __str__(self):
        if not self.params:
            return self.name
        rendered = ", ".join(repr(p) for p in self.params)
        return "{0}({1})".format(self.name, rendered)

    def __repr__(self):
        return "Action({0})".format(self)


def act(name, *params):
    """Convenience constructor: ``act("dvs_newview", v, p)``."""
    return Action(name, tuple(params))
