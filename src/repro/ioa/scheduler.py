"""Schedulers: resolve the nondeterministic choice among enabled actions.

An I/O automaton has no built-in scheduling; an execution is produced by
repeatedly choosing one enabled locally controlled action.  For a *closed*
system (every input action is an output of some component, e.g. DVS-IMPL
composed with its environment automata) a scheduler fully determines the
run.  The schedulers here are deterministic functions of their seed, so all
experiments are reproducible.
"""

import random

from repro.ioa.execution import Execution


class RandomScheduler:
    """Uniformly random choice among enabled actions, with optional weights.

    ``weights`` maps action *names* to positive floats; unlisted names get
    weight 1.  Weighting lets adversarial drivers bias executions toward
    interesting interleavings (e.g. frequent view changes) without losing
    the ability to pick any enabled action.
    """

    def __init__(self, seed=0, weights=None):
        self.rng = random.Random(seed)
        self.weights = dict(weights or {})

    def choose(self, actions):
        """Pick one of ``actions`` (a non-empty list)."""
        if len(actions) == 1:
            return actions[0]
        weights = [self.weights.get(a.name, 1.0) for a in actions]
        return self.rng.choices(actions, weights=weights, k=1)[0]

    def run(self, automaton, max_steps, on_step=None):
        """Produce an execution of a closed ``automaton``.

        Runs until ``max_steps`` steps have been taken or no action is
        enabled (quiescence).  ``on_step`` is an optional callback
        ``on_step(step)`` invoked after every step -- used by invariant
        checkers to examine each reachable state as it appears.
        """
        execution = Execution(automaton, automaton.initial_state())
        for _ in range(max_steps):
            enabled = automaton.enabled_controlled(execution.final_state)
            if not enabled:
                break
            enabled.sort(key=str)
            action = self.choose(enabled)
            step = execution.extend(action)
            if on_step is not None:
                on_step(step)
        return execution


class FairScheduler(RandomScheduler):
    """Round-robin over action *names*, random within a name.

    A uniformly random scheduler starves rare action types when many
    instances of a common type are enabled (e.g. hundreds of deliveries
    versus one view change).  The fair scheduler cycles through the
    enabled action names, which exercises every part of an automaton
    without hand-tuned weights -- useful for coverage-oriented runs.
    """

    def __init__(self, seed=0):
        super().__init__(seed=seed)
        self._rotation = 0

    def choose(self, actions):
        names = sorted({a.name for a in actions})
        name = names[self._rotation % len(names)]
        self._rotation += 1
        pool = [a for a in actions if a.name == name]
        if len(pool) == 1:
            return pool[0]
        return self.rng.choice(pool)


def run_random(automaton, max_steps, seed=0, weights=None, on_step=None):
    """One-shot helper around :class:`RandomScheduler`."""
    scheduler = RandomScheduler(seed=seed, weights=weights)
    return scheduler.run(automaton, max_steps, on_step=on_step)


def run_fair(automaton, max_steps, seed=0, on_step=None):
    """One-shot helper around :class:`FairScheduler`."""
    scheduler = FairScheduler(seed=seed)
    return scheduler.run(automaton, max_steps, on_step=on_step)
