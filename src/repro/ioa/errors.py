"""Exception taxonomy for the I/O automaton framework."""


class IOAError(Exception):
    """Base class for all framework errors."""


class UnknownAction(IOAError):
    """An action was applied to an automaton whose signature lacks it."""


class ActionNotEnabled(IOAError):
    """A locally controlled action was applied while its precondition is false.

    In the I/O automaton model input actions are always enabled; output and
    internal actions may only be performed when their precondition holds.
    Applying a disabled action is a bug in the driver (scheduler, adversary,
    or refinement search), so it is an error rather than a no-op.
    """


class CompositionError(IOAError):
    """The components of a composition are not compatible.

    Compatibility in the Lynch-Tuttle sense: no action is an output of two
    components, and internal actions of one component do not appear in the
    signature of another.
    """


class InvariantViolation(IOAError):
    """A state reached by an execution falsifies a stated invariant."""

    def __init__(self, invariant_name, state, message=""):
        self.invariant_name = invariant_name
        self.state = state
        detail = " -- {0}".format(message) if message else ""
        super().__init__(
            "invariant {0!r} violated{1}".format(invariant_name, detail)
        )


class RefinementFailure(IOAError):
    """No abstract execution fragment matches a concrete step.

    Raised by :class:`repro.ioa.refinement.RefinementChecker` when the
    step-correspondence search fails, i.e. when the candidate refinement
    mapping is *not* a single-valued simulation for the observed step.
    """

    def __init__(self, step, abstract_from, abstract_to, message=""):
        self.step = step
        self.abstract_from = abstract_from
        self.abstract_to = abstract_to
        detail = " -- {0}".format(message) if message else ""
        super().__init__(
            "no abstract fragment matches step {0}{1}".format(
                step.action, detail
            )
        )
