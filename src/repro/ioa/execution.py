"""Executions, steps and traces."""

from dataclasses import dataclass, field
from typing import List


@dataclass
class Step:
    """One transition ``(state, action, next_state)`` of an execution."""

    state: object
    action: object
    next_state: object

    def __repr__(self):
        return "Step({0})".format(self.action)


@dataclass
class Execution:
    """An alternating sequence ``s0, a1, s1, a2, s2, ...``.

    Stored as the initial state plus a list of :class:`Step`; the invariant
    ``steps[i].state is steps[i-1].next_state`` holds by construction when
    built through :meth:`extend`.
    """

    automaton: object
    initial_state: object
    steps: List[Step] = field(default_factory=list)

    @property
    def final_state(self):
        if self.steps:
            return self.steps[-1].next_state
        return self.initial_state

    def __len__(self):
        return len(self.steps)

    def extend(self, action):
        """Perform ``action`` from the final state and append the step."""
        state = self.final_state
        next_state = self.automaton.apply(state, action)
        step = Step(state, action, next_state)
        self.steps.append(step)
        return step

    def states(self):
        """Yield every state of the execution, initial state first."""
        yield self.initial_state
        for step in self.steps:
            yield step.next_state

    def actions(self):
        return [step.action for step in self.steps]

    def trace(self):
        """The externally visible behaviour: the external actions, in order.

        Traces are the basis of the paper's notion of implementation
        ("in the sense of inclusion of sets of traces", Theorem 5.9).
        """
        return [
            step.action
            for step in self.steps
            if self.automaton.is_external(step.action)
        ]

    def project_trace(self, names):
        """The subsequence of trace actions whose name is in ``names``."""
        wanted = frozenset(names)
        return [a for a in self.trace() if a.name in wanted]
