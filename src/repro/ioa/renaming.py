"""Action renaming: the third classic I/O-automaton operation.

Alongside composition and hiding, Lynch-Tuttle automata support renaming
of actions.  :class:`Renamed` wraps an automaton with a bijective renaming
of action *names* (parameters pass through), which lets several instances
of the same specification coexist in one composition (e.g. two independent
VS groups) or adapts vocabulary between layers.
"""

from repro.ioa.action import Action
from repro.ioa.automaton import Automaton


class Renamed(Automaton):
    """``inner`` with its action names mapped through ``mapping``.

    ``mapping`` is outer-name -> inner-name or inner-name -> outer-name?
    We take ``mapping`` as **inner -> outer** (how the inner automaton's
    actions appear outside); it must be injective over the names actually
    used.  Names not in the mapping pass through unchanged.
    """

    def __init__(self, inner, mapping, name=None):
        self.inner = inner
        self.name = name or "renamed:{0}".format(inner.name)
        self._outer_of = dict(mapping)
        self._inner_of = {v: k for k, v in self._outer_of.items()}
        if len(self._inner_of) != len(self._outer_of):
            raise ValueError("renaming must be injective")
        self.parameterized_signature = getattr(
            inner, "parameterized_signature", False
        )

    # -- Name translation ------------------------------------------------------

    def _to_inner(self, action):
        """Translate an outer action inward; None if outside the outer
        vocabulary (a renamed-away inner name is not accepted)."""
        if action.name in self._inner_of:
            return Action(self._inner_of[action.name], action.params)
        if action.name in self._outer_of:
            return None  # this inner name was renamed away
        return action

    def _to_outer(self, action):
        outer_name = self._outer_of.get(action.name, action.name)
        if outer_name == action.name:
            return action
        return Action(outer_name, action.params)

    def _rename_names(self, names):
        return frozenset(self._outer_of.get(n, n) for n in names)

    # -- Signature ---------------------------------------------------------------

    @property
    def inputs(self):
        return self._rename_names(self.inner.inputs)

    @property
    def outputs(self):
        return self._rename_names(self.inner.outputs)

    @property
    def internals(self):
        return self._rename_names(self.inner.internals)

    # -- Automaton interface --------------------------------------------------------

    def initial_state(self):
        return self.inner.initial_state()

    def participates(self, action):
        inner = self._to_inner(action)
        if inner is None:
            return False
        participates = getattr(self.inner, "participates", None)
        if participates is None:
            return True
        return participates(inner)

    def action_kind(self, action):
        inner = self._to_inner(action)
        if inner is None:
            return None
        return self.inner.action_kind(inner)

    def is_enabled(self, state, action):
        inner = self._to_inner(action)
        if inner is None:
            return False
        return self.inner.is_enabled(state, inner)

    def transition(self, state, action):
        inner = self._to_inner(action)
        if inner is None:
            from repro.ioa.errors import UnknownAction

            raise UnknownAction(
                "{0} has no action {1}".format(self.name, action)
            )
        self.inner.transition(state, inner)

    def controlled_candidates(self, state):
        for action in self.inner.controlled_candidates(state):
            yield self._to_outer(action)
