"""Invariant checking along executions.

An invariant is a predicate on states.  The paper states its invariants
(3.1, 4.1, 4.2, 5.1-5.6, 6.1-6.3) over all reachable states; we check them
on every state of every generated execution and on every state visited by
the bounded explorer.  Predicates may either return a boolean or raise
``AssertionError`` with a diagnostic message.
"""

from repro.ioa.errors import InvariantViolation


class InvariantSuite:
    """A named collection of state predicates, checkable as a unit."""

    def __init__(self, invariants=None):
        self._invariants = dict(invariants or {})

    def add(self, name, predicate):
        self._invariants[name] = predicate
        return self

    def names(self):
        return sorted(self._invariants)

    def items(self):
        return sorted(self._invariants.items())

    def check_state(self, state):
        """Check every invariant on ``state``; raise on the first failure."""
        for name, predicate in self.items():
            try:
                ok = predicate(state)
            except AssertionError as exc:
                raise InvariantViolation(name, state, str(exc)) from exc
            if ok is False:
                raise InvariantViolation(name, state)

    def check_execution(self, execution):
        """Check every state of ``execution``; return the number checked."""
        count = 0
        for state in execution.states():
            self.check_state(state)
            count += 1
        return count

    def violations(self, state):
        """Names of invariants that fail on ``state`` (no exception)."""
        failed = []
        for name, predicate in self.items():
            try:
                ok = predicate(state)
            except AssertionError:
                ok = False
            if ok is False:
                failed.append(name)
        return failed


def check_invariants(execution, invariants):
    """Check a dict or :class:`InvariantSuite` over a whole execution."""
    suite = (
        invariants
        if isinstance(invariants, InvariantSuite)
        else InvariantSuite(invariants)
    )
    return suite.check_execution(execution)
