"""Primary-component decision rules over connectivity histories.

A *tracker* consumes a sequence of configurations.  A configuration is a
partition of the currently alive processes into connected components.  For
each configuration the tracker reports which components (at most one, for
the safe rules) become primary, updating whatever per-process state the
rule maintains.  Processes keep their state across configurations; newly
joined processes start with empty knowledge.

The abstraction corresponds to running the paper's algorithms over a
network that stays stable long enough in each configuration for membership
and state exchange to complete -- the regime availability studies care
about.  ``register_lag`` models applications that need extra stable
configurations before registering (state transfer time): until a primary
view is registered, it stays "ambiguous" and constrains later primaries.
"""

import random
from abc import ABC, abstractmethod

from repro.core.viewids import ViewId
from repro.core.views import View


class PrimaryTracker(ABC):
    """Base class: feed configurations, observe primaries."""

    def __init__(self, initial_view):
        self.initial_view = initial_view
        self.epoch = initial_view.id.epoch
        self.history = []  # [(step, primary views formed)]
        self.step = 0

    def _next_view(self, members):
        self.epoch += 1
        return View(ViewId(self.epoch, min(members)), frozenset(members))

    def observe(self, components):
        """Process one configuration; return the primary views formed."""
        primaries = self._decide([frozenset(c) for c in components])
        self.history.append((self.step, primaries))
        self.step += 1
        return primaries

    @abstractmethod
    def _decide(self, components):
        """Rule-specific decision + state update."""

    # -- Metrics -----------------------------------------------------------------

    @property
    def steps_with_primary(self):
        return sum(1 for _, primaries in self.history if primaries)

    @property
    def availability(self):
        """Fraction of configurations in which some primary existed."""
        if not self.history:
            return 0.0
        return self.steps_with_primary / len(self.history)

    def disjoint_primary_incidents(self):
        """Configurations that produced two or more disjoint primaries.

        Nonzero only for unsafe rules: a sound primary notion never admits
        two simultaneous primaries with no common member.
        """
        incidents = 0
        for _, primaries in self.history:
            for i, v in enumerate(primaries):
                for w in primaries[i + 1:]:
                    if not (v.set & w.set):
                        incidents += 1
        return incidents


class StaticMajorityTracker(PrimaryTracker):
    """Primary iff the component contains a majority of a fixed universe."""

    def __init__(self, initial_view, universe=None):
        super().__init__(initial_view)
        self.universe = frozenset(
            universe if universe is not None else initial_view.set
        )

    def _decide(self, components):
        primaries = []
        for component in components:
            if len(component & self.universe) * 2 > len(self.universe):
                primaries.append(self._next_view(component))
        return primaries


class StaticQuorumTracker(PrimaryTracker):
    """Primary iff the component is a quorum of a fixed quorum system."""

    def __init__(self, initial_view, quorum_system):
        super().__init__(initial_view)
        self.quorum_system = quorum_system

    def _decide(self, components):
        primaries = []
        for component in components:
            if self.quorum_system.is_quorum(component):
                primaries.append(self._next_view(component))
        return primaries


class DynamicVotingTracker(PrimaryTracker):
    """The DVS / Lotem-Keidar-Dolev rule, at the membership level.

    Per-process state mirrors ``VS-TO-DVS_p``: the last view the process
    knows totally registered (``act``) and the attempted views above it
    (``amb``).  In a component, members pool this knowledge (max ``act``,
    union ``amb`` filtered above it) and accept the component as primary
    iff it majority-intersects every view in the pooled
    ``use = {act} ∪ amb``.

    ``register_lag`` (in configurations) models the application's state
    exchange: a formed primary becomes *totally registered* -- letting the
    members discard older ambiguous views -- only after its component
    survives that many further configurations unchanged.
    """

    def __init__(self, initial_view, register_lag=0, failure_prob=0.0, seed=0):
        super().__init__(initial_view)
        self.register_lag = register_lag
        self.failure_prob = failure_prob
        self.rng = random.Random(seed)
        self.act = {p: initial_view for p in initial_view.set}
        self.amb = {p: set() for p in initial_view.set}
        self._pending_registration = {}  # view -> configurations survived

    def _formation_witnesses(self, members):
        """The members at which a formation is actually recorded.

        With ``failure_prob`` > 0 a formation may be interrupted (the
        Lotem-Keidar-Dolev subtlety): only a nonempty subset of the members
        learns that the view was attempted.
        """
        members = sorted(members)
        if self.failure_prob <= 0:
            return members
        witnesses = [
            p for p in members if self.rng.random() >= self.failure_prob
        ]
        if not witnesses:
            witnesses = [self.rng.choice(members)]
        return witnesses

    def _knowledge(self, pid):
        if pid not in self.act:
            # A fresh process: it knows only the distinguished initial view
            # (the paper's model has a fixed universe P; joins are modelled
            # as processes that were silent so far).
            self.act[pid] = self.initial_view
            self.amb[pid] = set()
        return self.act[pid], self.amb[pid]

    def _decide(self, components):
        primaries = []
        registered_now = []
        for component in components:
            acts = []
            ambs = set()
            for pid in component:
                act, amb = self._knowledge(pid)
                acts.append(act)
                ambs |= amb
            best_act = max(acts, key=lambda v: v.id)
            pooled_amb = {w for w in ambs if w.id > best_act.id}
            use = {best_act} | pooled_amb
            # Every member learns the pooled knowledge (the info exchange
            # happens in every component, primary or not).
            for pid in component:
                self.act[pid] = best_act
                self.amb[pid] = set(pooled_amb)
            if all(
                len(component & w.set) * 2 > len(w.set) for w in use
            ):
                view = self._next_view(component)
                primaries.append(view)
                witnesses = self._formation_witnesses(component)
                for pid in witnesses:
                    self.amb[pid] = set(self.amb[pid]) | {view}
                complete = set(witnesses) == set(component)
                if complete and self.register_lag == 0:
                    registered_now.append(view)
                elif complete:
                    self._pending_registration[view] = 0

        # Age pending registrations; registration completes only while the
        # view's membership is still a current component.
        current = set(components)
        for view in list(self._pending_registration):
            if view.set in current:
                self._pending_registration[view] += 1
                if self._pending_registration[view] >= self.register_lag:
                    registered_now.append(view)
                    del self._pending_registration[view]
            else:
                del self._pending_registration[view]

        for view in registered_now:
            for pid in view.set:
                if self.act[pid].id < view.id:
                    self.act[pid] = view
                    self.amb[pid] = {
                        w for w in self.amb[pid] if w.id > view.id
                    }
        return primaries


class NaiveDynamicTracker(PrimaryTracker):
    """The flawed folklore rule: majority of *my* last primary.

    Each process remembers only the last primary view it belonged to.  A
    component declares itself primary when it contains a majority of the
    most recent such view among its members.  Because members' memories
    diverge across partitions -- the subtlety [18] emphasizes -- two
    disjoint components can *both* qualify, which
    :meth:`PrimaryTracker.disjoint_primary_incidents` then counts.
    """

    def __init__(self, initial_view, failure_prob=0.0, seed=0):
        super().__init__(initial_view)
        self.failure_prob = failure_prob
        self.rng = random.Random(seed)
        self.last_primary = {p: initial_view for p in initial_view.set}

    def _formation_witnesses(self, members):
        members = sorted(members)
        if self.failure_prob <= 0:
            return members
        witnesses = [
            p for p in members if self.rng.random() >= self.failure_prob
        ]
        if not witnesses:
            witnesses = [self.rng.choice(members)]
        return witnesses

    def _decide(self, components):
        primaries = []
        for component in components:
            known = [
                self.last_primary[p]
                for p in component
                if p in self.last_primary
            ]
            if not known:
                continue
            reference = max(known, key=lambda v: v.id)
            if len(component & reference.set) * 2 > len(reference.set):
                view = self._next_view(component)
                primaries.append(view)
                for pid in self._formation_witnesses(component):
                    self.last_primary[pid] = view
        return primaries
