"""Primary-component trackers: static, dynamic and naive dynamic voting.

The paper's motivation (Section 1) is that *static* definitions of primary
(a majority of a fixed universe, or a fixed quorum system) "work less well
in settings where the configuration evolves over time, with processes
joining and leaving", and that dynamic voting schemes adapt -- provided
they handle the subtleties that Lotem-Keidar-Dolev [18] identified
(different opinions about what the previous primary is).

This package models the membership-level decision rules directly over
connectivity histories, without the message machinery, for quantitative
comparison (experiment E6):

- :class:`StaticMajorityTracker` / :class:`StaticQuorumTracker` -- the
  baseline: primary iff the component is a majority of the fixed universe
  (or a quorum of a fixed quorum system);
- :class:`DynamicVotingTracker` -- the DVS/LKD rule: members pool their
  ``(act, amb)`` knowledge and the component is primary iff it
  majority-intersects every possibly-previous-primary view;
- :class:`NaiveDynamicTracker` -- the *flawed* folklore rule (each member
  checks a majority of the last primary *it* remembers), which admits
  disjoint concurrent primaries -- exactly the failure mode [18] and this
  paper guard against.
"""

from repro.membership.trackers import (
    DynamicVotingTracker,
    NaiveDynamicTracker,
    PrimaryTracker,
    StaticMajorityTracker,
    StaticQuorumTracker,
)

__all__ = [
    "DynamicVotingTracker",
    "NaiveDynamicTracker",
    "PrimaryTracker",
    "StaticMajorityTracker",
    "StaticQuorumTracker",
]
