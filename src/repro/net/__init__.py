"""A deterministic event-driven network simulator.

The paper's algorithms assume an asynchronous fault-prone network
underneath the VS service.  This package provides that substrate for the
*runtime* (non-automaton) coding of the stack: point-to-point FIFO
channels with latency, network partitions and merges, process crashes and
recoveries, timers, and a connectivity oracle that plays the role of a
failure detector.

Everything is driven by a single seeded event queue, so simulations are
bit-for-bit reproducible.
"""

from repro.net.events import EventQueue
from repro.net.simulator import Network, Node

__all__ = ["EventQueue", "Network", "Node"]
