"""The simulated asynchronous network: nodes, channels, partitions, crashes.

Semantics:

- **Channels** are point-to-point and FIFO.  Each ordered pair of processes
  has its own queue; per-message latency is drawn deterministically from a
  seeded RNG but delivery order per channel is preserved (a message never
  overtakes an earlier one on the same channel).
- **Partitions** are modelled as a map from process to component id.
  A message is delivered only if, *at delivery time*, the sender and the
  receiver are alive and in the same component; otherwise it is dropped
  (the classic fair-lossy abstraction -- reliability within a stable
  component is what the membership/ordering layer rebuilds).
- **Crashes** silence a node (its messages and timers are dropped) until
  ``recover`` -- recovery is amnesia-free for the node object itself;
  protocols that need crash-recovery semantics must manage their own
  stable storage (our stack treats recovery like a merge).
- **Link faults** (:mod:`repro.faults.models`) refine the fair-lossy
  adversary below the partition layer: installed fault objects may drop,
  duplicate or delay individual messages per directed link, or block a
  link one-way.  All fault randomness is drawn from the network's own
  seeded RNG, so a faulty run replays bit-for-bit from its seed.
- **Connectivity oracle**: whenever the partition map or crash set
  changes, every alive node is told its current component via
  ``on_connectivity``.  This substitutes for a failure detector; the
  safety of everything above is insensitive to the substitution (the
  oracle only affects *when* view changes happen, not what the layers do
  with them).
"""

import random

from repro.net.events import EventQueue


class Node:
    """Base class for protocol nodes attached to a :class:`Network`."""

    def __init__(self, pid):
        self.pid = pid
        self.net = None

    # -- Downcalls available once attached ------------------------------------

    def send(self, dst, msg):
        self.net.send(self.pid, dst, msg)

    def broadcast(self, dsts, msg):
        # Delegating the fan-out lets the host optimise it (the live
        # runtime encodes the frame once for all destinations).
        self.net.broadcast(self.pid, dsts, msg)

    def set_timer(self, delay, tag):
        return self.net.set_timer(self.pid, delay, tag)

    @property
    def now(self):
        return self.net.queue.now

    # -- Upcalls (override) ------------------------------------------------------

    def on_start(self):
        """Called once when the simulation starts."""

    def on_message(self, src, msg):
        """A message from ``src`` arrived."""

    def on_timer(self, tag):
        """A timer set with ``set_timer`` fired."""

    def on_connectivity(self, component):
        """The connectivity oracle reports the node's current component
        (a frozenset of alive process ids, always containing ``self.pid``)."""


class EventLog(list):
    """The network's chronological event log, optionally bounded.

    With ``limit=None`` this is a plain list (full history).  With a
    limit, the log keeps only the most recent ``limit`` entries, trimming
    in chunks so appends stay amortized O(1); ``dropped`` counts entries
    discarded from the front.  Long chaos runs set a limit so memory stays
    bounded; an armed safety monitor keeps the full log for diagnostics.
    """

    def __init__(self, limit=None):
        super().__init__()
        self.limit = limit
        self.dropped = 0

    def append(self, entry):
        super().append(entry)
        if self.limit is not None and len(self) > 2 * self.limit:
            excess = len(self) - self.limit
            del self[:excess]
            self.dropped += excess


class Network:
    """The simulated network tying nodes, channels and faults together."""

    def __init__(self, seed=0, min_latency=1.0, max_latency=2.0,
                 log_limit=None, tracer=None):
        self.queue = EventQueue()
        self.rng = random.Random(seed)
        self.min_latency = min_latency
        self.max_latency = max_latency
        #: Optional span sink (``wire_event(stage, pid, peer, msg, t)``,
        #: e.g. :class:`repro.obs.Observability`); purely observational.
        self.tracer = tracer
        self.nodes = {}
        self._component_of = {}
        self._crashed = set()
        self._channel_clock = {}
        self._started = False
        #: Active link-fault objects (see :mod:`repro.faults.models`).
        self.faults = []
        #: Chronological log of (time, kind, details) tuples for analysis.
        self.log = EventLog(limit=log_limit)

    # -- Topology ------------------------------------------------------------------

    def add_node(self, node):
        if node.pid in self.nodes:
            raise ValueError("duplicate node {0!r}".format(node.pid))
        self.nodes[node.pid] = node
        node.net = self
        self._component_of[node.pid] = 0
        return node

    def alive(self, pid):
        return pid in self.nodes and pid not in self._crashed

    def connected(self, a, b):
        return (
            self.alive(a)
            and self.alive(b)
            and self._component_of[a] == self._component_of[b]
        )

    def component(self, pid):
        """The alive processes currently connected to ``pid`` (incl. it)."""
        if not self.alive(pid):
            return frozenset()
        group = self._component_of[pid]
        return frozenset(
            q
            for q in self.nodes
            if self.alive(q) and self._component_of[q] == group
        )

    def components(self):
        """All current components of alive processes."""
        seen = {}
        for pid in self.nodes:
            if not self.alive(pid):
                continue
            seen.setdefault(self._component_of[pid], set()).add(pid)
        return [frozenset(v) for v in seen.values()]

    # -- Fault injection ----------------------------------------------------------------

    def partition(self, groups):
        """Split the network into the given groups of process ids.

        Unlisted alive processes form one extra shared component.
        """
        mapping = {}
        for index, group in enumerate(groups, start=1):
            for pid in group:
                mapping[pid] = index
        for pid in self.nodes:
            self._component_of[pid] = mapping.get(pid, 0)
        self._record("partition", [sorted(g) for g in groups])
        self._notify_connectivity()

    def heal(self):
        """Merge every process back into one component."""
        for pid in self.nodes:
            self._component_of[pid] = 0
        self._record("heal", None)
        self._notify_connectivity()

    def crash(self, pid):
        if pid in self._crashed:
            return
        self._crashed.add(pid)
        self._record("crash", pid)
        self._notify_connectivity()

    def recover(self, pid):
        if pid not in self._crashed:
            return
        self._crashed.discard(pid)
        self._record("recover", pid)
        self._notify_connectivity()

    def install_fault(self, fault):
        """Arm a link-fault model; returns it (for :meth:`remove_fault`)."""
        self.faults.append(fault)
        self._record("fault_on", str(fault))
        return fault

    def remove_fault(self, fault):
        if fault in self.faults:
            self.faults.remove(fault)
            self._record("fault_off", str(fault))

    def link_blocked(self, src, dst):
        """True if an installed fault blocks ``src -> dst`` right now."""
        return any(f.blocks_delivery(src, dst) for f in self.faults)

    def _notify_connectivity(self):
        if not self._started:
            return
        for pid, node in sorted(self.nodes.items()):
            if self.alive(pid):
                node.on_connectivity(self.component(pid))

    # -- Messaging --------------------------------------------------------------------------

    def send(self, src, dst, msg):
        """Queue a message; it is dropped at delivery time if the endpoints
        are then crashed, separated or on a blocked link."""
        if not self.alive(src):
            return
        # Each copy is an extra delay on top of the drawn latency; the
        # no-fault case is a single copy with no extra delay.  Faults
        # transform the copy list in installation order and may empty it.
        copies = [0.0]
        for fault in self.faults:
            if copies and fault.applies(src, dst):
                copies = fault.transform(self, src, dst, copies)
        if not copies:
            self._record("fault_drop", (src, dst, msg))
            return
        self._record("send", (src, dst, msg))
        if self.tracer is not None:
            self.tracer.wire_event(
                "wire_send", src, dst, msg, self.queue.now
            )
        channel = (src, dst)
        for extra in copies:
            latency = self.rng.uniform(self.min_latency, self.max_latency)
            # FIFO per channel: never deliver before the previous message
            # on the same channel, whatever jitter the faults added.
            earliest = self._channel_clock.get(channel, 0.0)
            deliver_at = max(self.queue.now + latency + extra, earliest)
            self._channel_clock[channel] = deliver_at

            def deliver():
                if not self.connected(src, dst) or self.link_blocked(src, dst):
                    self._record("drop", (src, dst, msg))
                    return
                self._record("deliver", (src, dst, msg))
                if self.tracer is not None:
                    self.tracer.wire_event(
                        "wire_recv", dst, src, msg, self.queue.now
                    )
                self.nodes[dst].on_message(src, msg)

            self.queue.schedule(deliver_at - self.queue.now, deliver)

    def broadcast(self, src, dsts, msg):
        """Fan ``msg`` out to every destination (one channel send each)."""
        for dst in dsts:
            self.send(src, dst, msg)

    def set_timer(self, pid, delay, tag):
        def fire():
            if self.alive(pid):
                self.nodes[pid].on_timer(tag)

        return self.queue.schedule(delay, fire)

    def cancel_timer(self, handle):
        self.queue.cancel(handle)

    # -- Execution ---------------------------------------------------------------------------

    def start(self):
        """Start all nodes and push the initial connectivity report."""
        if self._started:
            return
        self._started = True
        for pid, node in sorted(self.nodes.items()):
            node.on_start()
        self._notify_connectivity()

    def run_until(self, deadline):
        if not self._started:
            self.start()
        self.queue.run_until(deadline)

    def run_to_quiescence(self, max_time=float("inf"), max_events=1000000):
        if not self._started:
            self.start()
        return self.queue.run_to_quiescence(max_time, max_events)

    def record(self, kind, details):
        """Public hook for instrumentation (nemesis ops, workload marks)."""
        self._record(kind, details)

    def _record(self, kind, details):
        self.log.append((self.queue.now, kind, details))
