"""The discrete-event queue driving the network simulation."""

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

#: Reasons a :meth:`EventQueue.run_to_quiescence` call stopped.
QUIESCENT = "quiescent"
MAX_TIME = "max_time"
MAX_EVENTS = "max_events"


class NonQuiescentError(RuntimeError):
    """A run expected to quiesce was truncated by its event budget."""

    def __init__(self, status):
        self.status = status
        super().__init__(
            "run truncated after {0} events without quiescing "
            "(reason: {1})".format(status.fired, status.reason)
        )


@dataclass(frozen=True)
class QuiescenceStatus:
    """Outcome of :meth:`EventQueue.run_to_quiescence`.

    ``quiescent`` is True iff the queue genuinely drained; otherwise
    ``reason`` says which bound stopped the run (``max_time`` leaves the
    remaining events queued for later, ``max_events`` means the run was
    truncated mid-flight).
    """

    fired: int
    quiescent: bool
    reason: str

    def __bool__(self):
        return self.quiescent


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventQueue:
    """A priority queue of timed callbacks with stable FIFO tie-breaking.

    Events at equal times fire in scheduling order (the ``seq`` counter),
    which makes runs deterministic without relying on heap internals.
    """

    def __init__(self):
        self._heap = []
        self._counter = itertools.count()
        self.now = 0.0

    def schedule(self, delay, callback):
        """Schedule ``callback`` to run ``delay`` time units from now.

        Returns a handle that can be passed to :meth:`cancel`.
        """
        if delay < 0:
            raise ValueError("delay must be nonnegative")
        event = _Event(self.now + delay, next(self._counter), callback)
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event):
        event.cancelled = True

    def __len__(self):
        return sum(1 for e in self._heap if not e.cancelled)

    def run_until(self, deadline):
        """Fire events with time <= deadline; advance ``now`` to deadline."""
        while self._heap and self._heap[0].time <= deadline:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback()
        self.now = max(self.now, deadline)

    def run_to_quiescence(self, max_time=float("inf"), max_events=1000000):
        """Fire events until none remain (or a bound trips).

        Returns a :class:`QuiescenceStatus`; check ``status.quiescent`` (or
        truth-test the status) to distinguish a drained queue from a
        truncated run.
        """
        fired = 0
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time > max_time:
                # Out of simulated time; leave the event unfired.
                heapq.heappush(self._heap, event)
                return QuiescenceStatus(fired, False, MAX_TIME)
            self.now = event.time
            event.callback()
            fired += 1
            if fired >= max_events and len(self) > 0:
                return QuiescenceStatus(fired, False, MAX_EVENTS)
        return QuiescenceStatus(fired, True, QUIESCENT)
