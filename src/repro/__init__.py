"""Reproduction of *A Dynamic View-Oriented Group Communication Service*
(De Prisco, Fekete, Lynch, Shvartsman -- PODC 1998).

The package is organized in the paper's own layers:

- :mod:`repro.ioa` -- executable I/O automata (the formal substrate);
- :mod:`repro.core` -- views, identifiers, sequences, quorums (Section 2);
- :mod:`repro.vs` -- the static view-synchronous service VS (Figure 1);
- :mod:`repro.dvs` -- the DVS specification (Figure 2), the
  ``VS-TO-DVS_p`` implementation (Figure 3), the refinement F (Figure 4)
  and the invariants of Sections 4-5;
- :mod:`repro.to` -- the TO broadcast service, ``DVS-TO-TO_p``
  (Figure 5) and the Section 6 invariants and refinement;
- :mod:`repro.checking` -- environments, harnesses and trace properties;
- :mod:`repro.net` / :mod:`repro.gcs` -- a deterministic network
  simulator and the runnable protocol stack (membership, sequencer
  ordering, dynamic primary filter, TO engine);
- :mod:`repro.membership` / :mod:`repro.analysis` -- primary-tracker
  baselines and the availability experiments;
- :mod:`repro.apps` -- replicated state machines / key-value store.

See DESIGN.md for the full inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

__version__ = "1.0.0"

from repro.core.viewids import G0, ViewId
from repro.core.views import View, make_view

__all__ = ["G0", "View", "ViewId", "__version__", "make_view"]
