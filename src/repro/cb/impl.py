"""CB-IMPL: the composition of all ``DVS-TO-CB_p`` with DVS.

Mirrors :mod:`repro.to.impl`: the application automata compose with the
DVS *specification* (the layered-proof system), and
:func:`build_cb_over_dvs_impl` builds the full deployable tower over
VS.  The guarantees are view-scoped: within any one view the composed
system delivers causally, gap-free and without duplicates; across view
changes delivery is best-effort (the invariants and the runtime safety
monitor check exactly this).
"""

from repro.cb.dvs_to_cb import DvsToCb
from repro.dvs.impl import VS_EXTERNAL_ACTIONS, build_dvs_impl
from repro.dvs.spec import DVSSpec
from repro.ioa.composition import Composition
from repro.to.impl import DVS_EXTERNAL_ACTIONS

CB_IMPL_NAME = "cb_impl"


def app_component_name(pid):
    return "dvs_to_cb:{0}".format(pid)


def build_cb_impl(initial_view, universe, view_pool=(), name=CB_IMPL_NAME):
    """CB-IMPL over the DVS *specification*."""
    universe = frozenset(universe) | initial_view.set
    dvs = DVSSpec(initial_view, universe=universe, view_pool=view_pool)
    apps = [
        DvsToCb(pid, initial_view, name=app_component_name(pid))
        for pid in sorted(universe)
    ]
    return Composition(
        [dvs] + apps, hidden=DVS_EXTERNAL_ACTIONS, name=name
    )


def build_cb_over_dvs_impl(
    initial_view, universe, view_pool=(), name="cb_over_dvs_impl"
):
    """The full stack: DVS-TO-CB over VS-TO-DVS over VS, everything hidden."""
    universe = frozenset(universe) | initial_view.set
    dvs_impl = build_dvs_impl(initial_view, universe, view_pool=view_pool)
    apps = [
        DvsToCb(pid, initial_view, name=app_component_name(pid))
        for pid in sorted(universe)
    ]
    return Composition(
        dvs_impl.components + apps,
        hidden=VS_EXTERNAL_ACTIONS | DVS_EXTERNAL_ACTIONS,
        name=name,
    )


class CbImplState:
    """Named access to a CB-IMPL composition state."""

    def __init__(self, composition_state, processes, dvs_name="dvs"):
        self.state = composition_state
        self.processes = sorted(processes)
        self.dvs_name = dvs_name

    @property
    def dvs(self):
        return self.state.part(self.dvs_name)

    def app(self, pid):
        return self.state.part(app_component_name(pid))
