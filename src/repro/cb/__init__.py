"""CB: a causal-broadcast service tier beside TO on the DVS substrate.

The TO tier of [12] pays a sequencer round-trip (label, order, safe)
for every delivery.  Many group-communication workloads -- presence,
typing indicators, commutative operation streams -- only need *causal*
order, which a process can decide locally from a vector clock carried on
the message: no sequencer, no safe-indication wait.  This package is the
causal analogue of :mod:`repro.to`, layered on the **unchanged** DVS
service: a service specification (:mod:`repro.cb.spec`), a per-process
implementation automaton over DVS (:mod:`repro.cb.dvs_to_cb`) using
view-scoped dynamic vector clocks (:mod:`repro.cb.clocks`), composition
builders (:mod:`repro.cb.impl`) and state invariants
(:mod:`repro.cb.invariants`).
"""

from repro.cb.clocks import (
    advance,
    compare,
    deliverable,
    drain,
    entry,
    join,
    leq,
    normalize,
    put,
    restrict,
    tick,
)
from repro.cb.dvs_to_cb import DvsToCb, DvsToCbState
from repro.cb.impl import (
    CB_IMPL_NAME,
    CbImplState,
    app_component_name,
    build_cb_impl,
    build_cb_over_dvs_impl,
)
from repro.cb.invariants import cb_impl_invariants
from repro.cb.messages import CbCast
from repro.cb.spec import CBSpec, CBState

__all__ = [
    "CB_IMPL_NAME",
    "CBSpec",
    "CBState",
    "CbCast",
    "CbImplState",
    "DvsToCb",
    "DvsToCbState",
    "advance",
    "app_component_name",
    "build_cb_impl",
    "build_cb_over_dvs_impl",
    "cb_impl_invariants",
    "compare",
    "deliverable",
    "drain",
    "entry",
    "join",
    "leq",
    "normalize",
    "put",
    "restrict",
    "tick",
]
