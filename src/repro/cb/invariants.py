"""Invariants of CB-IMPL (view-scoped causal broadcast).

All are stated over the composition of the application automata with
the DVS *specification* and checked on states of
:func:`repro.cb.impl.build_cb_impl`.  They capture the view-scoped
guarantees the tier makes:

* clocks never mention processes outside the view that scopes them;
* nobody accounts more deliveries from a sender than that sender has
  timestamped in the (shared) current view -- so per-sender sequence
  numbers cannot gap or duplicate;
* per view and per sender, any two processes' delivery sequences are
  prefixes of one another (FIFO consistency with identical content).
"""

from repro.cb.impl import CbImplState
from repro.ioa.invariants import InvariantSuite


def _wrap(processes, predicate, dvs_name="dvs"):
    def check(composition_state):
        return predicate(CbImplState(composition_state, processes, dvs_name))

    check.__doc__ = predicate.__doc__
    check.__name__ = predicate.__name__
    return check


def clocks_scoped_to_view(impl):
    """Clock entries and held-back casts only name current-view members."""
    for p in impl.processes:
        app = impl.app(p)
        if app.current is None:
            continue
        members = set(app.current.set)
        for who, _count in app.delivered:
            assert who in members, (
                "{0}'s delivered clock names {1}, not a member of "
                "{2}".format(p, who, app.current)
            )
        for m in app.holdback:
            assert m.vid == app.current.id, (
                "{0} holds back a cast for view {1} while in view "
                "{2}".format(p, m.vid, app.current.id)
            )
            assert m.origin in members, (
                "{0} holds back a cast from {1}, not a member of "
                "{2}".format(p, m.origin, app.current)
            )
    return True


def delivered_bounded_by_sent(impl):
    """No process accounts more deliveries than the sender timestamped.

    For processes sharing a current view, ``delivered[q] <= sent_q``:
    with the exact-successor delivery condition this is what makes the
    per-sender sequence gap-free and duplicate-free within the view.
    """
    for p in impl.processes:
        app = impl.app(p)
        if app.current is None:
            continue
        for q in impl.processes:
            peer = impl.app(q)
            if peer.current is None or peer.current.id != app.current.id:
                continue
            count = dict(app.delivered).get(q, 0)
            assert count <= peer.sent, (
                "{0} accounts {1} deliveries from {2} but {2} only "
                "timestamped {3} in view {4}".format(
                    p, count, q, peer.sent, app.current.id
                )
            )
    return True


def per_sender_prefix_consistent(impl):
    """Per view and sender, delivery sequences are mutually prefixes."""
    views = set()
    for p in impl.processes:
        views.update(impl.app(p).history.keys())
    for vid in sorted(views):
        for q in impl.processes:
            sequences = []
            for p in impl.processes:
                entries = impl.app(p).history.get(vid)
                sequences.append(
                    tuple(a for a, origin in entries if origin == q)
                )
            for i, left in enumerate(sequences):
                for right in sequences[i + 1:]:
                    shorter, longer = (
                        (left, right) if len(left) <= len(right)
                        else (right, left)
                    )
                    assert longer[: len(shorter)] == shorter, (
                        "view {0}: inconsistent delivery sequences from "
                        "{1}: {2} vs {3}".format(vid, q, shorter, longer)
                    )
    return True


def cb_impl_invariants(processes, dvs_name="dvs"):
    """The suite for CB-IMPL composition states."""
    processes = sorted(processes)
    return InvariantSuite(
        {
            "CB-IMPL clocks scoped to view": _wrap(
                processes, clocks_scoped_to_view, dvs_name
            ),
            "CB-IMPL delivered bounded by sent": _wrap(
                processes, delivered_bounded_by_sent, dvs_name
            ),
            "CB-IMPL per-sender prefixes consistent": _wrap(
                processes, per_sender_prefix_consistent, dvs_name
            ),
        }
    )
