"""View-scoped dynamic vector clocks (the algebra under the CB tier).

A clock is a *canonical* tuple of ``(process, count)`` entries: sorted
by process id, with zero entries omitted.  Canonical tuples are
hashable, deterministic to iterate (lint DVS008) and serialize through
the wire codec without a dedicated message type.  The clock domain is
*dynamic*: entries name whatever processes the current view contains,
and :func:`restrict` remaps a clock onto a new membership when a view
changes.

Everything here is a pure function of its arguments -- the Hypothesis
property suite (tests/property/test_vclock_properties.py) checks the
lattice laws directly on these functions:

* :func:`join` is idempotent, commutative and associative with identity
  ``()`` (pointwise max);
* :func:`leq` is a partial order with :func:`compare` its three-way
  refinement (``None`` for concurrent clocks);
* :func:`drain` releases a hold-back queue in an order that respects
  :func:`deliverable` -- the Birman-Schiper-Stephenson delivery
  condition -- reaching a fixpoint independent of arrival interleaving.
"""


def normalize(entries):
    """Canonicalize ``entries`` (a mapping or iterable of pairs).

    Duplicate process ids keep the maximal count (so ``normalize`` is
    insensitive to entry order); zero and negative counts are dropped.
    """
    if hasattr(entries, "items"):
        pairs = entries.items()
    else:
        pairs = entries
    merged = {}
    for pid, count in pairs:
        if count > merged.get(pid, 0):
            merged[pid] = count
    return tuple(sorted(merged.items()))


def entry(clock, pid):
    """The count recorded for ``pid`` (0 when absent)."""
    for who, count in clock:
        if who == pid:
            return count
    return 0


def put(clock, pid, count):
    """``clock`` with the entry for ``pid`` replaced by ``count``."""
    rest = tuple(e for e in clock if e[0] != pid)
    if count <= 0:
        return rest
    return tuple(sorted(rest + ((pid, count),)))


def tick(clock, pid):
    """Advance ``pid``'s entry by one (a send or delivery event)."""
    return put(clock, pid, entry(clock, pid) + 1)


def join(a, b):
    """Pointwise maximum: the least clock dominating both arguments."""
    merged = dict(a)
    for pid, count in b:
        if count > merged.get(pid, 0):
            merged[pid] = count
    return tuple(sorted(merged.items()))


def leq(a, b):
    """Whether ``a`` is pointwise at most ``b``."""
    return all(count <= entry(b, pid) for pid, count in a)


def compare(a, b):
    """Three-way comparison: -1, 0, 1, or ``None`` for concurrent."""
    a_le = leq(a, b)
    b_le = leq(b, a)
    if a_le and b_le:
        return 0
    if a_le:
        return -1
    if b_le:
        return 1
    return None


def restrict(clock, members):
    """Drop entries for processes outside ``members`` (view remap).

    When a new view is installed the clock domain changes with it;
    entries for departed processes are meaningless in the new view and
    are forgotten.
    """
    keep = frozenset(members)
    return tuple(e for e in clock if e[0] in keep)


def deliverable(clock, delivered, origin):
    """The BSS delivery condition for a message timestamped ``clock``.

    A receiver that has delivered ``delivered`` may deliver the message
    from ``origin`` iff it is the *next* message from that sender
    (``clock[origin] == delivered[origin] + 1``) and every other entry
    of the message's clock -- the sender's causal past -- has already
    been delivered here (``clock[k] <= delivered[k]``).
    """
    if entry(clock, origin) != entry(delivered, origin) + 1:
        return False
    return all(
        count <= entry(delivered, pid)
        for pid, count in clock
        if pid != origin
    )


def advance(delivered, origin):
    """The delivered-clock after delivering one message from ``origin``."""
    return tick(delivered, origin)


def drain(holdback, delivered):
    """Release every deliverable entry of a hold-back queue, in order.

    ``holdback`` is a sequence of ``(origin, clock)`` pairs in arrival
    order.  The queue is rescanned FIFO-first until no entry is
    deliverable (releasing one message can unblock earlier arrivals),
    which makes the release order a deterministic function of the queue
    contents.  Returns ``(released, remaining, delivered)`` where
    ``released`` is the tuple of released indices into ``holdback`` in
    release order.
    """
    pending = list(enumerate(holdback))
    released = []
    progress = True
    while progress:
        progress = False
        for slot, (index, (origin, clock)) in enumerate(pending):
            if deliverable(clock, delivered, origin):
                delivered = advance(delivered, origin)
                released.append(index)
                del pending[slot]
                progress = True
                break
    remaining = tuple(index for index, _ in pending)
    return tuple(released), remaining, delivered
