"""CB: the causally-ordered broadcast service specification.

Like TO (:mod:`repro.to.spec`), CB is *not* group-oriented: clients
broadcast payloads and receive payloads.  The guarantee is weaker than
TO's single system-wide order -- each client may receive messages in any
order consistent with *causal precedence* (Lamport's happened-before
restricted to broadcast events), with integrity and no duplication, and
with per-sender gap-free FIFO (a special case of causality: a sender's
earlier broadcast causally precedes its later ones).

Signature::

    Input:    CBCAST(a)_p         cbcast(a, p)
    Output:   CB-BRCV(a)_{q,p}    cb_brcv(a, q, p)   (a from q, at p)

State: ``sent[q]`` (the sequence of payloads broadcast by q, giving
every broadcast the id ``(q, k)``), ``past[(q, k)]`` (the ids causally
preceding broadcast ``(q, k)``: everything q had delivered or itself
broadcast before it), ``knowledge[p]`` (the ids process p has delivered
or broadcast so far) and the per-sender delivery pointer
``next[p][q]``.  A delivery is enabled exactly when it is the next
broadcast from its sender *and* its whole causal past has been
delivered at the receiver -- there is no global order variable and no
``to_order`` internal step: causal order needs no sequencer.
"""

from repro.ioa.action import act
from repro.ioa.automaton import TransitionAutomaton
from repro.ioa.state import State


class CBState(State):
    """State of the CB specification."""

    def __init__(self, universe):
        procs = sorted(universe)
        super().__init__(
            sent={p: [] for p in procs},
            past={},
            knowledge={p: set() for p in procs},
            next={p: {q: 0 for q in procs} for p in procs},
        )


def _delivered_ids(state, p):
    """The broadcast ids process ``p`` has delivered."""
    return {
        (q, k)
        for q, pointer in state.next[p].items()
        for k in range(pointer)
    }


class CBSpec(TransitionAutomaton):
    """The CB service automaton."""

    inputs = frozenset({"cbcast"})
    outputs = frozenset({"cb_brcv"})
    internals = frozenset()

    def __init__(self, universe, name="cb"):
        self.name = name
        self.universe = frozenset(universe)

    def initial_state(self):
        return CBState(self.universe)

    # -- CBCAST(a)_p (input) ---------------------------------------------------

    def eff_cbcast(self, state, a, p):
        k = len(state.sent[p])
        state.past[(p, k)] = frozenset(state.knowledge[p])
        state.sent[p].append(a)
        state.knowledge[p].add((p, k))

    # -- CB-BRCV(a)_{q,p} ------------------------------------------------------

    def pre_cb_brcv(self, state, a, q, p):
        k = state.next[p][q]
        return (
            k < len(state.sent[q])
            and state.sent[q][k] == a
            and state.past[(q, k)] <= _delivered_ids(state, p)
        )

    def eff_cb_brcv(self, state, a, q, p):
        k = state.next[p][q]
        state.knowledge[p].add((q, k))
        state.next[p][q] = k + 1

    def cand_cb_brcv(self, state):
        for p in sorted(self.universe):
            delivered = _delivered_ids(state, p)
            for q in sorted(self.universe):
                k = state.next[p][q]
                if k < len(state.sent[q]) and state.past[(q, k)] <= delivered:
                    yield act("cb_brcv", state.sent[q][k], q, p)
