"""The wire message of the CB tier.

``CbCast`` is to CB what ``(Label, payload)`` is to TO: the one payload
type the tier multicasts through DVS.  The vector clock rides on the
message as a canonical entry tuple (see :mod:`repro.cb.clocks`), so a
receiver can decide deliverability locally; ``clock[origin]`` doubles as
the per-view per-sender sequence number, which is what makes the
no-gaps/no-duplicates invariants checkable from the wire alone.
"""

from dataclasses import dataclass
from typing import Tuple

from repro.cb.clocks import entry, normalize
from repro.core.viewids import ViewId


@dataclass(frozen=True)
class CbCast:
    """A causally-timestamped payload, scoped to one view.

    ``vid`` scopes the clock: entries only name members of that view,
    and receivers drop casts tagged with any other view (cross-view
    delivery is best-effort by design -- the clock domain changed).
    """

    vid: ViewId
    clock: Tuple[Tuple[str, int], ...]
    payload: object
    origin: str

    def __post_init__(self):
        if not isinstance(self.clock, tuple) or any(
            not isinstance(e, tuple) for e in self.clock
        ):
            object.__setattr__(
                self, "clock", normalize(tuple(e) for e in self.clock)
            )

    @property
    def seqno(self):
        """The per-view sequence number among ``origin``'s casts."""
        return entry(self.clock, self.origin)

    def __str__(self):
        return "cb:{0}#{1}@{2}".format(self.vid, self.seqno, self.origin)
