"""``DVS-TO-CB_p``: causally ordered broadcast over DVS.

The causal analogue of ``DVS-TO-TO_p`` (Figure 5), with the sequencer
round-trip designed out.  Client payloads are buffered (``delay``),
timestamped with a view-scoped vector clock (``cb_label``), and
multicast through DVS.  A received cast goes into a hold-back queue and
is released -- *immediately at delivery, never waiting for a DVS safe
indication* -- once the BSS condition holds: it is the next cast from
its sender and its causal past (the clock it carries) has been
delivered here.

Recovery activity is trivial, which is the point: when DVS reports a
new view the clock is reset over the new membership, the hold-back
queue is dropped (casts of dead views can never satisfy a clock scoped
to the new one -- cross-view delivery is best-effort), and the process
registers at once.  There is no state to exchange because there is no
shared order to reconstruct; payloads still waiting in ``delay`` are
simply timestamped in the new view.

``history`` is a history variable (delivered ``(payload, origin)``
pairs per view); it appears only in the invariants.
"""

from types import MappingProxyType

from repro.cb.clocks import advance, deliverable, put
from repro.cb.messages import CbCast
from repro.core.sequences import head, remove_head
from repro.core.tables import Table
from repro.core.viewids import G0
from repro.ioa.action import act
from repro.ioa.automaton import TransitionAutomaton
from repro.ioa.state import State

#: Read-only: module globals are shared by every simulated process.
_PROC_PARAM = MappingProxyType({
    "cbcast": 1,
    "cb_label": 1,
    "cb_brcv": 2,
    "dvs_gpsnd": 1,
    "dvs_register": 0,
    "dvs_newview": 1,
    "dvs_gprcv": 2,
    "dvs_safe": 2,
})


class DvsToCbState(State):
    """State of ``DVS-TO-CB_p``."""

    def __init__(self, pid, initial_view):
        is_initial_member = pid in initial_view.set
        super().__init__(
            current=initial_view if is_initial_member else None,
            delivered=(),
            sent=0,
            delay=[],
            buffer=[],
            holdback=[],
            registered={G0} if is_initial_member else set(),
            history=Table(tuple),
        )


class DvsToCb(TransitionAutomaton):
    """The ``DVS-TO-CB_p`` automaton for one process."""

    parameterized_signature = True

    inputs = frozenset({"cbcast", "dvs_gprcv", "dvs_safe", "dvs_newview"})
    outputs = frozenset({"dvs_gpsnd", "dvs_register", "cb_brcv"})
    internals = frozenset({"cb_label"})

    def __init__(self, pid, initial_view, name=None):
        self.pid = pid
        self.initial_view = initial_view
        self.name = name or "dvs_to_cb:{0}".format(pid)

    def participates(self, action):
        index = _PROC_PARAM.get(action.name)
        if index is None:
            return False
        return (
            len(action.params) > index and action.params[index] == self.pid
        )

    def initial_state(self):
        return DvsToCbState(self.pid, self.initial_view)

    # -- Client input and timestamping ----------------------------------------

    def eff_cbcast(self, state, a, p):
        state.delay.append(a)

    def pre_cb_label(self, state, a, p):
        return state.current is not None and head(state.delay) == a

    def eff_cb_label(self, state, a, p):
        state.sent += 1
        clock = put(state.delivered, self.pid, state.sent)
        state.buffer.append(
            CbCast(state.current.id, clock, a, self.pid)
        )
        remove_head(state.delay)

    def cand_cb_label(self, state):
        if state.current is None:
            return
        a = head(state.delay)
        if a is not None:
            yield act("cb_label", a, self.pid)

    # -- Multicast ------------------------------------------------------------

    def pre_dvs_gpsnd(self, state, m, p):
        return head(state.buffer) == m

    def eff_dvs_gpsnd(self, state, m, p):
        remove_head(state.buffer)

    def cand_dvs_gpsnd(self, state):
        m = head(state.buffer)
        if m is not None:
            yield act("dvs_gpsnd", m, self.pid)

    # -- Deliveries -----------------------------------------------------------

    def eff_dvs_gprcv(self, state, m, q, p):
        if (
            isinstance(m, CbCast)
            and state.current is not None
            and m.vid == state.current.id
        ):
            state.holdback.append(m)

    def eff_dvs_safe(self, state, m, q, p):
        # CB delivers at gprcv time; stability indications are unused.
        pass

    def pre_cb_brcv(self, state, a, q, p):
        return any(
            m.origin == q
            and m.payload == a
            and deliverable(m.clock, state.delivered, q)
            for m in state.holdback
        )

    def eff_cb_brcv(self, state, a, q, p):
        for index, m in enumerate(state.holdback):
            if (
                m.origin == q
                and m.payload == a
                and deliverable(m.clock, state.delivered, q)
            ):
                del state.holdback[index]
                state.delivered = advance(state.delivered, q)
                if state.current is not None:
                    vid = state.current.id
                    state.history[vid] = state.history.get(vid) + ((a, q),)
                return

    def cand_cb_brcv(self, state):
        for m in state.holdback:
            if deliverable(m.clock, state.delivered, m.origin):
                yield act("cb_brcv", m.payload, m.origin, self.pid)

    # -- Recovery -------------------------------------------------------------

    def eff_dvs_newview(self, state, v, p):
        state.current = v
        state.delivered = ()
        state.sent = 0
        state.buffer = []
        state.holdback = []

    def pre_dvs_register(self, state, p):
        return (
            state.current is not None
            and state.current.id not in state.registered
        )

    def eff_dvs_register(self, state, p):
        state.registered.add(state.current.id)

    def cand_dvs_register(self, state):
        if self.pre_dvs_register(state, self.pid):
            yield act("dvs_register", self.pid)
