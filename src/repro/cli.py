"""Command-line interface: ``python -m repro <command>``.

Commands
--------
verify
    Run randomized executions of DVS-IMPL and TO-IMPL, checking every
    paper invariant and both refinement theorems; print a summary.
availability
    Print the E6 availability tables (static vs dynamic vs naive).
explore
    Exhaustively explore a small configuration with the bounded model
    checker, checking the invariant suites on every reachable state.
isis
    Search DVS executions for a violation of the Isis same-messages
    property (expected to exist: DVS is weaker by design).
chaos
    Run the full stack under a seeded nemesis fault plan with the
    online safety monitor armed -- simulated by default, ``--live`` for
    a real-TCP loopback cluster recording a replayable trace; on a
    violation, delta-debug the plan (sim) or the recorded trace (live)
    down to a minimal replayable counterexample.
replay
    Feed a trace recorded by ``chaos --live --record`` through the
    deterministic layer stack under the safety monitor; two replays of
    one trace are byte-identical, and ``--shrink`` minimizes a
    violating trace with ddmin.
lint
    Statically check the tree: automaton well-formedness
    (pre_/eff_/cand_ contract, predicate purity), determinism
    (wall-clock/entropy escapes, unsorted set iteration, id()
    ordering) and cross-process aliasing.  Exits non-zero on findings.
serve
    Run the stack on real TCP sockets: by default an in-process
    loopback cluster driving a replicated key-value workload (with a
    mid-run crash and rejoin) under the online safety monitor; with
    ``--pid``/``--bind``/``--peer``, one node of a real multi-process
    deployment in the foreground.  ``--metrics-json``/``--trace-json``
    arm the observability layer and export its snapshots.
trace
    Run a traced workload (simulated by default, ``--live`` for real
    loopback TCP) and print the per-stage latency breakdown stitched
    from causal spans; ``--output`` exports the full trace JSON.
metrics
    Run the live loopback workload with the metrics registry armed and
    print the counters/gauges/histograms.
demo
    Run the partitioned-ledger scenario on the simulated cluster.
"""

import argparse
import sys


def _cmd_verify(args):
    from repro.checking import (
        build_closed_dvs_impl,
        build_closed_to_impl,
        check_dvs_trace_properties,
        check_to_trace_properties,
        random_view_pool,
    )
    from repro.core import make_view
    from repro.dvs import (
        dvs_impl_invariants,
        dvs_refinement_checker,
    )
    from repro.ioa import run_random
    from repro.to import to_impl_invariants, to_refinement_checker

    universe = ["p{0}".format(i) for i in range(1, args.processes + 1)]
    v0 = make_view(0, universe)
    checked_states = 0
    for seed in range(args.seeds):
        pool = random_view_pool(universe, 4, seed=seed + 7, min_size=2)
        system, procs = build_closed_dvs_impl(
            v0, universe, view_pool=pool, budget=2
        )
        ex = run_random(system, args.steps, seed=seed,
                        weights={"vs_createview": 0.15})
        checked_states += dvs_impl_invariants(procs).check_execution(ex)
        dvs_refinement_checker(procs, v0, universe).check_execution(ex)
        check_dvs_trace_properties(ex.trace(), v0)

        system, procs = build_closed_to_impl(
            v0, universe, view_pool=pool, budget=2
        )
        ex = run_random(system, args.steps, seed=seed,
                        weights={"dvs_createview": 0.08})
        checked_states += to_impl_invariants(procs).check_execution(ex)
        to_refinement_checker(procs).check_execution(ex)
        check_to_trace_properties(ex.trace())
    print(
        "OK: invariants 5.1-5.6 and 6.1-6.3, Theorems 5.9 and 6.4, and "
        "all trace properties verified on {0} states "
        "({1} seeds x {2} steps, {3} processes)".format(
            checked_states, args.seeds, args.steps, args.processes
        )
    )
    return 0


def _cmd_availability(args):
    from repro.analysis import (
        compare_trackers,
        drifting_population,
        random_churn,
        render_table,
    )
    from repro.core import make_view
    from repro.membership import (
        DynamicVotingTracker,
        NaiveDynamicTracker,
        StaticMajorityTracker,
    )

    universe = ["p{0}".format(i) for i in range(1, args.processes + 1)]
    v0 = make_view(0, universe)
    headers = ["rule", "availability", "primaries", "disjoint"]

    fixed = random_churn(universe, args.steps, seed=args.seed,
                         partition_prob=0.5)
    results = compare_trackers(
        [
            ("static majority", StaticMajorityTracker(v0)),
            ("dynamic voting (DVS)", DynamicVotingTracker(v0)),
        ],
        fixed,
    )
    print(render_table(headers, [r.row() for r in results],
                       title="fixed population"))

    drift = drifting_population(universe, args.steps, seed=args.seed)
    results = compare_trackers(
        [
            ("static majority", StaticMajorityTracker(v0)),
            ("dynamic voting (DVS)", DynamicVotingTracker(v0)),
        ],
        drift,
    )
    print()
    print(render_table(headers, [r.row() for r in results],
                       title="drifting population"))

    churn = random_churn(universe, args.steps, seed=args.seed,
                         partition_prob=0.7)
    results = compare_trackers(
        [
            ("naive dynamic",
             NaiveDynamicTracker(v0, failure_prob=0.4, seed=args.seed)),
            ("dynamic voting (DVS)",
             DynamicVotingTracker(v0, register_lag=1, failure_prob=0.4,
                                  seed=args.seed)),
        ],
        churn,
    )
    print()
    print(render_table(headers, [r.row() for r in results],
                       title="interrupted formations"))
    return 0


def _cmd_explore(args):
    from repro.checking import build_closed_dvs_impl, grid_view_pool
    from repro.core import make_view
    from repro.dvs import dvs_impl_invariants
    from repro.ioa import BoundedExplorer

    universe = ["p{0}".format(i) for i in range(1, args.processes + 1)]
    v0 = make_view(0, universe)
    pool = grid_view_pool(universe, max_epoch=args.epochs,
                          min_size=len(universe))
    system, procs = build_closed_dvs_impl(
        v0, universe, view_pool=pool, budget=1, eager_register=True
    )
    explorer = BoundedExplorer(
        system,
        invariants=dvs_impl_invariants(procs),
        max_states=args.max_states,
    )
    result = explorer.explore()
    print("exploration:", result.summary())
    if result.violation is not None:
        print("VIOLATION:", result.violation)
        return 1
    print("all invariants hold on every explored state")
    return 0


def _cmd_isis(args):
    from repro.checking.isis_property import find_isis_counterexample

    result = find_isis_counterexample(
        max_seeds=args.seeds, steps=args.steps
    )
    if result is None:
        print("no Isis-property violation found in budget")
        return 1
    seed, violations, _ = result
    print(
        "DVS does not provide the Isis same-messages property "
        "(seed {0}, {1} violation(s)):".format(seed, len(violations))
    )
    for violation in violations[:3]:
        print("  -", violation)
    return 0


def _build_chaos_plan(args, procs, duration):
    from repro.faults import (
        NemesisPlan,
        bridge_topology,
        compose,
        crash_recovery_storm,
        flaky_link_windows,
        partition_churn,
    )

    if args.plan_json:
        return NemesisPlan.from_json(args.plan_json)
    if args.live:
        # Live times are wall-clock seconds: faults start once the
        # cluster has had a moment to form and end before the settle.
        window = dict(start=2.0, duration=max(duration - 4.0, 1.0))
        bridge_at, bridge_len = 2.0, max(duration - 4.0, 1.0)
    else:
        window = dict(start=10.0, duration=duration - 60.0)
        bridge_at, bridge_len = 10.0, duration - 60.0
    builders = {
        "storm": lambda: crash_recovery_storm(procs, seed=args.seed,
                                              **window),
        "churn": lambda: partition_churn(procs, seed=args.seed, **window),
        "flaky": lambda: flaky_link_windows(procs, seed=args.seed, **window),
        "bridge": lambda: bridge_topology(
            procs[: len(procs) // 2],
            procs[len(procs) // 2:],
            procs[0],
            at=bridge_at,
            duration=bridge_len,
        ),
    }
    if args.plan == "mixed":
        return compose(*(build() for build in builders.values()))
    return builders[args.plan]()


def _chaos_flag_errors(args):
    """Live-only/sim-only flag conflicts, as human-readable messages."""
    errors = []
    if args.live:
        if args.log_limit is not None:
            errors.append(
                "--log-limit applies to simulated runs only (the live "
                "monitor keeps the full action log)"
            )
    else:
        for value, flag, why in (
            (args.record, "--record",
             "simulated runs replay exactly from (seed, plan); only "
             "live runs need a recorded trace"),
            (args.hb_interval, "--hb-interval",
             "the simulator uses a connectivity oracle, not heartbeats"),
            (args.hb_timeout, "--hb-timeout",
             "the simulator uses a connectivity oracle, not heartbeats"),
        ):
            if value is not None:
                errors.append(
                    "{0} requires --live ({1})".format(flag, why)
                )
    return errors


def _cmd_chaos(args):
    errors = _chaos_flag_errors(args)
    if errors:
        args._chaos_parser.error("; ".join(errors))
    duration = args.duration
    if duration is None:
        duration = 12.0 if args.live else 240.0
    interval = args.interval
    if interval is None:
        interval = 0.25 if args.live else 8.0
    procs = ["p{0}".format(i) for i in range(1, args.processes + 1)]
    plan = _build_chaos_plan(args, procs, duration)
    dvs_factory = None
    if args.broken:
        from repro.dvs.ablation import NoMajorityDvsLayer

        dvs_factory = NoMajorityDvsLayer
    if args.live:
        return _cmd_chaos_live(args, procs, plan, dvs_factory, duration,
                               interval)
    from repro.faults import run_chaos
    from repro.faults.harness import find_and_shrink

    result = run_chaos(
        procs,
        seed=args.seed,
        plan=plan,
        duration=duration,
        broadcast_interval=interval,
        dvs_factory=dvs_factory,
        log_limit=args.log_limit,
    )
    print("chaos: {0} processes, seed {1}, {2} fault ops, "
          "{3:.0f} sim time units".format(
              len(procs), args.seed, len(plan), result.stats["sim_time"]))
    print("log digest: {0}".format(result.digest))
    for key in ("attempted_views", "broadcasts", "deliveries",
                "cb_broadcasts", "cb_deliveries",
                "wire_sends", "drops", "violations"):
        if key in result.stats:
            print("  {0}: {1}".format(key, result.stats[key]))
    if result.ok:
        print("no safety violations: DVS 4.1 intersection, TO "
              "prefix-consistency and CB causal order held throughout")
        return 0
    print()
    print("SAFETY VIOLATION: {0}".format(result.violation.summary()))
    if args.no_shrink:
        return 1
    print("shrinking the fault schedule (delta debugging)...")
    repro_case = find_and_shrink(
        result,
        max_probes=args.max_probes,
        duration=duration,
        broadcast_interval=interval,
        dvs_factory=dvs_factory,
    )
    if dvs_factory is not None:
        repro_case.extra_args["broken"] = True
    print(repro_case.describe())
    return 1


def _cmd_chaos_live(args, procs, plan, dvs_factory, duration, interval):
    from repro.runtime.chaos import run_live_chaos

    result = run_live_chaos(
        procs,
        plan=plan,
        duration=duration,
        broadcast_interval=interval,
        dvs_factory=dvs_factory,
        hb_interval=(
            0.05 if args.hb_interval is None else args.hb_interval
        ),
        hb_timeout=(
            0.25 if args.hb_timeout is None else args.hb_timeout
        ),
        fault_seed=args.seed,
    )
    print("chaos --live: {0} processes on loopback TCP, {1} fault ops, "
          "{2:.1f}s".format(len(procs), len(plan), duration))
    for key in ("attempted_views", "broadcasts", "deliveries",
                "cb_broadcasts", "cb_deliveries",
                "workload_bcasts", "trace_events", "violations"):
        if key in result.stats:
            print("  {0}: {1}".format(key, result.stats[key]))
    faultnet = result.stats.get("faultnet", {})
    for key in ("injected_drops", "injected_copies", "delayed_sends",
                "blocked_recvs"):
        if key in faultnet:
            print("  faultnet.{0}: {1}".format(key, faultnet[key]))
    if args.record:
        result.trace.save(args.record)
        print("trace recorded to {0} ({1} events); replay with: "
              "python -m repro replay {0}".format(
                  args.record, len(result.trace)))
    if result.ok:
        print("no safety violations: DVS 4.1 intersection, TO "
              "prefix-consistency and CB causal order held throughout")
        return 0
    print()
    print("SAFETY VIOLATION: {0}".format(result.violations[0].summary()))
    from repro.checking.replay import replay_trace, shrink_replay

    replayed = replay_trace(result.trace)
    if replayed.ok:
        print("deterministic replay did NOT reproduce the violation -- "
              "the recording cut missed an input (file a bug)")
        return 1
    print("deterministic replay reproduces it: {0}".format(
        replayed.violations[0].summary()))
    if args.no_shrink:
        return 1
    print("shrinking the trace (delta debugging)...")
    minimal, probes, final = shrink_replay(
        result.trace, max_probes=args.max_probes,
        prop=replayed.violations[0].prop,
    )
    print("minimal counterexample: {0} of {1} events ({2} probes)".format(
        len(minimal), len(result.trace), probes))
    print(minimal.describe(limit=40))
    print("violation: {0}".format(final.violations[0].summary()))
    if args.record:
        path = args.record + ".min"
        minimal.save(path)
        print("minimal trace written to {0}; replay: "
              "python -m repro replay {0}".format(path))
    return 1


def _cmd_replay(args):
    from repro.obs.record import ReplayTrace, TraceError

    try:
        trace = ReplayTrace.load(args.trace)
    except TraceError as exc:
        print("cannot load trace: {0}".format(exc))
        return 2
    except OSError as exc:
        print("cannot read {0}: {1}".format(args.trace, exc))
        return 2
    from repro.checking.replay import (
        check_replay_determinism,
        replay_trace,
        shrink_replay,
    )

    result = replay_trace(trace)
    print("replay: {0} events over {1} processes "
          "(dvs={2}, source={3})".format(
              len(trace), len(trace.processes), trace.dvs, trace.source))
    for key in ("dispatched", "skipped", "attempted_views", "deliveries",
                "violations", "layer_errors"):
        if key in result.stats:
            print("  {0}: {1}".format(key, result.stats[key]))
    print("replay digest: {0}".format(result.digest))
    if args.check_determinism:
        check_replay_determinism(trace)
        print("determinism: two replays produced identical digests "
              "and delivery orders")
    if result.ok:
        print("no safety violations on replay")
        return 0
    print()
    print("SAFETY VIOLATION: {0}".format(result.violations[0].summary()))
    if not args.shrink:
        return 1
    print("shrinking the trace (delta debugging)...")
    minimal, probes, final = shrink_replay(
        trace, max_probes=args.max_probes,
        prop=result.violations[0].prop,
    )
    print("minimal counterexample: {0} of {1} events ({2} probes)".format(
        len(minimal), len(trace), probes))
    print(minimal.describe(limit=40))
    print("violation: {0}".format(final.violations[0].summary()))
    if args.output:
        minimal.save(args.output)
        print("minimal trace written to {0}".format(args.output))
    return 1


def _changed_python_files(base):
    """Python files touched vs ``base`` plus untracked ones, per git.

    Paths come back absolute: git prints them relative to the repo
    toplevel, which need not be the working directory."""
    import os
    import subprocess

    def git(*argv):
        proc = subprocess.run(
            ("git",) + argv, capture_output=True, text=True, check=False
        )
        if proc.returncode != 0:
            raise SystemExit("lint --changed: 'git {0}' failed: {1}".format(
                " ".join(argv), proc.stderr.strip()
            ))
        return proc.stdout

    toplevel = git("rev-parse", "--show-toplevel").strip()
    files = set()
    for listing in (
        git("diff", "--name-only", base, "--"),
        git("ls-files", "--others", "--exclude-standard",
            "--full-name", toplevel),
    ):
        files.update(
            os.path.join(toplevel, line.strip())
            for line in listing.splitlines()
            if line.strip().endswith(".py")
        )
    return sorted(files)


def _cmd_lint(args):
    from repro.lint import RULES, LintConfig, lint_paths

    if args.list_rules:
        for rule in RULES.values():
            print("{0} {1:28s} [{2}] {3}".format(
                rule.id, rule.name, rule.lint_pass, rule.summary
            ))
        return 0
    config = LintConfig()
    if args.select:
        config = LintConfig(select=frozenset(
            rule.strip()
            for spec in args.select
            for rule in spec.split(",")
            if rule.strip()
        ))
    focus = None
    if args.changed:
        focus = _changed_python_files(args.changed_base)
        if not focus:
            print("lint: no python files changed against {0}".format(
                args.changed_base
            ))
            return 0
    paths = args.paths or ["src/repro"]
    cache_dir = None if args.no_cache else args.cache_dir
    if args.changed_only and cache_dir is None:
        raise SystemExit("lint: --changed-only requires the cache "
                         "(drop --no-cache)")
    report = lint_paths(
        paths, config=config, focus=focus, cache_dir=cache_dir,
        jobs=args.jobs, changed_only=args.changed_only,
    )
    if focus is not None:
        print("lint: focused on {0} changed file(s) + {1} call-graph "
              "neighbor(s)".format(
                  len(report.engine["focus"]["files"]),
                  len(report.engine["focus"]["neighbors"]),
              ))
    cache_stats = report.engine.get("cache")
    if cache_stats is not None:
        print("lint: cache {0} hit(s), {1} miss(es), {2} file(s) "
              "analyzed".format(cache_stats["hits"],
                                cache_stats["misses"],
                                cache_stats["analyzed"]))
    if args.baseline:
        import json as _json

        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline_data = _json.load(handle)
        if args.prune_baseline:
            from repro.lint.report import prune_baseline

            kept, pruned = prune_baseline(
                baseline_data, report.findings
            )
            if pruned:
                if isinstance(baseline_data, dict):
                    baseline_data["findings"] = kept
                else:
                    baseline_data = kept
                with open(args.baseline, "w",
                          encoding="utf-8") as handle:
                    _json.dump(baseline_data, handle, indent=2)
                    handle.write("\n")
            print("lint: baseline pruned {0} retired entr{1}".format(
                len(pruned), "y" if len(pruned) == 1 else "ies"
            ))
        report = report.apply_baseline(baseline_data)
    elif args.prune_baseline:
        raise SystemExit("lint: --prune-baseline requires --baseline")
    if args.format == "json":
        rendered = report.to_json()
    elif args.format == "sarif":
        rendered = report.to_sarif()
    else:
        rendered = report.to_text()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        if args.format in ("json", "sarif"):
            # Keep the human-readable summary on stdout even when the
            # machine-readable artifact goes to a file (CI does this).
            print(report.to_text())
    else:
        print(rendered)
    return 0 if report.ok else 1


def _cmd_serve(args):
    from repro.runtime.serve import cmd_serve

    return cmd_serve(args)


def _render_trace_summary(data):
    from repro.analysis import render_table

    summary = data["summary"]
    rows = []
    for stage in ("wire", "vs", "dvs", "to", "cb", "total"):
        stats = summary["stages"].get(stage)
        if stats is None:
            continue
        rows.append([
            stage,
            "{0:.3f}".format(stats["p50_ms"]),
            "{0:.3f}".format(stats["mean_ms"]),
            "{0:.3f}".format(stats["p95_ms"]),
            "{0:.3f}".format(stats["max_ms"]),
        ])
    print(render_table(
        ["stage", "p50 ms", "mean ms", "p95 ms", "max ms"],
        rows,
        title="per-stage delivery latency: {0} deliveries, "
              "{1} view span(s), {2} orphan(s)".format(
                  summary["deliveries"], summary["views"],
                  summary["orphans"]),
    ))


def _traced_sim_run(args):
    from repro.gcs.cluster import Cluster

    procs = ["p{0}".format(i + 1) for i in range(args.processes)]
    cluster = Cluster(procs, seed=args.seed, obs=True)
    cluster.start().settle(max_time=500.0)
    for i in range(args.requests):
        ordering = "to" if i % 2 == 0 else "cb"
        cluster.bcast(procs[i % len(procs)], ("req", i), ordering=ordering)
    cluster.settle(max_time=10000.0)
    print("traced simulated run: {0} processes, {1} requests, "
          "seed {2}".format(args.processes, args.requests, args.seed))
    return cluster.obs.tracer.to_json_dict()


def _traced_live_run(args):
    from repro.apps.kv_store import KvReplica
    from repro.runtime.cluster import RuntimeCluster

    pids = ["n{0}".format(i + 1) for i in range(args.processes)]
    cluster = RuntimeCluster(
        pids, app_factory=lambda node: KvReplica(node.to), obs=True,
    )
    with cluster:
        cluster.wait_formation(timeout=args.timeout)
        for i in range(args.requests):
            pid = pids[i % len(pids)]
            cluster.call_app(
                pid,
                lambda app, i=i: app.put(
                    "k{0}".format(i), "v{0}".format(i)
                ),
            )
        cluster.wait_until(
            lambda: all(
                cluster.app(pid).log_length >= args.requests
                for pid in pids
            ),
            timeout=args.timeout,
            what="{0} requests applied everywhere".format(args.requests),
        )
        # The same request count again over the causal tier, so the
        # stage table shows both orderings side by side.
        for i in range(args.requests):
            cluster.bcast(pids[i % len(pids)], ("pres", i), ordering="cb")
        cluster.wait_until(
            lambda: all(
                sum(1 for a in cluster.log.actions
                    if a.name == "cb_brcv" and a.params[2] == pid)
                >= args.requests
                for pid in pids
            ),
            timeout=args.timeout,
            what="{0} CB casts delivered everywhere".format(args.requests),
        )
        data = cluster.trace_snapshot()
    print("traced live run: {0} nodes on loopback TCP, "
          "{1} requests".format(args.processes, args.requests))
    return data


def _cmd_trace(args):
    data = _traced_live_run(args) if args.live else _traced_sim_run(args)
    _render_trace_summary(data)
    if args.output:
        import json as _json

        with open(args.output, "w", encoding="utf-8") as handle:
            _json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("trace JSON written to {0}".format(args.output))
    return 0 if not data["summary"]["orphans"] else 1


def _format_metric(snap):
    if snap["type"] == "histogram":
        return "n={0} p50={1:.6g} p95={2:.6g} max={3:.6g}".format(
            snap["count"], snap["p50"] or 0, snap["p95"] or 0,
            snap["max"] or 0,
        )
    if snap["type"] == "gauge":
        return "{0} (high {1})".format(snap["value"], snap["high"])
    return str(snap["value"])


def _cmd_metrics(args):
    from repro.analysis import render_table
    from repro.apps.kv_store import KvReplica
    from repro.runtime.cluster import RuntimeCluster

    pids = ["n{0}".format(i + 1) for i in range(args.processes)]
    cluster = RuntimeCluster(
        pids, app_factory=lambda node: KvReplica(node.to), obs=True,
    )
    with cluster:
        cluster.wait_formation(timeout=args.timeout)
        for i in range(args.requests):
            pid = pids[i % len(pids)]
            cluster.call_app(
                pid,
                lambda app, i=i: app.put(
                    "k{0}".format(i), "v{0}".format(i)
                ),
            )
        cluster.wait_until(
            lambda: all(
                cluster.app(pid).log_length >= args.requests
                for pid in pids
            ),
            timeout=args.timeout,
            what="{0} requests applied everywhere".format(args.requests),
        )
        snapshot = cluster.obs_snapshot()
    rows = [
        [name, snap["type"], _format_metric(snap)]
        for name, snap in sorted(snapshot["metrics"].items())
    ]
    print(render_table(
        ["metric", "type", "value"], rows,
        title="live loopback metrics: {0} nodes, {1} requests".format(
            args.processes, args.requests),
    ))
    if args.output:
        import json as _json

        with open(args.output, "w", encoding="utf-8") as handle:
            _json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("metrics snapshot written to {0}".format(args.output))
    return 0


def _cmd_demo(args):
    import examples.partitioned_ledger as demo  # noqa: F401 - optional

    demo.main()
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Dynamic View-Oriented Group Communication "
            "Service' (PODC 1998)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    verify = sub.add_parser("verify", help="check invariants and theorems")
    verify.add_argument("--seeds", type=int, default=3)
    verify.add_argument("--steps", type=int, default=800)
    verify.add_argument("--processes", type=int, default=3)
    verify.set_defaults(func=_cmd_verify)

    availability = sub.add_parser(
        "availability", help="print the E6 availability tables"
    )
    availability.add_argument("--steps", type=int, default=400)
    availability.add_argument("--seed", type=int, default=3)
    availability.add_argument("--processes", type=int, default=7)
    availability.set_defaults(func=_cmd_availability)

    explore = sub.add_parser(
        "explore", help="bounded exhaustive exploration"
    )
    explore.add_argument("--processes", type=int, default=2)
    explore.add_argument("--epochs", type=int, default=1)
    explore.add_argument("--max-states", type=int, default=60000)
    explore.set_defaults(func=_cmd_explore)

    isis = sub.add_parser(
        "isis", help="find an Isis same-messages violation"
    )
    isis.add_argument("--seeds", type=int, default=20)
    isis.add_argument("--steps", type=int, default=2500)
    isis.set_defaults(func=_cmd_isis)

    chaos = sub.add_parser(
        "chaos",
        help="nemesis fault injection with online safety monitoring",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--processes", type=int, default=5)
    chaos.add_argument(
        "--plan",
        choices=["storm", "churn", "flaky", "bridge", "mixed"],
        default="mixed",
        help="seeded nemesis plan family",
    )
    chaos.add_argument(
        "--plan-json",
        default=None,
        help="replay an explicit plan (as printed by a shrunk repro)",
    )
    chaos.add_argument("--duration", type=float, default=None,
                       help="run length: sim time units, or seconds with "
                            "--live (default: 240 sim / 12 live)")
    chaos.add_argument("--interval", type=float, default=None,
                       help="workload broadcast interval (default: 8 sim "
                            "time units / 0.25s live)")
    chaos.add_argument(
        "--broken",
        action="store_true",
        help="ablate the quorum check (expect a monitor violation)",
    )
    chaos.add_argument("--no-shrink", action="store_true",
                       help="skip counterexample shrinking on violation")
    chaos.add_argument("--max-probes", type=int, default=200,
                       help="shrinking budget (oracle re-runs)")
    chaos.add_argument(
        "--live", action="store_true",
        help="execute the plan against a real-TCP loopback cluster "
             "(times in seconds) instead of the simulator, recording a "
             "deterministically replayable trace",
    )
    chaos.add_argument("--record", default=None, metavar="PATH",
                       help="[--live only] write the recorded replay "
                            "trace to PATH (see `repro replay`)")
    chaos.add_argument("--hb-interval", type=float, default=None,
                       help="[--live only] heartbeat beacon interval "
                            "in seconds (default 0.05)")
    chaos.add_argument("--hb-timeout", type=float, default=None,
                       help="[--live only] peer liveness timeout in "
                            "seconds (default 0.25)")
    chaos.add_argument("--log-limit", type=int, default=None,
                       help="[sim only] bound the network event log "
                            "(entries kept)")
    chaos.set_defaults(func=_cmd_chaos, _chaos_parser=chaos)

    lint = sub.add_parser(
        "lint",
        help="static analysis: automaton well-formedness, determinism, "
             "cross-process aliasing, thread-boundary races, effect "
             "alias escapes, wire-schema drift, async hazards, "
             "wire-taint flows, protocol typestate, spec conformance",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    lint.add_argument("--format", choices=["text", "json", "sarif"],
                      default="text")
    lint.add_argument("--output", default=None,
                      help="write the report to a file")
    lint.add_argument(
        "--baseline", default=None, metavar="REPORT_JSON",
        help="a previous JSON report; fail only on findings not in it",
    )
    lint.add_argument(
        "--select", action="append", default=[],
        help="comma-separated rule ids to enable (repeatable; "
             "default: all)",
    )
    lint.add_argument(
        "--changed", action="store_true",
        help="report only findings in files changed per git (plus "
             "their call-graph neighbors); the whole tree is still "
             "parsed so interprocedural passes stay sound",
    )
    lint.add_argument(
        "--changed-base", default="HEAD", metavar="REV",
        help="git revision --changed diffs against (default: HEAD)",
    )
    lint.add_argument(
        "--changed-only", action="store_true",
        help="analyze only the dependency cones of files whose "
             "cache cone key missed (implies the result cache); "
             "clean files report their cached findings",
    )
    lint.add_argument(
        "--cache-dir", default=".lint-cache", metavar="DIR",
        help="directory for the per-file result cache "
             "(default: .lint-cache)",
    )
    lint.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache (always analyze everything "
             "from scratch)",
    )
    lint.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fork the passes across N processes (default: 1)",
    )
    lint.add_argument(
        "--prune-baseline", action="store_true",
        help="rewrite --baseline in place, dropping retired entries "
             "(unregistered rules, rotated version contexts)",
    )
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule registry and exit")
    lint.set_defaults(func=_cmd_lint)

    serve = sub.add_parser(
        "serve",
        help="run the stack on real TCP sockets (loopback demo or one "
             "node of a deployment)",
    )
    serve.add_argument("--processes", type=int, default=3,
                       help="loopback mode: cluster size")
    serve.add_argument("--requests", type=int, default=60,
                       help="loopback mode: KV puts to order")
    serve.add_argument("--no-kill", action="store_true",
                       help="loopback mode: skip the mid-run crash/rejoin")
    serve.add_argument("--timeout", type=float, default=30.0,
                       help="loopback mode: bound on each wait")
    serve.add_argument("--pid", default=None,
                       help="single-node mode: this process id")
    serve.add_argument("--bind", default=None,
                       help="single-node mode: HOST:PORT to listen on")
    serve.add_argument(
        "--peer", action="append", default=[],
        help="single-node mode: PID=HOST:PORT (repeatable)",
    )
    serve.add_argument("--duration", type=float, default=None,
                       help="single-node mode: stop after this many "
                            "seconds (default: run until Ctrl-C)")
    serve.add_argument("--hb-interval", type=float, default=0.05,
                       help="heartbeat beacon interval (seconds)")
    serve.add_argument("--hb-timeout", type=float, default=None,
                       help="peer liveness timeout (default 4x interval)")
    serve.add_argument("--metrics-json", default=None, metavar="PATH",
                       help="loopback mode: arm observability and write "
                            "the metrics snapshot here")
    serve.add_argument("--trace-json", default=None, metavar="PATH",
                       help="loopback mode: arm observability and write "
                            "the stitched trace here")
    serve.set_defaults(func=_cmd_serve)

    trace = sub.add_parser(
        "trace",
        help="run a traced workload and print the per-stage latency "
             "breakdown stitched from causal spans",
    )
    trace.add_argument("--processes", type=int, default=3)
    trace.add_argument("--requests", type=int, default=30,
                       help="TO broadcasts to trace")
    trace.add_argument("--seed", type=int, default=0,
                       help="simulated mode: network schedule seed")
    trace.add_argument("--live", action="store_true",
                       help="trace a real loopback TCP cluster instead "
                            "of the simulator")
    trace.add_argument("--timeout", type=float, default=30.0,
                       help="live mode: bound on each wait")
    trace.add_argument("--output", default=None, metavar="PATH",
                       help="write the full trace JSON here")
    trace.set_defaults(func=_cmd_trace)

    metrics = sub.add_parser(
        "metrics",
        help="run the live loopback workload with the metrics registry "
             "armed and print it",
    )
    metrics.add_argument("--processes", type=int, default=3)
    metrics.add_argument("--requests", type=int, default=30,
                         help="KV puts to order")
    metrics.add_argument("--timeout", type=float, default=30.0,
                         help="bound on each wait")
    metrics.add_argument("--output", default=None, metavar="PATH",
                         help="write the metrics snapshot JSON here")
    metrics.set_defaults(func=_cmd_metrics)

    replay = sub.add_parser(
        "replay",
        help="feed a trace recorded by `repro chaos --live --record` "
             "through the deterministic stack under the safety monitor",
    )
    replay.add_argument("trace", help="path to the recorded trace file")
    replay.add_argument("--shrink", action="store_true",
                        help="on violation, ddmin the trace to a minimal "
                             "counterexample")
    replay.add_argument("--max-probes", type=int, default=200,
                        help="shrinking budget (replay re-runs)")
    replay.add_argument("--output", default=None, metavar="PATH",
                        help="write the minimal shrunk trace here")
    replay.add_argument("--check-determinism", action="store_true",
                        help="replay twice and assert identical digests "
                             "and delivery orders")
    replay.set_defaults(func=_cmd_replay)

    demo = sub.add_parser("demo", help="partitioned-ledger demo")
    demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
