"""The static view-oriented group communication service VS (Figure 1).

This is the modified version of the PODC'97 [12] VS specification used by
the paper (Section 3): the initial view is the distinguished ``v0`` rather
than the whole universe, and views are created in identifier order.
"""

from repro.vs.invariants import vs_invariants
from repro.vs.spec import VSSpec

__all__ = ["VSSpec", "vs_invariants"]
