"""VS: the static view-oriented group communication spec (Figure 1).

Signature (paper names on the left, action names here on the right)::

    Input:    VS-GPSND(m)_p            vs_gpsnd(m, p)
    Output:   VS-GPRCV(m)_{p,q}        vs_gprcv(m, p, q)
              VS-SAFE(m)_{p,q}         vs_safe(m, p, q)
              VS-NEWVIEW(v)_p          vs_newview(v, p)
    Internal: VS-CREATEVIEW(v)         vs_createview(v)
              VS-ORDER(m, p, g)        vs_order(m, p, g)

The "choose g" / "choose g, P" parameters of VS-GPRCV / VS-SAFE are
determined (g must equal ``current-viewid[q]``; P is unique by
Invariant 3.1), so they are not action parameters.

View creation is the specification's internal nondeterminism: VS may create
*arbitrary* views with increasing identifiers.  To make that
nondeterminism executable, the automaton is given a finite ``view_pool``
from which ``vs_createview`` candidates are drawn; the scheduler (or an
adversary's weighting) resolves the choice.  The pool only bounds the
*analysis*, not the semantics: ``apply`` accepts any view satisfying the
precondition.
"""

from repro.core.sequences import head, nth, remove_head
from repro.core.tables import Table
from repro.core.viewids import vid_gt
from repro.ioa.action import act
from repro.ioa.automaton import TransitionAutomaton
from repro.ioa.state import State


class VSState(State):
    """State of VS, named as in Figure 1.

    - ``created``: set of views, initially ``{v0}``;
    - ``current_viewid[p]``: ``G_⊥``, ``g0`` for members of ``P0``;
    - ``queue[g]``: sequence of ``(m, p)``;
    - ``pending[(p, g)]``: sequence of ``m``;
    - ``next[(p, g)]``, ``next_safe[(p, g)]``: positive integers, init 1.
    """

    def __init__(self, initial_view, universe):
        super().__init__(
            created={initial_view},
            current_viewid={
                p: (initial_view.id if p in initial_view.set else None)
                for p in sorted(universe)
            },
            queue=Table(list),
            pending=Table(list),
            next=Table(lambda: 1),
            next_safe=Table(lambda: 1),
        )


class VSSpec(TransitionAutomaton):
    """The VS service automaton (Figure 1, modified version)."""

    inputs = frozenset({"vs_gpsnd"})
    outputs = frozenset({"vs_gprcv", "vs_safe", "vs_newview"})
    internals = frozenset({"vs_createview", "vs_order"})

    def __init__(self, initial_view, universe=None, view_pool=(), name="vs"):
        self.name = name
        self.initial_view = initial_view
        self.view_pool = tuple(view_pool)
        members = set(initial_view.set)
        for view in self.view_pool:
            members |= view.set
        if universe is not None:
            members |= set(universe)
        self.universe = frozenset(members)

    def initial_state(self):
        return VSState(self.initial_view, self.universe)

    # -- VS-CREATEVIEW(v) ----------------------------------------------------

    def pre_vs_createview(self, state, v):
        return all(vid_gt(v.id, w.id) for w in state.created)

    def eff_vs_createview(self, state, v):
        state.created.add(v)

    def cand_vs_createview(self, state):
        for view in self.view_pool:
            if self.pre_vs_createview(state, view):
                yield act("vs_createview", view)

    # -- VS-NEWVIEW(v)_p -----------------------------------------------------

    def pre_vs_newview(self, state, v, p):
        return (
            v in state.created
            and p in v.set
            and vid_gt(v.id, state.current_viewid[p])
        )

    def eff_vs_newview(self, state, v, p):
        state.current_viewid[p] = v.id

    def cand_vs_newview(self, state):
        for view in sorted(state.created, key=lambda w: w.id):
            for p in sorted(view.set):
                if vid_gt(view.id, state.current_viewid[p]):
                    yield act("vs_newview", view, p)

    # -- VS-GPSND(m)_p (input) -----------------------------------------------

    def eff_vs_gpsnd(self, state, m, p):
        g = state.current_viewid.get(p)
        if g is not None:
            state.pending.at((p, g)).append(m)

    # -- VS-ORDER(m, p, g) ---------------------------------------------------

    def pre_vs_order(self, state, m, p, g):
        return head(state.pending.get((p, g))) == m

    def eff_vs_order(self, state, m, p, g):
        remove_head(state.pending.at((p, g)))
        state.queue.at(g).append((m, p))

    def cand_vs_order(self, state):
        for (p, g), queue in sorted(
            state.pending.items(), key=lambda kv: repr(kv[0])
        ):
            m = head(queue)
            if m is not None:
                yield act("vs_order", m, p, g)

    # -- VS-GPRCV(m)_{p,q} (choose g) ------------------------------------------

    def pre_vs_gprcv(self, state, m, p, q):
        g = state.current_viewid.get(q)
        if g is None:
            return False
        return nth(state.queue.get(g), state.next.get((q, g))) == (m, p)

    def eff_vs_gprcv(self, state, m, p, q):
        g = state.current_viewid[q]
        state.next[(q, g)] = state.next.get((q, g)) + 1

    def cand_vs_gprcv(self, state):
        for q in sorted(self.universe):
            g = state.current_viewid.get(q)
            if g is None:
                continue
            entry = nth(state.queue.get(g), state.next.get((q, g)))
            if entry is not None:
                m, p = entry
                yield act("vs_gprcv", m, p, q)

    # -- VS-SAFE(m)_{p,q} (choose g, P) -----------------------------------------

    def _safe_view(self, state, q):
        """The view ``<g, P> ∈ created`` with ``g = current-viewid[q]``."""
        g = state.current_viewid.get(q)
        if g is None:
            return None
        for view in state.created:
            if view.id == g:
                return view
        return None

    def pre_vs_safe(self, state, m, p, q):
        view = self._safe_view(state, q)
        if view is None:
            return False
        g = view.id
        ns = state.next_safe.get((q, g))
        if nth(state.queue.get(g), ns) != (m, p):
            return False
        return all(state.next.get((r, g)) > ns for r in view.set)

    def eff_vs_safe(self, state, m, p, q):
        g = state.current_viewid[q]
        state.next_safe[(q, g)] = state.next_safe.get((q, g)) + 1

    def cand_vs_safe(self, state):
        for q in sorted(self.universe):
            view = self._safe_view(state, q)
            if view is None:
                continue
            g = view.id
            ns = state.next_safe.get((q, g))
            entry = nth(state.queue.get(g), ns)
            if entry is None:
                continue
            if all(state.next.get((r, g)) > ns for r in view.set):
                m, p = entry
                yield act("vs_safe", m, p, q)
