"""Invariants of the VS specification.

Invariant 3.1 is the one the paper states; the others are sanity properties
implicit in the figure (used to validate our executable encoding and the
concrete stack).
"""

from repro.ioa.invariants import InvariantSuite


def invariant_3_1(state):
    """Invariant 3.1 (VS): created views have unique identifiers.

    If ``v, v' ∈ created`` and ``v.id = v'.id`` then ``v = v'``.
    """
    by_id = {}
    for view in state.created:
        other = by_id.setdefault(view.id, view)
        assert other == view, (
            "two distinct created views share id {0}: {1} vs {2}".format(
                view.id, other, view
            )
        )
    return True


def current_view_is_created(state):
    """Every non-⊥ ``current-viewid[p]`` names a created view."""
    created_ids = {view.id for view in state.created}
    for p, g in state.current_viewid.items():
        assert g is None or g in created_ids, (
            "current-viewid[{0}] = {1} names no created view".format(p, g)
        )
    return True


def pointers_within_queue(state):
    """``next`` and ``next-safe`` never run past ``|queue[g]| + 1``."""
    for (q, g), n in state.next.items():
        assert n <= len(state.queue.get(g)) + 1, (
            "next[{0},{1}] = {2} beyond queue".format(q, g, n)
        )
    for (q, g), n in state.next_safe.items():
        assert n <= len(state.queue.get(g)) + 1, (
            "next-safe[{0},{1}] = {2} beyond queue".format(q, g, n)
        )
    return True


def safe_behind_delivery(state):
    """``next-safe[q, g] <= next[q, g]``: safe never outruns delivery.

    Not stated explicitly in the paper, but immediate from the
    preconditions (VS-SAFE at q for position k requires everyone's --
    including q's own -- ``next`` pointer past k).
    """
    for (q, g), ns in state.next_safe.items():
        assert ns <= state.next.get((q, g)), (
            "next-safe[{0},{1}] = {2} > next = {3}".format(
                q, g, ns, state.next.get((q, g))
            )
        )
    return True


def vs_invariants():
    """The invariant suite for VS executions."""
    return InvariantSuite(
        {
            "VS 3.1 unique view ids": invariant_3_1,
            "VS current view created": current_view_is_created,
            "VS pointers within queue": pointers_within_queue,
            "VS safe behind delivery": safe_behind_delivery,
        }
    )
