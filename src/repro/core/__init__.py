"""Mathematical foundations shared by every subsystem (paper Section 2).

- :mod:`repro.core.viewids` -- the totally ordered set of view identifiers
  ``G`` with least element ``g0``, and comparison helpers that treat the
  bottom element ``None`` as smaller than every identifier;
- :mod:`repro.core.views` -- views ``v = <g, P>`` with ``v.id`` / ``v.set``;
- :mod:`repro.core.sequences` -- the sequence calculus of Section 2
  (prefix, consistency, ``lub``, ``applytoall``);
- :mod:`repro.core.quorums` -- majority and general quorum systems used by
  the static baseline and the dynamic-voting substrate;
- :mod:`repro.core.messages` -- the message universes ``M_c`` (client) and
  the implementation's tagged non-client messages.
"""

from repro.core.messages import InfoMsg, RegisteredMsg, is_client_message
from repro.core.quorums import MajorityQuorums, QuorumSystem, WeightedMajorityQuorums
from repro.core.sequences import (
    applytoall,
    is_consistent,
    is_prefix,
    lub,
)
from repro.core.viewids import (
    G0,
    ViewId,
    vid_ge,
    vid_gt,
    vid_le,
    vid_lt,
    vid_max,
)
from repro.core.views import View, make_view

__all__ = [
    "G0",
    "InfoMsg",
    "MajorityQuorums",
    "QuorumSystem",
    "RegisteredMsg",
    "View",
    "ViewId",
    "WeightedMajorityQuorums",
    "applytoall",
    "is_client_message",
    "is_consistent",
    "is_prefix",
    "lub",
    "make_view",
    "vid_ge",
    "vid_gt",
    "vid_le",
    "vid_lt",
    "vid_max",
]
