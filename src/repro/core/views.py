"""Views: ``v = <g, P>`` with selectors ``v.id`` and ``v.set``.

A view pairs a view identifier with a nonempty membership set (paper
Section 2).  Views are immutable and hashable so that they can live in the
``created`` / ``attempted`` sets of the automata and be used as dictionary
keys.
"""

from dataclasses import dataclass, field
from typing import FrozenSet

from repro.core.viewids import ViewId


@dataclass(frozen=True)
class View:
    """A view ``<g, P>``; ``members`` must be nonempty."""

    id: ViewId
    members: FrozenSet[str] = field(default_factory=frozenset)

    def __post_init__(self):
        if not isinstance(self.members, frozenset):
            object.__setattr__(self, "members", frozenset(self.members))
        if not self.members:
            raise ValueError("a view's membership set must be nonempty")

    @property
    def set(self):
        """Alias matching the paper's ``v.set`` selector."""
        return self.members

    def majority_of(self, other):
        """``|self.set ∩ other.set| > |other.set| / 2``.

        The local check performed by ``VS-TO-DVS_p`` before attempting a
        view (Figure 3): the new view must contain a majority of every view
        in ``use``.
        """
        return len(self.members & other.members) * 2 > len(other.members)

    def intersects(self, other):
        """``self.set ∩ other.set ≠ {}`` (the global DVS requirement)."""
        return bool(self.members & other.members)

    def __str__(self):
        return "<{0},{{{1}}}>".format(self.id, ",".join(sorted(self.members)))

    def __repr__(self):
        return str(self)


def make_view(vid, members):
    """Construct a view from any identifier-like and iterable of members.

    ``vid`` may be a :class:`ViewId` or a bare epoch integer (convenient in
    tests: ``make_view(3, "abc")`` with single-character process names).
    """
    if not isinstance(vid, ViewId):
        vid = ViewId(int(vid))
    return View(vid, frozenset(members))
