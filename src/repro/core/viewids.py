"""View identifiers: the totally ordered set ``G`` with least element ``g0``.

The paper only requires ``G`` to be a totally ordered set with a
distinguished least element.  The spec-level automata could use bare
integers, but the distributed implementations need members of different
partitions to mint *distinct* identifiers without coordination.  We
therefore use pairs ``(epoch, origin)`` ordered lexicographically: a
coordinator picks ``epoch`` larger than every epoch it has seen and
tie-breaks with its own process id.  ``g0 = (0, "")`` is the least element
because process ids are non-empty strings.

The bottom element ``⊥`` (the paper's ``G_⊥``) is represented by ``None``
and compares below every identifier through the ``vid_*`` helpers.
"""

import functools
from dataclasses import dataclass


@functools.total_ordering
@dataclass(frozen=True)
class ViewId:
    """An element of ``G``: lexicographically ordered ``(epoch, origin)``."""

    epoch: int
    origin: str = ""

    def _key(self):
        return (self.epoch, self.origin)

    def __lt__(self, other):
        if not isinstance(other, ViewId):
            return NotImplemented
        return self._key() < other._key()

    def __str__(self):
        if not self.origin:
            return "g{0}".format(self.epoch)
        return "g{0}@{1}".format(self.epoch, self.origin)

    def __repr__(self):
        return str(self)

    def successor(self, origin=""):
        """A fresh identifier strictly greater than this one."""
        return ViewId(self.epoch + 1, origin)


#: The distinguished least element of ``G``.
G0 = ViewId(0, "")


def vid_lt(a, b):
    """``a < b`` over ``G_⊥`` where ``None`` (⊥) is below everything."""
    if b is None:
        return False
    if a is None:
        return True
    return a < b


def vid_le(a, b):
    return a == b or vid_lt(a, b)


def vid_gt(a, b):
    return vid_lt(b, a)


def vid_ge(a, b):
    return vid_le(b, a)


def vid_max(ids):
    """The maximum of an iterable of ``G_⊥`` elements (``None`` allowed).

    Returns ``None`` when the iterable is empty or all-bottom.
    """
    best = None
    for vid in ids:
        if vid_gt(vid, best):
            best = vid
    return best
