"""The sequence calculus of paper Section 2.

Sequences are represented as Python lists (inside mutable automaton states)
or tuples (inside messages and summaries); all functions accept both.  The
paper's 1-based indexing ``a(i)`` is provided by :func:`nth` for the places
where the off-by-one matters (the ``queue[g](next[q,g])`` lookups).
"""


def is_prefix(a, b):
    """``a ≤ b``: there exists c with a + c = b."""
    a = list(a)
    b = list(b)
    return len(a) <= len(b) and b[: len(a)] == a


def is_consistent(collection):
    """A collection of sequences is consistent when pairwise prefix-related."""
    seqs = [list(s) for s in collection]
    for i, a in enumerate(seqs):
        for b in seqs[i + 1:]:
            if not (is_prefix(a, b) or is_prefix(b, a)):
                return False
    return True


def lub(collection):
    """The least upper bound of a consistent collection of sequences.

    Raises ``ValueError`` when the collection is not consistent.
    """
    seqs = [list(s) for s in collection]
    if not seqs:
        return []
    if not is_consistent(seqs):
        raise ValueError("lub of an inconsistent collection")
    return max(seqs, key=len)


def applytoall(f, a):
    """Pointwise application: ``b(i) = f(a(i))`` (paper Section 2)."""
    return [f(x) for x in a]


def nth(a, i):
    """1-based indexing ``a(i)``; returns ``None`` when out of range.

    The automata use lookups like ``queue[g](next[q,g]) = <m, p>`` as
    preconditions; returning ``None`` out of range makes those
    preconditions simply false rather than errors.
    """
    if 1 <= i <= len(a):
        return a[i - 1]
    return None


def head(a):
    """The head ``a(1)`` of a nonempty sequence, else ``None``."""
    return a[0] if a else None


def remove_head(a):
    """Queue ``remove``: delete and return the head of a mutable list."""
    return a.pop(0)
