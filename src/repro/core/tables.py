"""Sparse state tables with canonical fingerprints.

The paper's automata index state by unbounded sets (``pending[p, g]`` for
every ``g ∈ G``), with default values (empty sequence, counter 1).  A
:class:`Table` stores only the explicitly written entries but *compares* --
via its fingerprint -- as the total function it denotes: entries equal to
the default are invisible.  This keeps state equality (used by the
refinement checker and the model checker) independent of which default
entries happen to have been materialized.
"""

import copy

from repro.ioa.state import fingerprint as _fingerprint


class Table:
    """A total function ``key -> value`` with a default, sparsely stored."""

    def __init__(self, default_factory, items=None):
        self._default_factory = default_factory
        self._data = dict(items or {})

    # -- Reads ---------------------------------------------------------------

    def get(self, key):
        """The value at ``key``; a *fresh* default when absent.

        Mutating the returned default does not write into the table; use
        :meth:`at` for mutation.
        """
        if key in self._data:
            return self._data[key]
        return self._default_factory()

    def __contains__(self, key):
        return key in self._data

    def keys(self):
        return self._data.keys()

    def items(self):
        return self._data.items()

    def nondefault_items(self):
        """Entries whose value differs from the default (canonical view)."""
        default_print = _fingerprint(self._default_factory())
        return {
            k: v
            for k, v in self._data.items()
            if _fingerprint(v) != default_print
        }

    # -- Writes --------------------------------------------------------------

    def at(self, key):
        """The value at ``key``, materializing the default if absent.

        Use for in-place mutation: ``table.at(p, g).append(m)`` -- wait,
        keys are single values; composite keys are tuples:
        ``table.at((p, g)).append(m)``.
        """
        if key not in self._data:
            self._data[key] = self._default_factory()
        return self._data[key]

    def set(self, key, value):
        self._data[key] = value

    def __setitem__(self, key, value):
        self._data[key] = value

    # -- Value semantics -------------------------------------------------------

    def fingerprint(self):
        items = [
            (_fingerprint(k), _fingerprint(v))
            for k, v in self.nondefault_items().items()
        ]
        items.sort(key=lambda kv: repr(kv[0]))
        return ("table", tuple(items))

    def __eq__(self, other):
        if not isinstance(other, Table):
            return NotImplemented
        return self.fingerprint() == other.fingerprint()

    def __hash__(self):
        return hash(self.fingerprint())

    def __deepcopy__(self, memo):
        clone = Table(self._default_factory)
        clone._data = copy.deepcopy(self._data, memo)
        return clone

    def __repr__(self):
        entries = ", ".join(
            "{0!r}: {1!r}".format(k, v)
            for k, v in sorted(
                self.nondefault_items().items(), key=lambda kv: repr(kv[0])
            )
        )
        return "Table({" + entries + "})"
