"""Message universes.

The paper uses ``M_c`` for client messages and, inside the implementation,
``M = M_c ∪ ({"info"} × V × 2^V) ∪ {"registered"}``.  Client messages are
arbitrary hashable Python values; the implementation's tagged non-client
messages are the two dataclasses below.  :func:`is_client_message`
implements the ``purge`` test of the refinement (Figure 4), which deletes
exactly the "info" and "registered" messages.
"""

from dataclasses import dataclass, field
from typing import FrozenSet

from repro.core.views import View


class ProtocolMsg:
    """Marker base class for non-client (implementation) messages.

    Anything inheriting from this is removed by the refinement's
    ``purge`` and is invisible to clients.  Extensions (e.g. the SX-DVS
    "state" messages) subclass this to ride over VS without polluting the
    client message universe ``M_c``.
    """


@dataclass(frozen=True)
class InfoMsg(ProtocolMsg):
    """The ``<"info", act, amb>`` message of ``VS-TO-DVS_p`` (Figure 3)."""

    act: View
    amb: FrozenSet[View] = field(default_factory=frozenset)

    def __post_init__(self):
        if not isinstance(self.amb, frozenset):
            object.__setattr__(self, "amb", frozenset(self.amb))

    def __str__(self):
        return "info(act={0}, amb={{{1}}})".format(
            self.act, ",".join(sorted(str(v) for v in self.amb))
        )


@dataclass(frozen=True)
class RegisteredMsg(ProtocolMsg):
    """The ``<"registered">`` message of ``VS-TO-DVS_p`` (Figure 3)."""

    def __str__(self):
        return "registered"


def is_client_message(message):
    """Whether ``message ∈ M_c`` (i.e. survives the refinement's purge)."""
    return not isinstance(message, ProtocolMsg)


def purge(queue):
    """Delete "info"/"registered" entries (Figure 4).

    Works both on plain message sequences and on sequences of
    ``(message, sender)`` pairs, matching the two shapes the refinement
    applies it to (``pending``/``msgs-to-vs`` vs ``queue``).
    """
    result = []
    for entry in queue:
        message = entry[0] if isinstance(entry, tuple) else entry
        if is_client_message(message):
            result.append(entry)
    return result


def purgesize(queue):
    """The number of "info"/"registered" entries in ``queue`` (Figure 4)."""
    count = 0
    for entry in queue:
        message = entry[0] if isinstance(entry, tuple) else entry
        if not is_client_message(message):
            count += 1
    return count
