"""Quorum systems for static primary definitions.

The paper (Section 1) contrasts the *static* notion of primary -- a view
whose membership comprises a majority of a fixed universe, or more
generally a quorum in a predefined quorum set in which all pairs of quorums
intersect -- with the *dynamic* notion that DVS specifies.  These classes
implement the static notion; they are the baseline in the availability
experiments (E6) and in the static-primary comparison application.
"""

from abc import ABC, abstractmethod


class QuorumSystem(ABC):
    """A predicate selecting the primary-capable membership sets."""

    @abstractmethod
    def is_quorum(self, members):
        """Whether ``members`` (an iterable of process ids) is a quorum."""

    def check_intersection(self, candidate_sets):
        """Verify the defining pairwise-intersection property on samples.

        Utility for tests: every pair of quorums among ``candidate_sets``
        must intersect.
        """
        quorums = [frozenset(s) for s in candidate_sets if self.is_quorum(s)]
        for i, a in enumerate(quorums):
            for b in quorums[i + 1:]:
                if not (a & b):
                    return False
        return True


class MajorityQuorums(QuorumSystem):
    """Majorities of a fixed universe: ``|S| > |universe| / 2``."""

    def __init__(self, universe):
        self.universe = frozenset(universe)
        if not self.universe:
            raise ValueError("the universe must be nonempty")

    def is_quorum(self, members):
        members = frozenset(members) & self.universe
        return len(members) * 2 > len(self.universe)

    def __repr__(self):
        return "MajorityQuorums({0} processes)".format(len(self.universe))


class WeightedMajorityQuorums(QuorumSystem):
    """Weighted voting: a quorum holds strictly more than half the weight.

    Generalizes :class:`MajorityQuorums`; all pairs of quorums intersect
    because two disjoint sets cannot both exceed half the total weight.
    """

    def __init__(self, weights):
        self.weights = dict(weights)
        if not self.weights:
            raise ValueError("weights must be nonempty")
        if any(w < 0 for w in self.weights.values()):
            raise ValueError("weights must be nonnegative")
        self.total = sum(self.weights.values())
        if self.total <= 0:
            raise ValueError("total weight must be positive")

    def is_quorum(self, members):
        weight = sum(self.weights.get(p, 0) for p in set(members))
        return weight * 2 > self.total

    def __repr__(self):
        return "WeightedMajorityQuorums({0} processes)".format(
            len(self.weights)
        )
