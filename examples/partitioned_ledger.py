"""A totally ordered ledger that survives partitions (the Section 6 app).

Runs the full runtime tower on the network simulator: TO layer over the
dynamic-primary (DVS) layer over the view-synchronous stack.  Five nodes
append entries to a shared ledger; the network splits 3/2, the majority
side keeps committing, the minority stalls; after the merge everyone
converges on one total order including the minority's buffered entries.

Run:  python examples/partitioned_ledger.py
"""

from repro.checking import check_to_trace_properties
from repro.gcs.cluster import Cluster


def show(cluster, pids, label):
    print("\n== {0} ==".format(label))
    for pid in pids:
        entries = [payload for payload, _ in cluster.delivered(pid)]
        primary = cluster.current_primary(pid)
        members = "".join(sorted(primary.set)) if primary else "-"
        print("  {0}: primary={{{1}}} ledger={2}".format(pid, members, entries))


def main():
    procs = list("abcde")
    cluster = Cluster(procs, seed=11).start()
    cluster.settle(max_time=80)

    for i in range(2):
        for pid in procs:
            cluster.bcast(pid, "{0}{1}".format(pid, i))
    cluster.settle(max_time=400)
    show(cluster, procs, "steady state: everyone agrees")

    print("\n-- partition {a,b,c} | {d,e} --")
    cluster.partition({"a", "b", "c"}, {"d", "e"})
    cluster.settle(max_time=120)
    cluster.bcast("a", "a-during-partition")
    cluster.bcast("d", "d-during-partition")
    cluster.settle(max_time=300)
    show(cluster, procs, "partitioned: majority commits, minority stalls")

    print("\n-- heal --")
    cluster.heal()
    cluster.settle(max_time=600)
    show(cluster, procs, "after merge: one order, minority entry included")

    stats = check_to_trace_properties(cluster.log.actions)
    print("\ntotal-order trace properties hold: {0}".format(stats))
    ledgers = {tuple(p for p, _ in cluster.delivered(pid)) for pid in procs}
    assert len(ledgers) == 1, "ledgers diverged!"
    print("all five ledgers identical ({0} entries)".format(
        len(next(iter(ledgers)))
    ))


if __name__ == "__main__":
    main()
