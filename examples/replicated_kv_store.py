"""A replicated key-value store over the full stack (Section 7 direction).

The paper names replicated-data applications as the natural client of
DVS.  This example runs a five-replica key-value store: writes are
totally ordered broadcasts, reads are local.  A partition leaves the
minority side serving stale (but never forked) data; after healing, all
replicas converge.

Run:  python examples/replicated_kv_store.py
"""

from repro.apps import KvStoreCluster


def dump(kv, label):
    print("\n== {0} ==".format(label))
    for pid in kv.cluster.processes:
        print("  {0}: {1}".format(pid, kv.replica(pid).snapshot()))


def main():
    kv = KvStoreCluster(list("abcde"), seed=9).start()
    kv.settle(max_time=80)

    kv.replica("a").put("motd", "hello")
    kv.replica("b").put("owner", "b")
    kv.settle(max_time=300)
    dump(kv, "after initial writes")

    print("\n-- partition {a,b,c} | {d,e} --")
    kv.partition({"a", "b", "c"}, {"d", "e"})
    kv.settle(max_time=120)
    kv.replica("a").put("motd", "updated-by-majority")
    kv.replica("d").put("minority-note", "queued")
    kv.settle(max_time=300)
    dump(kv, "during partition (d/e stale but consistent)")

    print("\n-- heal --")
    kv.heal()
    kv.settle(max_time=600)
    dump(kv, "after merge (converged, minority write applied)")

    assert kv.consistent(), "replica logs diverged!"
    snapshots = {
        tuple(sorted(kv.replica(p).snapshot().items()))
        for p in kv.cluster.processes
    }
    assert len(snapshots) == 1
    print("\nall replicas converged to the same state; logs consistent")


if __name__ == "__main__":
    main()
