"""Quickstart: execute the paper's stack and check its guarantees.

Builds the DVS implementation (Figure 3's ``VS-TO-DVS_p`` filters over the
VS service of Figure 1), closes it with clients and a partition adversary,
runs a randomized execution, and mechanically checks:

- the Section 5.2 invariants (5.1-5.6) on every reachable state,
- Theorem 5.9 (the execution refines the DVS specification of Figure 2
  via the mapping of Figure 4), and
- the DVS trace properties (view order, within-view delivery, safety).

Run:  python examples/quickstart.py
"""

from collections import Counter

from repro.checking import (
    build_closed_dvs_impl,
    check_dvs_trace_properties,
    random_view_pool,
)
from repro.core import make_view
from repro.dvs import dvs_impl_invariants, dvs_refinement_checker
from repro.ioa import run_random


def main():
    universe = ["p1", "p2", "p3", "p4"]
    initial_view = make_view(0, universe[:3])
    adversary_views = random_view_pool(universe, 5, seed=7, min_size=2)

    system, processes = build_closed_dvs_impl(
        initial_view, universe, view_pool=adversary_views, budget=2
    )
    execution = run_random(
        system,
        1200,
        seed=3,
        weights={
            "vs_createview": 0.2,
            "dvs_register": 2.0,
            "dvs_garbage_collect": 1.5,
        },
    )
    print("executed {0} steps; action mix:".format(len(execution)))
    for name, count in sorted(Counter(a.name for a in execution.actions()).items()):
        print("  {0:<22} {1}".format(name, count))

    states = dvs_impl_invariants(processes).check_execution(execution)
    print("invariants 5.1-5.6 hold on all {0} states".format(states))

    checker = dvs_refinement_checker(processes, initial_view, universe)
    abstract_actions = checker.check_execution(execution)
    print(
        "Theorem 5.9: execution refines DVS "
        "({0} abstract actions matched)".format(abstract_actions)
    )

    stats = check_dvs_trace_properties(execution.trace(), initial_view)
    print("DVS trace properties hold: {0}".format(stats))


if __name__ == "__main__":
    main()
