"""Why dynamic primary views: the availability study (experiment E6).

Compares, over identical connectivity histories, the static-majority
notion of primary the paper moves away from, the DVS/Lotem-Keidar-Dolev
dynamic voting rule it specifies, and the flawed "naive" dynamic rule the
LKD subtleties warn about:

1. fixed population  -- static and dynamic are comparable;
2. drifting population -- static availability collapses, dynamic tracks;
3. interrupted formations -- the naive rule forms disjoint primaries
   (split brain), dynamic voting never does.

Run:  python examples/availability_study.py
"""

from repro.analysis import (
    compare_trackers,
    drifting_population,
    random_churn,
    render_table,
)
from repro.core import make_view
from repro.membership import (
    DynamicVotingTracker,
    NaiveDynamicTracker,
    StaticMajorityTracker,
)

HEADERS = ["rule", "availability", "primaries formed", "disjoint primaries"]


def main():
    universe = ["p{0}".format(i) for i in range(1, 8)]
    v0 = make_view(0, universe)

    fixed = random_churn(universe, 400, seed=3, partition_prob=0.5)
    results = compare_trackers(
        [
            ("static majority", StaticMajorityTracker(v0)),
            ("dynamic voting (DVS)", DynamicVotingTracker(v0)),
            ("dynamic voting, slow registration",
             DynamicVotingTracker(v0, register_lag=2)),
        ],
        fixed,
    )
    print(render_table(HEADERS, [r.row() for r in results],
                       title="Fixed population, random partitions"))

    drift = drifting_population(
        universe, 600, seed=5, leave_prob=0.02, join_prob=0.015
    )
    results = compare_trackers(
        [
            ("static majority", StaticMajorityTracker(v0)),
            ("dynamic voting (DVS)", DynamicVotingTracker(v0)),
        ],
        drift,
    )
    print()
    print(render_table(HEADERS, [r.row() for r in results],
                       title="Drifting population (joins and departures)"))

    churn = random_churn(universe, 500, seed=1, partition_prob=0.7)
    results = compare_trackers(
        [
            ("naive dynamic (flawed)",
             NaiveDynamicTracker(v0, failure_prob=0.4, seed=1)),
            ("dynamic voting (DVS)",
             DynamicVotingTracker(v0, register_lag=1, failure_prob=0.4,
                                  seed=1)),
        ],
        churn,
    )
    print()
    print(render_table(
        HEADERS, [r.row() for r in results],
        title="Interrupted view formations (the LKD subtlety)",
    ))
    print(
        "\nNote the nonzero 'disjoint primaries' for the naive rule: two\n"
        "components simultaneously believed they were the primary -- the\n"
        "failure the DVS intersection invariant (4.1) rules out."
    )


if __name__ == "__main__":
    main()
