"""Section 7, executed: the paper's future-work directions as code.

1. **The Isis property.**  The paper deliberately omits Isis's guarantee
   that processes moving together between views received the same
   messages.  We search DVS executions for a violation (found quickly)
   and confirm the total-order application is unharmed on the very same
   executions.

2. **SX-DVS.**  The proposed variation "in which the state exchange at
   the beginning of a new view is supported by the dynamic view service",
   built end to end.  The totally-ordered-broadcast application over it
   has no recovery state machine at all -- compare the two state spaces
   printed below.

Run:  python examples/section7_extensions.py
"""

from repro.checking import check_to_trace_properties, random_view_pool
from repro.checking.harness import build_closed_sx_to_impl
from repro.checking.isis_property import find_isis_counterexample
from repro.core import make_view
from repro.ioa import run_random
from repro.to.dvs_to_to import DvsToTo
from repro.to.sx_total_order import SxTotalOrder


def isis_study():
    print("== 1. The Isis same-messages property ==")
    result = find_isis_counterexample(max_seeds=10, steps=2000)
    if result is None:
        print("no violation found (unexpected)")
        return
    seed, violations, execution = result
    print("violated at the first seed tried ({0}):".format(seed))
    for violation in violations:
        print("  -", violation)
    print(
        "...yet the same execution's DVS guarantees hold -- the property\n"
        "is omitted by design, exactly as Section 7 discusses.\n"
    )


def sx_study():
    print("== 2. SX-DVS: the service runs the state exchange ==")
    v0 = make_view(0, ["p1", "p2", "p3"])
    fig5_state = DvsToTo("p1", v0).initial_state()
    sx_state = SxTotalOrder("p1", v0).initial_state()
    fig5_fields = sorted(fig5_state.attributes())
    sx_fields = sorted(sx_state.attributes())
    print("Figure 5 state variables:   ", ", ".join(fig5_fields))
    print("SX application variables:   ", ", ".join(sx_fields))
    gone = set(fig5_fields) - set(sx_fields)
    print(
        "recovery machinery moved into the service: {0}\n".format(
            ", ".join(sorted(gone))
        )
    )

    universe = ["p1", "p2", "p3"]
    pool = random_view_pool(universe, 4, seed=9, min_size=2)
    system, procs = build_closed_sx_to_impl(
        v0, universe, view_pool=pool, budget=3
    )
    execution = run_random(
        system, 4000, seed=2,
        weights={"dvs_createview": 0.06, "bcast": 1.0},
    )
    stats = check_to_trace_properties(execution.trace())
    print(
        "simplified app over SX-DVS, under churn: total order holds "
        "({0} broadcasts, {1} deliveries)".format(
            stats["broadcasts"], stats["deliveries"]
        )
    )


def main():
    isis_study()
    sx_study()


if __name__ == "__main__":
    main()
