"""The replicated KV store on *real* sockets: crash and keep serving.

Where :mod:`examples.replicated_kv_store` runs the stack inside the
deterministic simulator, this example runs the very same layer code on
an asyncio TCP transport (:mod:`repro.runtime`): three nodes on
127.0.0.1, OS-assigned ports, heartbeat-estimated connectivity, and the
online safety monitor armed on the live action log.

Each node hosts *both* ordering towers over one DVS layer, and the two
applications pick their strength per group: the KV store submits
commands over totally ordered broadcast (replicas must agree on one
history), while a presence/typing channel rides causal broadcast --
per-member status needs only per-sender FIFO and causal consistency,
so it skips the sequencer's safe round-trip and lands faster.

The scenario: the cluster forms, everyone announces presence, serves
writes; one node is killed mid-run; the surviving majority reforms a
primary view and keeps serving; the killed node comes back as a fresh
process (same id, new port, empty state), is readmitted, rebuilds the
KV state it missed from the total order, and repairs its presence
board from fresh announcements (CB is view-scoped: old casts die with
their view, new ones converge).

Run:  python examples/live_kv_cluster.py
"""

from repro.apps.kv_store import KvReplica
from repro.apps.presence import PresenceBoard
from repro.runtime.cluster import RuntimeCluster

PIDS = ["n1", "n2", "n3"]
WAIT = 30.0


def put_round(cluster, pids, start, count):
    for i in range(start, start + count):
        pid = pids[i % len(pids)]
        cluster.call_app(
            pid,
            lambda app, i=i: app.put("k{0}".format(i % 6),
                                     "v{0}".format(i)),
        )
    total = start + count
    cluster.wait_until(
        lambda: all(cluster.app(p).log_length >= total for p in pids),
        timeout=WAIT,
        what="{0} writes applied".format(total),
    )
    return total


def presence_round(cluster, pids, status):
    """Everyone types, announces, stops typing -- all over CB -- then
    wait until every board agrees (causal per-sender FIFO guarantees
    the stop-typing lands after the start on every replica)."""
    for pid in pids:
        cluster.call_cb_app(pid, lambda app: app.typing(True))
        cluster.call_cb_app(pid, lambda app, s=status: app.announce(s))
        cluster.call_cb_app(pid, lambda app: app.typing(False))
    cluster.wait_until(
        lambda: all(
            cluster.cb_app(p).status_of(q) == status
            and not cluster.cb_app(p).typing_now()
            for p in pids for q in pids
        ),
        timeout=WAIT,
        what="presence convergence at {0!r}".format(status),
    )


def dump(cluster, label):
    print("\n== {0} ==".format(label))
    for pid in cluster.live():
        print("  {0}: {1} applied, kv={2}, presence={3}".format(
            pid,
            cluster.call_app(pid, lambda app: app.log_length),
            cluster.call_app(pid, lambda app: app.snapshot()),
            cluster.call_cb_app(pid, lambda app: app.board()),
        ))


def main():
    cluster = RuntimeCluster(
        PIDS,
        app_factory=lambda node: KvReplica(node.to),
        cb_app_factory=lambda node: PresenceBoard(node.cb),
        hb_interval=0.05,
        hb_timeout=0.25,
    )
    with cluster:
        cluster.wait_formation(timeout=WAIT)
        ports = {
            pid: cluster.call_node(pid, lambda n: n.port) for pid in PIDS
        }
        print("3 live nodes on 127.0.0.1, ports {0}".format(
            sorted(ports.values())))

        presence_round(cluster, PIDS, "online")
        print("presence converged over CB: everyone online, "
              "nobody typing")
        sent = put_round(cluster, PIDS, 0, 12)
        dump(cluster, "all three serving")

        print("\n-- kill n3 (socket-level crash) --")
        cluster.kill("n3")
        cluster.wait_formation(["n1", "n2"], timeout=WAIT)
        print("surviving majority {n1, n2} reformed a primary view")
        sent = put_round(cluster, ["n1", "n2"], sent, 6)
        dump(cluster, "majority keeps serving while n3 is down")

        print("\n-- restart n3 (fresh state, same id, new port) --")
        cluster.restart("n3")
        cluster.wait_formation(PIDS, timeout=WAIT)
        cluster.wait_until(
            lambda: cluster.app("n3").log_length >= sent,
            timeout=WAIT,
            what="n3 state transfer",
        )
        presence_round(cluster, PIDS, "back")
        dump(cluster, "n3 readmitted and caught up from the total order")

        cluster.check()
        logs = {
            pid: cluster.call_app(pid, lambda app: app.command_log())
            for pid in PIDS
        }
        assert logs["n1"] == logs["n2"] == logs["n3"], "logs diverged!"
    print("\n{0} writes totally ordered over live TCP; "
          "safety monitor saw no violations".format(sent))


if __name__ == "__main__":
    main()
