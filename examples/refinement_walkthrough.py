"""Theorem 5.9, step by step: watching the refinement work.

Drives a small DVS-IMPL system through a scripted scenario (view change,
info exchange, attempt, registration, garbage collection) and prints, for
each concrete step, the abstract DVS fragment the checker matches it to --
the mechanized version of Lemma 5.8's case analysis:

- hidden VS steps and garbage collection map to stutters;
- VS-ORDER of a client message maps to DVS-ORDER;
- the first DVS-NEWVIEW of a view maps to CREATEVIEW + NEWVIEW;
- client-visible actions map to themselves.

Run:  python examples/refinement_walkthrough.py
"""

from repro.checking import build_closed_dvs_impl
from repro.core import make_view
from repro.core.messages import InfoMsg
from repro.dvs import dvs_refinement_checker
from repro.ioa import act
from repro.ioa.execution import Execution


def main():
    universe = ["p1", "p2", "p3"]
    v0 = make_view(0, universe)
    v1 = make_view(1, {"p1", "p2"})
    system, processes = build_closed_dvs_impl(
        v0, universe, view_pool=[v1], budget=1
    )

    execution = Execution(system, system.initial_state())
    info = InfoMsg(v0, frozenset())
    script = [
        act("dvs_gpsnd", ("m", "p1", 0), "p1"),
        act("vs_gpsnd", ("m", "p1", 0), "p1"),
        act("vs_order", ("m", "p1", 0), "p1", v0.id),
        act("vs_gprcv", ("m", "p1", 0), "p1", "p2"),
        act("dvs_gprcv", ("m", "p1", 0), "p1", "p2"),
        act("vs_createview", v1),
        act("vs_newview", v1, "p1"),
        act("vs_newview", v1, "p2"),
        act("vs_gpsnd", info, "p1"),
        act("vs_gpsnd", info, "p2"),
        act("vs_order", info, "p1", v1.id),
        act("vs_order", info, "p2", v1.id),
        act("vs_gprcv", info, "p1", "p1"),
        act("vs_gprcv", info, "p2", "p1"),
        act("vs_gprcv", info, "p1", "p2"),
        act("vs_gprcv", info, "p2", "p2"),
        act("dvs_newview", v1, "p1"),
        act("dvs_newview", v1, "p2"),
        act("dvs_register", "p1"),
        act("dvs_register", "p2"),
    ]
    for action in script:
        execution.extend(action)

    checker = dvs_refinement_checker(processes, v0, universe)
    checker.check_initial(execution.initial_state)
    print("{0:<44} {1}".format("concrete step (DVS-IMPL)", "abstract fragment (DVS)"))
    print("-" * 80)
    for step in execution.steps:
        fragment = checker.check_step(step)
        rendered = ", ".join(str(a) for a in fragment) or "(stutter)"
        print("{0:<44} {1}".format(str(step.action)[:43], rendered))
    print("-" * 80)
    print("every step matched: the scripted execution refines DVS.")


if __name__ == "__main__":
    main()
