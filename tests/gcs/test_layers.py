"""Tests for the runtime DVS and TO layers over the concrete stack."""

import pytest

from repro.checking import (
    check_dvs_trace_properties,
    check_to_trace_properties,
)
from repro.gcs.cluster import Cluster


class TestDvsLayer:
    def test_minority_never_gets_primary(self):
        c = Cluster(list("abcde"), seed=1, with_to_layer=False).start()
        c.settle(max_time=60)
        c.partition({"a", "b", "c"}, {"d", "e"})
        c.settle(max_time=120)
        majority_views = c.primary_views("a")
        minority_views = c.primary_views("d")
        assert majority_views and majority_views[-1].set == frozenset("abc")
        assert all(v.set != frozenset({"d", "e"}) for v in minority_views)

    def test_majority_chain_continues_across_shrinks(self):
        c = Cluster(list("abcde"), seed=2, with_to_layer=False).start()
        c.settle(max_time=60)
        for pid in "abcde":
            c.dvs[pid].register()
        c.settle(max_time=60)
        c.partition({"a", "b", "c"}, {"d", "e"})
        c.settle(max_time=60)
        for pid in "abc":
            c.dvs[pid].register()
        c.settle(max_time=60)
        c.partition({"a", "b"}, {"c"}, {"d", "e"})
        c.settle(max_time=120)
        # {a,b} is a majority of the registered primary {a,b,c}.
        assert c.primary_views("a")[-1].set == frozenset("ab")

    def test_unregistered_shrink_blocks_second_shrink(self):
        """Without registration, ``use`` keeps the older views and the
        majority check is against the *larger* earlier membership."""
        c = Cluster(list("abcde"), seed=3, with_to_layer=False).start()
        c.settle(max_time=60)
        # No registers at all: act stays at the 5-member view.
        c.partition({"a", "b", "c"}, {"d", "e"})
        c.settle(max_time=60)
        assert c.primary_views("a")[-1].set == frozenset("abc")
        c.partition({"a", "b"}, {"c"}, {"d", "e"})
        c.settle(max_time=120)
        # {a,b} majority-intersects {a,b,c} but NOT the still-active
        # 5-member view (2 of 5): no new primary for {a,b}.
        assert c.primary_views("a")[-1].set == frozenset("abc")

    def test_dvs_trace_properties_under_churn(self):
        c = Cluster(list("abcd"), seed=4, with_to_layer=False).start()
        c.settle(max_time=40)
        for pid in "abcd":
            c.dvs[pid].gpsnd(("m", pid, 0))
            c.dvs[pid].register()
        c.run(30)
        c.partition({"a", "b", "c"}, {"d"})
        c.run(40)
        for pid in "abc":
            c.dvs[pid].register()
            c.dvs[pid].gpsnd(("m", pid, 1))
        c.heal()
        c.settle(max_time=300)
        check_dvs_trace_properties(c.log.actions, c.initial_view)


class TestToLayer:
    def test_total_order_stable_group(self):
        c = Cluster(list("abc"), seed=5).start()
        c.settle(max_time=60)
        for i in range(3):
            for pid in "abc":
                c.bcast(pid, ("a", pid, i))
        c.settle(max_time=400)
        logs = [tuple(c.delivered(p)) for p in "abc"]
        assert len(set(logs)) == 1
        assert len(logs[0]) == 9
        check_to_trace_properties(c.log.actions)

    def test_minority_broadcast_waits_for_heal(self):
        c = Cluster(list("abcde"), seed=6).start()
        c.settle(max_time=60)
        c.partition({"a", "b", "c"}, {"d", "e"})
        c.settle(max_time=60)
        c.bcast("d", ("a", "d", 0))
        c.settle(max_time=120)
        assert ("a", "d", 0) not in [m for m, _ in c.delivered("d")]
        c.heal()
        c.settle(max_time=400)
        assert (("a", "d", 0), "d") in c.delivered("d")
        assert (("a", "d", 0), "d") in c.delivered("a")
        check_to_trace_properties(c.log.actions)

    def test_partition_era_majority_commits(self):
        c = Cluster(list("abcde"), seed=7).start()
        c.settle(max_time=60)
        c.partition({"a", "b", "c"}, {"d", "e"})
        c.settle(max_time=60)
        c.bcast("a", ("a", "a", 0))
        c.settle(max_time=200)
        assert (("a", "a", 0), "a") in c.delivered("a")
        assert (("a", "a", 0), "a") in c.delivered("b")
        # The minority has not seen it.
        assert (("a", "a", 0), "a") not in c.delivered("d")
        c.heal()
        c.settle(max_time=400)
        assert (("a", "a", 0), "a") in c.delivered("d")
        check_to_trace_properties(c.log.actions)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_fault_schedule_preserves_total_order(self, seed):
        import random

        rng = random.Random(seed)
        procs = list("abcde")
        c = Cluster(procs, seed=seed).start()
        counter = 0
        for _ in range(6):
            action = rng.random()
            if action < 0.3:
                k = rng.randint(1, 4)
                group = set(rng.sample(procs, k))
                rest = set(procs) - group
                if rest:
                    c.partition(group, rest)
                else:
                    c.heal()
            elif action < 0.45:
                c.heal()
            else:
                pid = rng.choice(procs)
                c.bcast(pid, ("a", pid, counter))
                counter += 1
            c.run(rng.uniform(10, 40))
        c.heal()
        c.settle(max_time=600)
        check_to_trace_properties(c.log.actions)


class TestCrashRecoveryEndToEnd:
    def test_crash_majority_continues(self):
        c = Cluster(list("abc"), seed=8).start()
        c.settle(max_time=60)
        c.crash("c")
        c.settle(max_time=60)
        c.bcast("a", ("a", "a", 0))
        c.settle(max_time=200)
        assert (("a", "a", 0), "a") in c.delivered("b")
        c.recover("c")
        c.settle(max_time=300)
        assert (("a", "a", 0), "a") in c.delivered("c")
        check_to_trace_properties(c.log.actions)
