"""Tests for the concrete view-synchronous stack against VS properties."""

import pytest

from repro.checking.trace_props import check_vs_trace_properties
from repro.core import make_view
from repro.gcs import ActionLog, VsListener, VsStackNode
from repro.net import Network


class Collector(VsListener):
    def __init__(self):
        self.views = []
        self.delivered = []
        self.safe = []

    def on_vs_newview(self, view):
        self.views.append(view)

    def on_vs_gprcv(self, payload, sender):
        self.delivered.append((payload, sender))

    def on_vs_safe(self, payload, sender):
        self.safe.append((payload, sender))


def make_stack(pids, seed=0):
    v0 = make_view(0, pids)
    net = Network(seed=seed)
    log = ActionLog()
    nodes, listeners = {}, {}
    for pid in pids:
        listener = Collector()
        node = VsStackNode(pid, initial_view=v0, listener=listener,
                           recorder=log)
        net.add_node(node)
        nodes[pid] = node
        listeners[pid] = listener
    net.start()
    return net, nodes, listeners, log, v0


class TestStableGroup:
    def test_multicast_delivery_and_safety(self):
        net, nodes, listeners, log, v0 = make_stack(["a", "b", "c"])
        # Let the initial membership round settle first: messages sent
        # while a view change is in flight may lose their safe
        # indications (legal VS behaviour, but not what this test is
        # about).
        net.run_to_quiescence(max_time=50)
        nodes["a"].gpsnd("m1")
        nodes["b"].gpsnd("m2")
        net.run_to_quiescence(max_time=150)
        for pid in "abc":
            assert set(listeners[pid].delivered) == {("m1", "a"), ("m2", "b")}
            assert set(listeners[pid].safe) == {("m1", "a"), ("m2", "b")}
        check_vs_trace_properties(log.actions, v0)

    def test_same_delivery_order_everywhere(self):
        net, nodes, listeners, log, v0 = make_stack(["a", "b", "c"], seed=5)
        for i in range(4):
            for pid in "abc":
                nodes[pid].gpsnd(("m", pid, i))
        net.run_to_quiescence(max_time=300)
        orders = [tuple(listeners[p].delivered) for p in "abc"]
        assert len(set(orders)) == 1
        assert len(orders[0]) == 12

    def test_initial_view_needs_no_install(self):
        net, nodes, listeners, log, v0 = make_stack(["a", "b"])
        net.run_to_quiescence(max_time=50)
        # Connectivity matches the initial view, but the coordinator still
        # runs a round on start; any installed view contains both members.
        for pid in "ab":
            for view in listeners[pid].views:
                assert view.set == frozenset({"a", "b"})


class TestPartitions:
    def test_partition_installs_component_views(self):
        net, nodes, listeners, log, v0 = make_stack(["a", "b", "c", "d"])
        net.run_to_quiescence(max_time=50)
        net.partition([{"a", "b"}, {"c", "d"}])
        net.run_to_quiescence(max_time=100)
        assert listeners["a"].views[-1].set == frozenset({"a", "b"})
        assert listeners["c"].views[-1].set == frozenset({"c", "d"})
        # Concurrent views have distinct identifiers.
        assert listeners["a"].views[-1].id != listeners["c"].views[-1].id

    def test_views_monotone_per_process(self):
        net, nodes, listeners, log, v0 = make_stack(["a", "b", "c"])
        net.run_to_quiescence(max_time=50)
        net.partition([{"a"}, {"b", "c"}])
        net.run_to_quiescence(max_time=100)
        net.heal()
        net.run_to_quiescence(max_time=200)
        for pid in "abc":
            ids = [v.id for v in listeners[pid].views]
            assert ids == sorted(ids)
            assert len(set(ids)) == len(ids)

    def test_no_cross_view_delivery(self):
        net, nodes, listeners, log, v0 = make_stack(["a", "b", "c"])
        nodes["a"].gpsnd("early")
        net.partition([{"a", "b"}, {"c"}])  # may race with delivery
        net.run_to_quiescence(max_time=200)
        check_vs_trace_properties(log.actions, v0)

    def test_merge_after_partition_satisfies_vs(self):
        net, nodes, listeners, log, v0 = make_stack(["a", "b", "c", "d"], seed=3)
        net.run_to_quiescence(max_time=60)
        nodes["a"].gpsnd("m1")
        net.partition([{"a", "b"}, {"c", "d"}])
        net.run_to_quiescence(max_time=60)
        nodes["a"].gpsnd("m2")
        nodes["c"].gpsnd("m3")
        net.run_to_quiescence(max_time=60)
        net.heal()
        net.run_to_quiescence(max_time=200)
        nodes["d"].gpsnd("m4")
        net.run_to_quiescence(max_time=200)
        stats = check_vs_trace_properties(log.actions, v0)
        assert stats["deliveries"] > 0

    def test_safe_only_after_everyone_delivered(self):
        net, nodes, listeners, log, v0 = make_stack(["a", "b", "c"], seed=7)
        net.run_to_quiescence(max_time=50)
        nodes["a"].gpsnd("x")
        net.run_to_quiescence(max_time=200)
        # In the log, the first vs_safe for x must come after three
        # vs_gprcv for x.
        delivered_before = 0
        for action in log.actions:
            if action.name == "vs_gprcv" and action.params[0] == "x":
                delivered_before += 1
            if action.name == "vs_safe" and action.params[0] == "x":
                assert delivered_before == 3
                break


class TestCrashRecovery:
    def test_crash_shrinks_view(self):
        net, nodes, listeners, log, v0 = make_stack(["a", "b", "c"])
        net.run_to_quiescence(max_time=50)
        net.crash("c")
        net.run_to_quiescence(max_time=100)
        assert listeners["a"].views[-1].set == frozenset({"a", "b"})

    def test_recovery_rejoins(self):
        net, nodes, listeners, log, v0 = make_stack(["a", "b", "c"])
        net.run_to_quiescence(max_time=50)
        net.crash("c")
        net.run_to_quiescence(max_time=100)
        net.recover("c")
        net.run_to_quiescence(max_time=200)
        assert listeners["a"].views[-1].set == frozenset({"a", "b", "c"})
        check_vs_trace_properties(log.actions, v0)
