"""Unit tests for the action log and the stack's wire messages."""

import pytest

from repro.core import make_view
from repro.core.viewids import ViewId
from repro.gcs.messages import (
    Ack,
    Collect,
    Data,
    Install,
    Ordered,
    SafeNote,
    StateReply,
)
from repro.gcs.recorder import ActionLog


class TestActionLog:
    def test_records_in_order(self):
        log = ActionLog()
        log.record("bcast", "a", "p1")
        log.record("brcv", "a", "p1", "p2")
        assert [a.name for a in log] == ["bcast", "brcv"]
        assert len(log) == 2

    def test_by_name(self):
        log = ActionLog()
        log.record("bcast", "a", "p1")
        log.record("brcv", "a", "p1", "p2")
        assert len(log.by_name("brcv")) == 1
        assert len(log.by_name("bcast", "brcv")) == 2

    def test_clock_timestamps(self):
        now = {"t": 0.0}
        log = ActionLog(clock=lambda: now["t"])
        log.record("bcast", "a", "p1")
        now["t"] = 5.0
        log.record("brcv", "a", "p1", "p2")
        assert [t for t, _ in log.timed_actions()] == [0.0, 5.0]

    def test_no_clock_gives_none(self):
        log = ActionLog()
        log.record("x")
        assert log.times == [None]

    def test_clear(self):
        log = ActionLog()
        log.record("x")
        log.clear()
        assert len(log) == 0
        assert log.times == []


class TestWireMessages:
    def test_messages_hashable(self):
        vid = ViewId(1, "a")
        view = make_view(vid, {"a", "b"})
        messages = [
            Collect(("a", 1), frozenset({"a", "b"})),
            StateReply(("a", 1), 3),
            Install(("a", 1), view),
            Data(vid, "m", "a"),
            Ordered(vid, 1, "m", "a"),
            Ack(vid, 1),
            SafeNote(vid, 1),
        ]
        assert len(set(messages)) == len(messages)

    def test_equality_is_structural(self):
        vid = ViewId(2, "b")
        assert Data(vid, "m", "a") == Data(vid, "m", "a")
        assert Ack(vid, 1) != Ack(vid, 2)
