"""Protocol-level unit tests: driving VsStackNode handlers directly."""

import pytest

from repro.core import make_view
from repro.core.viewids import ViewId
from repro.core.views import View
from repro.gcs.messages import (
    Ack,
    Collect,
    Data,
    Install,
    Ordered,
    SafeNote,
    StateReply,
)
from repro.gcs.vs_stack import VsStackNode
from repro.net import Network


def wire(pids, seed=0):
    v0 = make_view(0, pids)
    net = Network(seed=seed)
    nodes = {p: net.add_node(VsStackNode(p, initial_view=v0)) for p in pids}
    net.start()
    net.run_to_quiescence(max_time=50)  # let the initial round settle
    return net, nodes, v0


class TestMembershipRound:
    def test_leader_runs_round_on_connectivity(self):
        net, nodes, v0 = wire(["a", "b"])
        # The initial round completed: both installed an identical view.
        assert nodes["a"].view == nodes["b"].view
        assert nodes["a"].view.set == frozenset({"a", "b"})
        assert nodes["a"].view.id.origin == "a"  # leader minted the id

    def test_collect_reply_carries_max_epoch(self):
        net, nodes, v0 = wire(["a", "b"])
        node = nodes["b"]
        sent_before = len(net.log)
        node._on_collect("a", Collect(("a", 99), frozenset({"a", "b"})))
        reply_sends = [
            d for _, k, d in net.log[sent_before:] if k == "send"
        ]
        assert len(reply_sends) == 1
        _, dst, msg = reply_sends[0]
        assert isinstance(msg, StateReply)
        assert msg.max_epoch == node.max_epoch

    def test_collect_for_other_membership_ignored(self):
        net, nodes, v0 = wire(["a", "b"])
        before = len(net.log)
        nodes["b"]._on_collect("a", Collect(("a", 99), frozenset({"a"})))
        assert len(net.log) == before

    def test_install_only_newer_views(self):
        net, nodes, v0 = wire(["a", "b"])
        node = nodes["b"]
        current = node.view
        stale = View(ViewId(0, ""), frozenset({"a", "b"}))
        node._on_install("a", Install(("a", 1), stale))
        assert node.view == current

    def test_install_for_non_member_ignored(self):
        net, nodes, v0 = wire(["a", "b"])
        node = nodes["b"]
        other = View(ViewId(9, "z"), frozenset({"a"}))
        node._on_install("a", Install(("z", 1), other))
        assert node.view.set == frozenset({"a", "b"})

    def test_install_raises_max_epoch(self):
        net, nodes, v0 = wire(["a", "b"])
        node = nodes["b"]
        big = View(ViewId(40, "a"), frozenset({"a", "b"}))
        node._on_install("a", Install(("a", 2), big))
        assert node.max_epoch == 40


class TestSequencer:
    def test_data_assigns_consecutive_slots(self):
        net, nodes, v0 = wire(["a", "b"])
        leader = nodes["a"]
        vid = leader.view.id
        before = len(net.log)
        leader._on_data("b", Data(vid, "m1", "b"))
        leader._on_data("b", Data(vid, "m2", "b"))
        ordered = [
            d[2]
            for _, k, d in net.log[before:]
            if k == "send" and isinstance(d[2], Ordered)
        ]
        seqs = sorted({m.seq for m in ordered})
        assert seqs == [1, 2]

    def test_stale_view_data_dropped(self):
        net, nodes, v0 = wire(["a", "b"])
        leader = nodes["a"]
        before = len(net.log)
        leader._on_data("b", Data(ViewId(0, ""), "old", "b"))
        new_sends = [1 for _, k, _ in net.log[before:] if k == "send"]
        assert not new_sends

    def test_out_of_order_delivery_buffers(self):
        net, nodes, v0 = wire(["a", "b"])
        node = nodes["b"]
        vid = node.view.id
        delivered = []
        node.listener.on_vs_gprcv = (
            lambda payload, sender: delivered.append(payload)
        )
        node._on_ordered("a", Ordered(vid, 2, "second", "a"))
        assert delivered == []
        node._on_ordered("a", Ordered(vid, 1, "first", "a"))
        assert delivered == ["first", "second"]

    def test_safe_note_reported_in_order_after_delivery(self):
        net, nodes, v0 = wire(["a", "b"])
        node = nodes["b"]
        vid = node.view.id
        safe = []
        node.listener.on_vs_safe = (
            lambda payload, sender: safe.append(payload)
        )
        node._on_safe_note("a", SafeNote(vid, 1))
        assert safe == []  # not delivered yet
        node._on_ordered("a", Ordered(vid, 1, "m", "a"))
        assert safe == ["m"]

    def test_leader_broadcasts_safe_on_full_acks(self):
        net, nodes, v0 = wire(["a", "b"])
        leader = nodes["a"]
        vid = leader.view.id
        leader._on_data("a", Data(vid, "m", "a"))
        before = len(net.log)
        leader._on_ack("a", Ack(vid, 1))
        notes = [
            1
            for _, k, d in net.log[before:]
            if k == "send" and isinstance(d[2], SafeNote)
        ]
        assert not notes  # b has not acked
        leader._on_ack("b", Ack(vid, 1))
        notes = [
            1
            for _, k, d in net.log[before:]
            if k == "send" and isinstance(d[2], SafeNote)
        ]
        assert len(notes) == 2  # one note to each member
