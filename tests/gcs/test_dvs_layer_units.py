"""Unit tests for the runtime DVS layer, driven through a fake stack."""

import pytest

from repro.core import make_view
from repro.core.messages import InfoMsg, RegisteredMsg
from repro.dvs.vs_to_dvs import AckMsg
from repro.gcs.dvs_layer import DvsLayer, DvsListener


class FakeStack:
    """Stands in for VsStackNode: records gpsnd calls."""

    def __init__(self, pid):
        self.pid = pid
        self.listener = None
        self.sent = []

    def gpsnd(self, payload):
        self.sent.append(payload)


class Sink(DvsListener):
    def __init__(self):
        self.views = []
        self.delivered = []
        self.safe = []

    def on_dvs_newview(self, view):
        self.views.append(view)

    def on_dvs_gprcv(self, payload, sender):
        self.delivered.append((payload, sender))

    def on_dvs_safe(self, payload, sender):
        self.safe.append((payload, sender))


def layer(pids=("a", "b", "c")):
    v0 = make_view(0, pids)
    stack = FakeStack("a")
    sink = Sink()
    dvs = DvsLayer(stack, v0, listener=sink)
    return dvs, stack, sink, v0


class TestAttemptFlow:
    def test_newview_sends_info_and_waits(self):
        dvs, stack, sink, v0 = layer()
        v1 = make_view(1, {"a", "b"})
        dvs.on_vs_newview(v1)
        assert isinstance(stack.sent[-1], InfoMsg)
        assert sink.views == []  # waiting for b's info
        dvs.on_vs_gprcv(InfoMsg(v0, frozenset()), "b")
        assert sink.views == [v1]

    def test_minority_view_rejected(self):
        dvs, stack, sink, v0 = layer()
        tiny = make_view(1, {"a"})
        dvs.on_vs_newview(tiny)
        assert sink.views == []  # {a} is no majority of v0

    def test_pre_attempt_deliveries_buffered_then_flushed(self):
        dvs, stack, sink, v0 = layer()
        v1 = make_view(1, {"a", "b"})
        dvs.on_vs_newview(v1)
        dvs.on_vs_gprcv("early", "b")
        assert sink.delivered == []
        dvs.on_vs_gprcv(InfoMsg(v0, frozenset()), "b")
        assert sink.delivered == [("early", "b")]

    def test_buffered_deliveries_dropped_on_next_view(self):
        dvs, stack, sink, v0 = layer()
        v1 = make_view(1, {"a", "b"})
        dvs.on_vs_newview(v1)
        dvs.on_vs_gprcv("doomed", "b")
        dvs.on_vs_newview(make_view(2, {"a", "b", "c"}))
        for q in ["b", "c"]:
            dvs.on_vs_gprcv(InfoMsg(v0, frozenset()), q)
        assert ("doomed", "b") not in sink.delivered


class TestAckedSafe:
    def test_client_delivery_sends_ack(self):
        dvs, stack, sink, v0 = layer()
        dvs.on_vs_gprcv("m", "b")
        assert AckMsg(1) in stack.sent

    def test_safe_needs_all_members(self):
        dvs, stack, sink, v0 = layer()
        dvs.on_vs_gprcv("m", "b")
        dvs.on_vs_gprcv(AckMsg(1), "a")
        dvs.on_vs_gprcv(AckMsg(1), "b")
        assert sink.safe == []
        dvs.on_vs_gprcv(AckMsg(1), "c")
        assert sink.safe == [("m", "b")]

    def test_vs_safe_alone_is_ignored(self):
        dvs, stack, sink, v0 = layer()
        dvs.on_vs_gprcv("m", "b")
        dvs.on_vs_safe("m", "b")
        assert sink.safe == []

    def test_safe_released_in_order(self):
        dvs, stack, sink, v0 = layer()
        dvs.on_vs_gprcv("m1", "b")
        dvs.on_vs_gprcv("m2", "c")
        for q in ["a", "b", "c"]:
            dvs.on_vs_gprcv(AckMsg(2), q)
        assert sink.safe == [("m1", "b"), ("m2", "c")]


class TestRegistrationAndGc:
    def _attempted_v1(self):
        dvs, stack, sink, v0 = layer()
        v1 = make_view(1, {"a", "b"})
        dvs.on_vs_newview(v1)
        dvs.on_vs_gprcv(InfoMsg(v0, frozenset()), "b")
        assert sink.views == [v1]
        return dvs, stack, sink

    def test_initial_view_already_registered(self):
        dvs, stack, sink, v0 = layer()
        dvs.register()  # v0 starts registered: nothing to send
        assert not any(isinstance(m, RegisteredMsg) for m in stack.sent)

    def test_register_sends_registered(self):
        dvs, stack, sink = self._attempted_v1()
        dvs.register()
        assert any(isinstance(m, RegisteredMsg) for m in stack.sent)

    def test_register_idempotent(self):
        dvs, stack, sink = self._attempted_v1()
        dvs.register()
        count = sum(1 for m in stack.sent if isinstance(m, RegisteredMsg))
        dvs.register()
        assert sum(
            1 for m in stack.sent if isinstance(m, RegisteredMsg)
        ) == count

    def test_gc_advances_act_on_full_registration(self):
        dvs, stack, sink, v0 = layer()
        v1 = make_view(1, {"a", "b"})
        dvs.on_vs_newview(v1)
        dvs.on_vs_gprcv(InfoMsg(v0, frozenset()), "b")
        assert dvs.act == v0
        dvs.on_vs_gprcv(RegisteredMsg(), "a")
        dvs.on_vs_gprcv(RegisteredMsg(), "b")
        assert dvs.act == v1
        assert dvs.amb == set()

    def test_stranded_send_when_client_lags(self):
        dvs, stack, sink, v0 = layer()
        v1 = make_view(1, {"a", "b"})
        dvs.on_vs_newview(v1)  # client still at v0
        before = len(stack.sent)
        dvs.gpsnd("stuck")
        assert len(stack.sent) == before  # addressed to a dead view
