"""Unit tests for the CB service specification."""

import pytest

from repro.ioa import act
from repro.cb import CBSpec


@pytest.fixture
def cb():
    return CBSpec(["p1", "p2"])


class TestBroadcast:
    def test_cbcast_records_send_and_past(self, cb):
        s = cb.initial_state()
        s = cb.apply(s, act("cbcast", "a", "p1"))
        assert s.sent["p1"] == ["a"]
        assert s.past[("p1", 0)] == frozenset()
        assert ("p1", 0) in s.knowledge["p1"]

    def test_own_broadcasts_enter_the_causal_past(self, cb):
        s = cb.initial_state()
        s = cb.apply(s, act("cbcast", "a1", "p1"))
        s = cb.apply(s, act("cbcast", "a2", "p1"))
        assert s.past[("p1", 1)] == frozenset({("p1", 0)})


class TestDelivery:
    def test_per_sender_fifo(self, cb):
        s = cb.initial_state()
        s = cb.apply(s, act("cbcast", "a1", "p1"))
        s = cb.apply(s, act("cbcast", "a2", "p1"))
        # a2 is not next from p1 at p2.
        assert not cb.is_enabled(s, act("cb_brcv", "a2", "p1", "p2"))
        s = cb.apply(s, act("cb_brcv", "a1", "p1", "p2"))
        assert cb.is_enabled(s, act("cb_brcv", "a2", "p1", "p2"))

    def test_causal_gating_across_senders(self, cb):
        s = cb.initial_state()
        s = cb.apply(s, act("cbcast", "a", "p1"))
        s = cb.apply(s, act("cb_brcv", "a", "p1", "p2"))
        # p2's broadcast now causally depends on p1's.
        s = cb.apply(s, act("cbcast", "b", "p2"))
        assert not cb.is_enabled(s, act("cb_brcv", "b", "p2", "p1"))
        s = cb.apply(s, act("cb_brcv", "a", "p1", "p1"))
        assert cb.is_enabled(s, act("cb_brcv", "b", "p2", "p1"))

    def test_concurrent_broadcasts_deliver_in_either_order(self, cb):
        s = cb.initial_state()
        s = cb.apply(s, act("cbcast", "a", "p1"))
        s = cb.apply(s, act("cbcast", "b", "p2"))
        # Neither saw the other: both deliverable at p1 right away.
        assert cb.is_enabled(s, act("cb_brcv", "a", "p1", "p1"))
        assert cb.is_enabled(s, act("cb_brcv", "b", "p2", "p1"))

    def test_attribution_enforced(self, cb):
        s = cb.initial_state()
        s = cb.apply(s, act("cbcast", "a", "p1"))
        assert not cb.is_enabled(s, act("cb_brcv", "a", "p2", "p1"))

    def test_delivery_advances_pointer(self, cb):
        s = cb.initial_state()
        s = cb.apply(s, act("cbcast", "a", "p1"))
        s = cb.apply(s, act("cb_brcv", "a", "p1", "p2"))
        assert s.next["p2"]["p1"] == 1
        assert s.next["p1"]["p1"] == 0

    def test_candidates_enumerate_exactly_enabled_deliveries(self, cb):
        s = cb.initial_state()
        s = cb.apply(s, act("cbcast", "a", "p1"))
        candidates = set(cb.cand_cb_brcv(s))
        assert candidates == {
            act("cb_brcv", "a", "p1", "p1"),
            act("cb_brcv", "a", "p1", "p2"),
        }
