"""Unit tests for the ``DVS-TO-CB_p`` automaton."""

import pytest

from repro.cb.dvs_to_cb import DvsToCb
from repro.cb.messages import CbCast
from repro.core import make_view
from repro.ioa import act


@pytest.fixture
def v0():
    return make_view(0, ["p1", "p2"])


@pytest.fixture
def auto(v0):
    return DvsToCb("p1", v0)


def cast(view, clock, payload, origin):
    return CbCast(view.id, tuple(clock), payload, origin)


class TestTimestamping:
    def test_cbcast_delays_then_label_stamps(self, auto, v0):
        s = auto.initial_state()
        s = auto.apply(s, act("cbcast", "a", "p1"))
        assert s.delay == ["a"]
        s = auto.apply(s, act("cb_label", "a", "p1"))
        assert s.delay == []
        assert s.sent == 1
        (msg,) = s.buffer
        assert msg == cast(v0, [("p1", 1)], "a", "p1")

    def test_label_includes_delivered_past(self, auto, v0):
        s = auto.initial_state()
        s = auto.apply(
            s, act("dvs_gprcv", cast(v0, [("p2", 1)], "x", "p2"),
                   "p2", "p1")
        )
        s = auto.apply(s, act("cb_brcv", "x", "p2", "p1"))
        s = auto.apply(s, act("cbcast", "a", "p1"))
        s = auto.apply(s, act("cb_label", "a", "p1"))
        (msg,) = s.buffer
        assert msg.clock == (("p1", 1), ("p2", 1))

    def test_label_requires_a_current_view(self, v0):
        auto = DvsToCb("p3", v0)  # not an initial member
        s = auto.initial_state()
        s = auto.apply(s, act("cbcast", "a", "p3"))
        assert not auto.is_enabled(s, act("cb_label", "a", "p3"))
        assert list(auto.cand_cb_label(s)) == []

    def test_gpsnd_ships_the_buffer_head(self, auto, v0):
        s = auto.initial_state()
        s = auto.apply(s, act("cbcast", "a", "p1"))
        s = auto.apply(s, act("cb_label", "a", "p1"))
        (msg,) = s.buffer
        assert list(auto.cand_dvs_gpsnd(s)) == [
            act("dvs_gpsnd", msg, "p1")
        ]
        s = auto.apply(s, act("dvs_gpsnd", msg, "p1"))
        assert s.buffer == []


class TestDelivery:
    def test_bss_condition_gates_release(self, auto, v0):
        s = auto.initial_state()
        dep = cast(v0, [("p1", 0), ("p2", 2)], "b2", "p2")
        s = auto.apply(s, act("dvs_gprcv", dep, "p2", "p1"))
        # Second cast from p2 cannot go first.
        assert list(auto.cand_cb_brcv(s)) == []
        first = cast(v0, [("p2", 1)], "b1", "p2")
        s = auto.apply(s, act("dvs_gprcv", first, "p2", "p1"))
        assert list(auto.cand_cb_brcv(s)) == [
            act("cb_brcv", "b1", "p2", "p1")
        ]
        s = auto.apply(s, act("cb_brcv", "b1", "p2", "p1"))
        s = auto.apply(s, act("cb_brcv", "b2", "p2", "p1"))
        assert s.delivered == (("p2", 2),)
        assert s.holdback == []

    def test_history_records_per_view_deliveries(self, auto, v0):
        s = auto.initial_state()
        s = auto.apply(
            s, act("dvs_gprcv", cast(v0, [("p2", 1)], "b", "p2"),
                   "p2", "p1")
        )
        s = auto.apply(s, act("cb_brcv", "b", "p2", "p1"))
        assert s.history.get(v0.id) == (("b", "p2"),)

    def test_wrong_view_casts_are_ignored(self, auto, v0):
        v1 = make_view(1, ["p1", "p2"])
        s = auto.initial_state()
        s = auto.apply(
            s, act("dvs_gprcv", cast(v1, [("p2", 1)], "b", "p2"),
                   "p2", "p1")
        )
        assert s.holdback == []

    def test_non_cast_payloads_are_ignored(self, auto):
        s = auto.initial_state()
        s = auto.apply(s, act("dvs_gprcv", ("to", "summary"), "p2", "p1"))
        assert s.holdback == []

    def test_safe_indications_are_unused(self, auto, v0):
        s = auto.initial_state()
        msg = cast(v0, [("p2", 1)], "b", "p2")
        s = auto.apply(s, act("dvs_gprcv", msg, "p2", "p1"))
        before = s.copy()
        s = auto.apply(s, act("dvs_safe", msg, "p2", "p1"))
        assert s == before


class TestRecovery:
    def test_newview_resets_clock_and_drops_holdback(self, auto, v0):
        v1 = make_view(1, ["p1", "p2"])
        s = auto.initial_state()
        s = auto.apply(
            s, act("dvs_gprcv", cast(v0, [("p2", 1)], "b", "p2"),
                   "p2", "p1")
        )
        s = auto.apply(s, act("cb_brcv", "b", "p2", "p1"))
        s = auto.apply(s, act("dvs_newview", v1, "p1"))
        assert s.current == v1
        assert s.delivered == ()
        assert s.sent == 0
        assert s.holdback == []
        # History survives: it is the record the invariants read.
        assert s.history.get(v0.id) == (("b", "p2"),)

    def test_registration_is_immediate_and_once(self, auto, v0):
        v1 = make_view(1, ["p1", "p2"])
        s = auto.initial_state()
        s = auto.apply(s, act("dvs_newview", v1, "p1"))
        assert list(auto.cand_dvs_register(s)) == [
            act("dvs_register", "p1")
        ]
        s = auto.apply(s, act("dvs_register", "p1"))
        assert list(auto.cand_dvs_register(s)) == []

    def test_delayed_payloads_survive_into_the_new_view(self, auto, v0):
        v1 = make_view(1, ["p1", "p2"])
        s = auto.initial_state()
        s = auto.apply(s, act("cbcast", "a", "p1"))
        s = auto.apply(s, act("dvs_newview", v1, "p1"))
        s = auto.apply(s, act("cb_label", "a", "p1"))
        (msg,) = s.buffer
        assert msg.vid == v1.id
        assert msg.clock == (("p1", 1),)
