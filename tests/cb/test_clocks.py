"""Unit tests for the view-scoped vector-clock algebra.

The Hypothesis suite (tests/property/test_vclock_properties.py) checks
the lattice laws; these are the concrete cases that document the
intended behaviour, including the BSS delivery condition and the
hold-back drain.
"""

from repro.cb.clocks import (
    advance,
    compare,
    deliverable,
    drain,
    entry,
    join,
    leq,
    normalize,
    put,
    restrict,
    tick,
)


class TestCanonicalForm:
    def test_normalize_sorts_and_drops_zeros(self):
        assert normalize({"b": 2, "a": 1, "c": 0}) == (("a", 1), ("b", 2))

    def test_normalize_from_pairs_keeps_max_per_pid(self):
        assert normalize([("a", 1), ("a", 3), ("a", 2)]) == (("a", 3),)

    def test_normalize_drops_negatives(self):
        assert normalize([("a", -1)]) == ()

    def test_entry_defaults_to_zero(self):
        assert entry((("a", 1),), "b") == 0
        assert entry((("a", 1),), "a") == 1

    def test_put_keeps_canonical_order(self):
        clock = put((("a", 1), ("c", 2)), "b", 5)
        assert clock == (("a", 1), ("b", 5), ("c", 2))

    def test_put_zero_removes_the_entry(self):
        assert put((("a", 1), ("b", 2)), "a", 0) == (("b", 2),)

    def test_tick_increments(self):
        assert tick((), "a") == (("a", 1),)
        assert tick((("a", 1),), "a") == (("a", 2),)


class TestOrder:
    def test_join_is_pointwise_max(self):
        a = (("p1", 2), ("p2", 1))
        b = (("p2", 3), ("p3", 1))
        assert join(a, b) == (("p1", 2), ("p2", 3), ("p3", 1))

    def test_leq_and_compare(self):
        lo = (("p1", 1),)
        hi = (("p1", 2), ("p2", 1))
        assert leq(lo, hi) and not leq(hi, lo)
        assert compare(lo, hi) == -1
        assert compare(hi, lo) == 1
        assert compare(lo, lo) == 0

    def test_concurrent_clocks_compare_to_none(self):
        assert compare((("p1", 1),), (("p2", 1),)) is None

    def test_empty_clock_is_bottom(self):
        assert leq((), (("p1", 7),))
        assert join((), (("p1", 7),)) == (("p1", 7),)


class TestRestrict:
    def test_restrict_drops_departed_processes(self):
        clock = (("p1", 2), ("p2", 1), ("p3", 4))
        assert restrict(clock, {"p1", "p3"}) == (("p1", 2), ("p3", 4))

    def test_restrict_to_empty_membership(self):
        assert restrict((("p1", 1),), set()) == ()


class TestDeliverable:
    def test_next_from_sender_with_empty_past(self):
        # p1's first cast: clock ("p1", 1), nothing else required.
        assert deliverable((("p1", 1),), (), "p1")

    def test_gap_is_not_deliverable(self):
        assert not deliverable((("p1", 2),), (), "p1")

    def test_duplicate_is_not_deliverable(self):
        delivered = (("p1", 1),)
        assert not deliverable((("p1", 1),), delivered, "p1")

    def test_causal_past_must_be_delivered(self):
        # p2's first cast was sent after p2 delivered p1's first.
        clock = (("p1", 1), ("p2", 1))
        assert not deliverable(clock, (), "p2")
        assert deliverable(clock, (("p1", 1),), "p2")


class TestDrain:
    def test_release_unblocks_earlier_arrival(self):
        # p2's cast (depends on p1's) arrives before p1's.
        queue = [
            ("p2", (("p1", 1), ("p2", 1))),
            ("p1", (("p1", 1),)),
        ]
        released, remaining, delivered = drain(queue, ())
        assert released == (1, 0)
        assert remaining == ()
        assert delivered == (("p1", 1), ("p2", 1))

    def test_undeliverable_entries_remain(self):
        queue = [("p1", (("p1", 2),))]  # gap: first cast never arrived
        released, remaining, delivered = drain(queue, ())
        assert released == ()
        assert remaining == (0,)
        assert delivered == ()

    def test_fifo_preference_among_deliverable(self):
        queue = [("p1", (("p1", 1),)), ("p2", (("p2", 1),))]
        released, _, _ = drain(queue, ())
        assert released == (0, 1)
